//! A minimal readiness poller for the event-loop server.
//!
//! The offline build environment has no `mio`/`libc` crates, so this is a
//! thin wrapper over raw `epoll` FFI on Linux (the platform every deploy
//! and CI runner uses) with a portable degraded fallback elsewhere. The
//! API is deliberately tiny — register/reregister/deregister file
//! descriptors with a `usize` token and level-triggered read/write
//! interest, then [`Poller::wait`] for [`Event`]s.
//!
//! Cross-thread wake-ups go through a [`Waker`]: a nonblocking
//! `UnixStream` pair whose read end is registered under
//! [`WAKE_TOKEN`]. Writing one byte makes `wait` return; the event loop
//! drains the pipe and checks its queues.
//!
//! The non-Linux fallback reports every registered descriptor as ready
//! for its declared interest on each `wait` (bounded by a short sleep).
//! That is correct — all sockets are nonblocking, so spurious readiness
//! just costs a `WouldBlock` — but busy; it exists so the crate still
//! builds and tests on other platforms, not to serve production traffic.

/// Token reserved for the in-process [`Waker`]; never assign it to a
/// connection.
pub const WAKE_TOKEN: usize = usize::MAX;

/// What a registered descriptor wants to be woken for (level-triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    /// Error/hang-up on the descriptor; the owner should close it (after
    /// a final read to collect any queued bytes).
    pub error: bool,
}

/// Soft limit on open file descriptors, for sizing connection fan-out
/// (benches cap their simulated-client counts with this).
pub fn max_open_files() -> Option<u64> {
    #[cfg(unix)]
    {
        #[repr(C)]
        struct Rlimit {
            cur: u64,
            max: u64,
        }
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        }
        #[cfg(target_os = "macos")]
        const RLIMIT_NOFILE: i32 = 8;
        #[cfg(not(target_os = "macos"))]
        const RLIMIT_NOFILE: i32 = 7;
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: getrlimit writes into the provided struct on success and
        // touches nothing else.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == 0 {
            return Some(lim.cur);
        }
        None
    }
    #[cfg(not(unix))]
    {
        None
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest, WAKE_TOKEN};
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    // The kernel ABI directly; no libc crate in the build environment.
    // `struct epoll_event` is packed on x86_64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub struct Poller {
        epfd: OwnedFd,
        wake_rx: UnixStream,
        wake_tx: Arc<UnixStream>,
        buf: Vec<EpollEvent>,
    }

    #[derive(Clone)]
    pub struct Waker {
        tx: Arc<UnixStream>,
    }

    impl Waker {
        pub fn wake(&self) {
            // One pending byte is enough to pop the next wait; a full pipe
            // (WouldBlock) already guarantees that.
            let _ = (&*self.tx).write(&[1]);
        }
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; a valid fd (or -1) comes back.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: epfd is a freshly created, owned descriptor.
            let epfd = unsafe { OwnedFd::from_raw_fd(epfd) };
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let poller = Poller {
                epfd,
                wake_rx,
                wake_tx: Arc::new(wake_tx),
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            };
            poller.ctl(
                EPOLL_CTL_ADD,
                poller.wake_rx.as_raw_fd(),
                WAKE_TOKEN as u64,
                EPOLLIN,
            )?;
            Ok(poller)
        }

        pub fn waker(&self) -> Waker {
            Waker {
                tx: self.wake_tx.clone(),
            }
        }

        fn ctl(&self, op: i32, fd: RawFd, data: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: epfd and fd are valid descriptors; ev outlives the call.
            if unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token as u64, interest_bits(interest))
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token as u64, interest_bits(interest))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Block up to `timeout` for readiness; `events` is cleared and
        /// refilled. A [`WAKE_TOKEN`] event has already had the wake pipe
        /// drained — callers just check their queues.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: buf is a live, correctly sized allocation for maxevents.
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    millis,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                let ev = self.buf[i];
                let bits = ev.events;
                let token = ev.data as usize;
                if token == WAKE_TOKEN {
                    let mut sink = [0u8; 64];
                    while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                }
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            if n as usize == self.buf.len() {
                // Saturated: grow so a big shard never starves late tokens.
                self.buf
                    .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest, WAKE_TOKEN};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Degraded portable poller: every registered fd is reported ready for
    /// its declared interest on each wait tick. Spurious readiness is
    /// harmless against nonblocking sockets; see the module docs.
    pub struct Poller {
        registered: Arc<Mutex<HashMap<RawFd, (usize, Interest)>>>,
        woken: Arc<AtomicBool>,
    }

    #[derive(Clone)]
    pub struct Waker {
        woken: Arc<AtomicBool>,
    }

    impl Waker {
        pub fn wake(&self) {
            self.woken.store(true, Ordering::SeqCst);
        }
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Arc::new(Mutex::new(HashMap::new())),
                woken: Arc::new(AtomicBool::new(false)),
            })
        }

        pub fn waker(&self) -> Waker {
            Waker {
                woken: self.woken.clone(),
            }
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            if self.woken.swap(false, Ordering::SeqCst) {
                events.push(Event {
                    token: WAKE_TOKEN,
                    readable: true,
                    writable: false,
                    error: false,
                });
            }
            for (&_fd, &(token, interest)) in self.registered.lock().unwrap().iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    error: false,
                });
            }
            Ok(())
        }
    }
}

pub use imp::{Poller, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn waker_pops_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        // Far below the 5s timeout: the wake must pop the wait early.
        loop {
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            if events.iter().any(|e| e.token == WAKE_TOKEN) {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "wake never arrived");
        }
        assert!(t0.elapsed() < Duration::from_secs(4));
        t.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn readable_socket_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let t0 = std::time::Instant::now();
        loop {
            poller
                .wait(&mut events, Duration::from_millis(500))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "readable event never arrived"
            );
        }
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        poller.deregister(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn fd_limit_is_detectable_on_unix() {
        #[cfg(unix)]
        assert!(max_open_files().unwrap() > 0);
        #[cfg(not(unix))]
        assert!(max_open_files().is_none());
    }
}
