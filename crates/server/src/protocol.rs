//! The native wire protocol: length-prefixed frames over TCP.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is the message tag. Integers
//! are little-endian; strings are a `u32` byte length plus UTF-8 bytes;
//! values are a one-byte type tag (1 = int, 2 = float, 3 = string)
//! followed by the scalar. Frames are capped at [`MAX_FRAME`] bytes — a
//! peer announcing a larger frame is a protocol error, never an
//! allocation (payloads are read incrementally in bounded chunks, so a
//! hostile length prefix cannot force a large up-front allocation
//! either).
//!
//! Version 2 adds *statement pipelining*: a client may wrap requests in
//! [`Request::Tagged`] and keep several in flight on one connection; each
//! response frame comes back wrapped in [`Response::Tagged`] carrying the
//! request's tag. Frames of different tags may interleave, but the frames
//! of one tag keep their v1 order (header → batches → done). Version
//! negotiation is backward compatible: the server answers `Hello` with
//! `min(client_version, PROTOCOL_VERSION)` and a v1 peer keeps speaking
//! plain frames.
//!
//! See the crate-level docs for the full message flow; the short version:
//!
//! ```text
//! client                          server
//!   Hello{version, tenant}  →
//!                           ←      HelloOk{version, conn_id, cancel_key,
//!                                          max_inflight}
//!   Tagged{7, Query{sql}}   →      (plain Query{sql} in v1)
//!   Tagged{8, Query{sql}}   →      (second in-flight statement, v2 only)
//!                           ←      Tagged{7, RowHeader{columns}}
//!                           ←      Tagged{8, RowHeader{columns}}   (interleaved)
//!                           ←      Tagged{7, RowBatch{rows}}   (0..n frames)
//!                           ←      Tagged{7, Done{summary}}    (or Error{code,msg})
//!                           ←      Tagged{8, Done{summary}}
//!   Cancel{conn_id, key}    →      (first frame of a *separate* connection)
//!                           ←      Ok
//! ```

use std::io::{Read, Write};

use skinnerdb::Value;

/// Protocol version spoken by this crate (v2: tagged pipelining, tenant
/// handshake, per-connection in-flight caps).
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version the server still accepts.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame's payload (16 MiB). Row batches are sized
/// well under this by the server.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Payloads are read (and grown) in chunks of at most this many bytes, so
/// a hostile length prefix never forces a MAX_FRAME-sized allocation
/// before any payload bytes arrive.
pub const READ_CHUNK: usize = 64 * 1024;

/// Rows per `RowBatch` frame the server emits.
pub const ROWS_PER_BATCH: usize = 256;

/// Default cap on concurrently in-flight pipelined statements per
/// connection (the server advertises its actual cap in `HelloOk`).
pub const DEFAULT_MAX_INFLIGHT: u32 = 32;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Must be the first message on a connection (except [`Request::Cancel`]).
    /// `tenant` names the admission class (empty = default tenant); on the
    /// wire the field is omitted when empty, so a v1 `Hello` payload stays
    /// byte-identical.
    Hello { version: u32, tenant: String },
    /// v2 pipelining envelope: the inner request, stamped with a
    /// client-chosen tag echoed on every response frame it produces.
    /// Nesting (a Tagged inside a Tagged) is malformed.
    Tagged { tag: u32, req: Box<Request> },
    /// Run a SQL script; also carries `SET`/`SHOW` commands.
    Query { sql: String },
    /// Parse + bind a SELECT once; returns a statement id.
    Prepare { sql: String },
    /// Execute a previously prepared statement.
    Execute { id: u32 },
    /// Drop a prepared statement.
    Close { id: u32 },
    /// Set a session option without going through SQL text.
    Set { key: String, value: String },
    /// Out-of-band cancel: sent as the *only* message of a fresh
    /// connection, aborts the query running on connection `conn_id` if
    /// `key` matches the secret from that connection's handshake.
    Cancel { conn_id: u64, key: u64 },
    /// Ask the server to shut down gracefully (drain, join, exit).
    Shutdown,
    /// Fetch the span profile of a recently completed statement on this
    /// connection (EXPLAIN ANALYZE over the wire). `key` is the pipeline
    /// tag the statement ran under (as `u64`); `u64::MAX` means the most
    /// recently completed statement regardless of tag.
    Profile { key: u64 },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    HelloOk {
        version: u32,
        conn_id: u64,
        cancel_key: u64,
        /// Pipelined statements the server allows in flight at once on
        /// this connection. Only on the wire when `version >= 2`; decoded
        /// as 1 for v1 peers (which are strictly request/response).
        max_inflight: u32,
    },
    /// v2 pipelining envelope mirroring [`Request::Tagged`].
    Tagged {
        tag: u32,
        resp: Box<Response>,
    },
    /// Generic acknowledgement (SET, Cancel, Shutdown).
    Ok,
    PrepareOk {
        id: u32,
        columns: Vec<String>,
    },
    RowHeader {
        columns: Vec<String>,
    },
    RowBatch {
        rows: Vec<Vec<Value>>,
    },
    /// Terminates a successful query; carries per-statement detail.
    Done {
        summary: QuerySummary,
    },
    /// A query answered in text mode (`SET output = text`): one rendered
    /// table instead of header/batches, still terminated by `Done`.
    Text {
        text: String,
    },
    Error {
        code: ErrorCode,
        message: String,
    },
    /// Answer to [`Request::Profile`]: the statement's recorded span
    /// timeline (stage, start, duration, detail) plus totals.
    Profile(QueryProfile),
}

/// Wire-level error classes, so clients can react without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Parse/bind/option errors — the SQL itself is at fault.
    Sql = 1,
    /// Work limit or deadline exceeded.
    Timeout = 2,
    /// Cancelled via the out-of-band cancel message.
    Cancelled = 3,
    /// Load shed: admission queue full or admission wait timed out.
    Overloaded = 4,
    /// Malformed frame / message out of order.
    Protocol = 5,
    /// Server is shutting down.
    ShuttingDown = 6,
    /// Connection limit reached.
    TooManyConnections = 7,
    /// Unknown prepared-statement id.
    UnknownStatement = 8,
    /// A value or count in the result exceeds what one frame can carry
    /// (v2; downgraded to [`ErrorCode::Protocol`] for v1 peers).
    TooLarge = 9,
}

impl ErrorCode {
    fn from_u16(x: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match x {
            1 => Sql,
            2 => Timeout,
            3 => Cancelled,
            4 => Overloaded,
            5 => Protocol,
            6 => ShuttingDown,
            7 => TooManyConnections,
            8 => UnknownStatement,
            9 => TooLarge,
            _ => return None,
        })
    }
}

/// Per-query execution summary, with one entry per script statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySummary {
    pub work_units: u64,
    pub wall_micros: u64,
    pub statements: Vec<StatementSummary>,
}

/// One script statement's own numbers (the satellite fix in the library:
/// scripts report per-statement metrics, and the server forwards them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementSummary {
    pub rows: u64,
    pub work_units: u64,
    pub wall_micros: u64,
    /// Learning-engine episodes (time slices) the statement ran.
    pub slices: u64,
    /// Join order the statement executed/converged to (table positions).
    pub order: Vec<u32>,
}

/// A completed statement's span timeline, as captured by the always-on
/// per-query trace and returned by [`Request::Profile`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Nanoseconds from the statement entering the server (dispatch) to
    /// its response frames being encoded.
    pub total_ns: u64,
    /// Spans the fixed-size trace ring overwrote (0 unless the episode
    /// loop switched join orders more times than the ring holds).
    pub dropped: u64,
    pub spans: Vec<ProfileSpan>,
}

/// One stage of a profiled statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Stage name: `admission_wait`, `parse_bind`, `preprocess`,
    /// `episodes`, `postprocess`, `encode_flush`.
    pub stage: String,
    /// Qualifier (the join order an episode run used); often empty.
    pub label: String,
    /// Nanoseconds from the trace epoch to the stage start.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
    /// Stage-defined detail (slices run, pages skipped, rows, ...).
    pub detail: u64,
}

impl QueryProfile {
    /// Total nanoseconds spent in `stage` across all its spans.
    pub fn stage_ns(&self, stage: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// The distinct stage names present, in first-appearance order.
    pub fn stages(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.stage.as_str()) {
                out.push(&s.stage);
            }
        }
        out
    }
}

/// Errors arising while reading, decoding or encoding a frame.
#[derive(Debug)]
pub enum WireError {
    Io(std::io::Error),
    /// Malformed payload, unknown tag, or an oversized frame.
    Malformed(String),
    /// A length on the *encode* side exceeds `u32`/[`MAX_FRAME`] bounds —
    /// the frame is refused before a silently truncated length corrupts
    /// the stream.
    Oversize(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Oversize(m) => write!(f, "unencodable frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

// ---- primitive encoders -------------------------------------------------

/// Buffer builder with *checked* lengths: strings and element counts that
/// do not fit `u32`/[`MAX_FRAME`] bounds record an error instead of being
/// silently truncated by an `as u32` cast (which would emit a length
/// prefix disagreeing with the bytes that follow and desync the peer).
/// The first oversize condition sticks; [`Enc::finish`] surfaces it.
struct Enc {
    buf: Vec<u8>,
    oversize: Option<String>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        Enc {
            buf: vec![tag],
            oversize: None,
        }
    }
    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }
    fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    /// Record an element count as `u32`, refusing counts that don't fit.
    fn count(&mut self, n: usize, what: &str) -> u32 {
        match u32::try_from(n) {
            Ok(x) => {
                self.u32(x);
                x
            }
            Err(_) => {
                self.fail(format!("{what} count {n} exceeds u32"));
                self.u32(0);
                0
            }
        }
    }
    fn str(&mut self, s: &str) {
        if s.len() > MAX_FRAME as usize {
            self.fail(format!(
                "string of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
                s.len()
            ));
            self.u32(0);
            return;
        }
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(1);
                self.u64(*i as u64);
            }
            Value::Float(x) => {
                self.u8(2);
                self.f64(*x);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
        }
    }
    fn fail(&mut self, msg: String) {
        self.oversize.get_or_insert(msg);
    }
    fn finish(self) -> Result<Vec<u8>, WireError> {
        match self.oversize {
            None => Ok(self.buf),
            Some(msg) => Err(WireError::Oversize(msg)),
        }
    }
}

// ---- primitive decoders -------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }
    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::from(self.str()?.as_str())),
            t => Err(malformed(format!("unknown value tag {t}"))),
        }
    }
    /// Everything not yet consumed (used by envelope/optional-tail codecs).
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes in payload"))
        }
    }
}

// ---- framing ------------------------------------------------------------

fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    // Enforced on the write side too (not just on read): an oversized
    // frame must fail loudly here, before half a header desyncs the peer.
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(malformed(format!(
            "refusing to write a {}-byte frame (MAX_FRAME is {MAX_FRAME})",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(malformed(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    // Grow the buffer at most READ_CHUNK ahead of the bytes actually
    // received: the length prefix is attacker-controlled, and a swarm of
    // connections announcing MAX_FRAME with no payload must not pin
    // MAX_FRAME-sized allocations each.
    let len = len as usize;
    let mut payload = Vec::new();
    while payload.len() < len {
        let chunk = (len - payload.len()).min(READ_CHUNK);
        let filled = payload.len();
        payload.resize(filled + chunk, 0);
        r.read_exact(&mut payload[filled..])?;
    }
    Ok(payload)
}

/// Accumulates raw socket bytes and yields complete frame payloads — the
/// incremental-decode half of the event loop's nonblocking reads. Bytes
/// arrive in arbitrary segments via [`FrameBuffer::ingest`];
/// [`FrameBuffer::try_frame`] pops one payload when its frame is whole.
/// The MAX_FRAME check happens as soon as the 4-byte header is visible,
/// before any payload accumulates.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append freshly read socket bytes.
    pub fn ingest(&mut self, data: &[u8]) {
        // Reclaim consumed prefix before growing (amortized O(1)).
        if self.start > 0 && (self.start >= READ_CHUNK || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame payload, `Ok(None)` if more bytes are
    /// needed, or an error for an oversized header (connection-fatal).
    pub fn try_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(malformed(format!("frame of {len} bytes exceeds MAX_FRAME")));
        }
        let len = len as usize;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(payload))
    }
}

// ---- message codecs -----------------------------------------------------

impl Request {
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut e;
        match self {
            Request::Hello { version, tenant } => {
                e = Enc::new(0x01);
                e.u32(*version);
                // Omitted when empty, keeping a default-tenant Hello
                // byte-identical to the v1 encoding.
                if !tenant.is_empty() {
                    e.str(tenant);
                }
            }
            Request::Tagged { tag, req } => {
                if matches!(**req, Request::Tagged { .. }) {
                    return Err(WireError::Oversize(
                        "refusing to nest Tagged inside Tagged".into(),
                    ));
                }
                let inner = req.encode()?;
                e = Enc::new(0x10);
                e.u32(*tag);
                e.raw(&inner);
            }
            Request::Query { sql } => {
                e = Enc::new(0x02);
                e.str(sql);
            }
            Request::Prepare { sql } => {
                e = Enc::new(0x03);
                e.str(sql);
            }
            Request::Execute { id } => {
                e = Enc::new(0x04);
                e.u32(*id);
            }
            Request::Close { id } => {
                e = Enc::new(0x05);
                e.u32(*id);
            }
            Request::Set { key, value } => {
                e = Enc::new(0x06);
                e.str(key);
                e.str(value);
            }
            Request::Cancel { conn_id, key } => {
                e = Enc::new(0x07);
                e.u64(*conn_id);
                e.u64(*key);
            }
            Request::Shutdown => e = Enc::new(0x08),
            Request::Profile { key } => {
                e = Enc::new(0x09);
                e.u64(*key);
            }
        }
        e.finish()
    }

    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            0x01 => {
                let version = d.u32()?;
                let tenant = if d.remaining() > 0 {
                    d.str()?
                } else {
                    String::new()
                };
                Request::Hello { version, tenant }
            }
            0x10 => {
                let tag = d.u32()?;
                let inner = Request::decode(d.rest())?;
                if matches!(inner, Request::Tagged { .. }) {
                    return Err(malformed("nested Tagged request"));
                }
                Request::Tagged {
                    tag,
                    req: Box::new(inner),
                }
            }
            0x02 => Request::Query { sql: d.str()? },
            0x03 => Request::Prepare { sql: d.str()? },
            0x04 => Request::Execute { id: d.u32()? },
            0x05 => Request::Close { id: d.u32()? },
            0x06 => Request::Set {
                key: d.str()?,
                value: d.str()?,
            },
            0x07 => Request::Cancel {
                conn_id: d.u64()?,
                key: d.u64()?,
            },
            0x08 => Request::Shutdown,
            0x09 => Request::Profile { key: d.u64()? },
            t => return Err(malformed(format!("unknown request tag {t:#x}"))),
        };
        d.finish()?;
        Ok(req)
    }

    /// Write this request as one frame.
    pub fn write(&self, w: &mut impl Write) -> Result<(), WireError> {
        write_frame(w, &self.encode()?)
    }

    /// Read one request frame.
    pub fn read(r: &mut impl Read) -> Result<Request, WireError> {
        Request::decode(&read_frame(r)?)
    }
}

impl Response {
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut e;
        match self {
            Response::HelloOk {
                version,
                conn_id,
                cancel_key,
                max_inflight,
            } => {
                e = Enc::new(0x81);
                e.u32(*version);
                e.u64(*conn_id);
                e.u64(*cancel_key);
                // The in-flight cap is a v2 field; a v1 peer stops
                // reading after cancel_key and must not see extra bytes.
                if *version >= 2 {
                    e.u32(*max_inflight);
                }
            }
            Response::Tagged { tag, resp } => {
                if matches!(**resp, Response::Tagged { .. }) {
                    return Err(WireError::Oversize(
                        "refusing to nest Tagged inside Tagged".into(),
                    ));
                }
                let inner = resp.encode()?;
                e = Enc::new(0x90);
                e.u32(*tag);
                e.raw(&inner);
            }
            Response::Ok => e = Enc::new(0x82),
            Response::PrepareOk { id, columns } => {
                e = Enc::new(0x83);
                e.u32(*id);
                e.count(columns.len(), "column");
                for c in columns {
                    e.str(c);
                }
            }
            Response::RowHeader { columns } => {
                e = Enc::new(0x84);
                e.count(columns.len(), "column");
                for c in columns {
                    e.str(c);
                }
            }
            Response::RowBatch { rows } => {
                e = Enc::new(0x85);
                e.count(rows.len(), "row");
                for row in rows {
                    e.count(row.len(), "value");
                    for v in row {
                        e.value(v);
                    }
                }
            }
            Response::Done { summary } => {
                e = Enc::new(0x86);
                e.u64(summary.work_units);
                e.u64(summary.wall_micros);
                e.count(summary.statements.len(), "statement");
                for s in &summary.statements {
                    e.u64(s.rows);
                    e.u64(s.work_units);
                    e.u64(s.wall_micros);
                    e.u64(s.slices);
                    e.count(s.order.len(), "join-order entry");
                    for &t in &s.order {
                        e.u32(t);
                    }
                }
            }
            Response::Text { text } => {
                e = Enc::new(0x87);
                e.str(text);
            }
            Response::Error { code, message } => {
                e = Enc::new(0x88);
                e.u16(*code as u16);
                e.str(message);
            }
            Response::Profile(profile) => {
                e = Enc::new(0x89);
                e.u64(profile.total_ns);
                e.u64(profile.dropped);
                e.count(profile.spans.len(), "span");
                for s in &profile.spans {
                    e.str(&s.stage);
                    e.str(&s.label);
                    e.u64(s.start_ns);
                    e.u64(s.dur_ns);
                    e.u64(s.detail);
                }
            }
        }
        e.finish()
    }

    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut d = Dec::new(payload);
        let resp = match d.u8()? {
            0x81 => {
                let version = d.u32()?;
                let conn_id = d.u64()?;
                let cancel_key = d.u64()?;
                let max_inflight = if version >= 2 && d.remaining() > 0 {
                    d.u32()?
                } else {
                    1
                };
                Response::HelloOk {
                    version,
                    conn_id,
                    cancel_key,
                    max_inflight,
                }
            }
            0x90 => {
                let tag = d.u32()?;
                let inner = Response::decode(d.rest())?;
                if matches!(inner, Response::Tagged { .. }) {
                    return Err(malformed("nested Tagged response"));
                }
                Response::Tagged {
                    tag,
                    resp: Box::new(inner),
                }
            }
            0x82 => Response::Ok,
            0x83 => {
                let id = d.u32()?;
                let n = d.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    columns.push(d.str()?);
                }
                Response::PrepareOk { id, columns }
            }
            0x84 => {
                let n = d.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    columns.push(d.str()?);
                }
                Response::RowHeader { columns }
            }
            0x85 => {
                let n = d.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(ROWS_PER_BATCH * 4));
                for _ in 0..n {
                    let w = d.u32()? as usize;
                    let mut row = Vec::with_capacity(w.min(4096));
                    for _ in 0..w {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                Response::RowBatch { rows }
            }
            0x86 => {
                let work_units = d.u64()?;
                let wall_micros = d.u64()?;
                let n = d.u32()? as usize;
                let mut statements = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let rows = d.u64()?;
                    let work_units = d.u64()?;
                    let wall_micros = d.u64()?;
                    let slices = d.u64()?;
                    let k = d.u32()? as usize;
                    let mut order = Vec::with_capacity(k.min(4096));
                    for _ in 0..k {
                        order.push(d.u32()?);
                    }
                    statements.push(StatementSummary {
                        rows,
                        work_units,
                        wall_micros,
                        slices,
                        order,
                    });
                }
                Response::Done {
                    summary: QuerySummary {
                        work_units,
                        wall_micros,
                        statements,
                    },
                }
            }
            0x87 => Response::Text { text: d.str()? },
            0x88 => {
                let code = d.u16()?;
                let message = d.str()?;
                Response::Error {
                    code: ErrorCode::from_u16(code)
                        .ok_or_else(|| malformed(format!("unknown error code {code}")))?,
                    message,
                }
            }
            0x89 => {
                let total_ns = d.u64()?;
                let dropped = d.u64()?;
                let n = d.u32()? as usize;
                let mut spans = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    spans.push(ProfileSpan {
                        stage: d.str()?,
                        label: d.str()?,
                        start_ns: d.u64()?,
                        dur_ns: d.u64()?,
                        detail: d.u64()?,
                    });
                }
                Response::Profile(QueryProfile {
                    total_ns,
                    dropped,
                    spans,
                })
            }
            t => return Err(malformed(format!("unknown response tag {t:#x}"))),
        };
        d.finish()?;
        Ok(resp)
    }

    /// Write this response as one frame.
    pub fn write(&self, w: &mut impl Write) -> Result<(), WireError> {
        write_frame(w, &self.encode()?)
    }

    /// Encode as a complete frame (length prefix + payload) into `out` —
    /// the event loop's outbox format.
    pub fn encode_framed(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let payload = self.encode()?;
        if payload.len() as u64 > MAX_FRAME as u64 {
            return Err(WireError::Oversize(format!(
                "{}-byte frame exceeds MAX_FRAME ({MAX_FRAME})",
                payload.len()
            )));
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(())
    }

    /// Read one response frame.
    pub fn read(r: &mut impl Read) -> Result<Response, WireError> {
        Response::decode(&read_frame(r)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        let got = Request::read(&mut buf.as_slice()).unwrap();
        assert_eq!(got, req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        let got = Response::read(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: String::new(),
        });
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: "analytics".into(),
        });
        roundtrip_req(Request::Tagged {
            tag: 0xfeed_beef,
            req: Box::new(Request::Query {
                sql: "SELECT t.x FROM t".into(),
            }),
        });
        roundtrip_req(Request::Query {
            sql: "SELECT t.x FROM t".into(),
        });
        roundtrip_req(Request::Prepare { sql: "".into() });
        roundtrip_req(Request::Execute { id: 7 });
        roundtrip_req(Request::Close { id: 7 });
        roundtrip_req(Request::Set {
            key: "strategy".into(),
            value: "parallel_skinner".into(),
        });
        roundtrip_req(Request::Cancel {
            conn_id: u64::MAX,
            key: 12345,
        });
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Profile { key: 17 });
        roundtrip_req(Request::Profile { key: u64::MAX });
    }

    #[test]
    fn profiles_roundtrip() {
        roundtrip_resp(Response::Profile(QueryProfile::default()));
        let profile = QueryProfile {
            total_ns: 123_456_789,
            dropped: 2,
            spans: vec![
                ProfileSpan {
                    stage: "admission_wait".into(),
                    label: String::new(),
                    start_ns: 0,
                    dur_ns: 1_200,
                    detail: 0,
                },
                ProfileSpan {
                    stage: "episodes".into(),
                    label: "order=[2,0,1]".into(),
                    start_ns: 9_999,
                    dur_ns: 88_000_000,
                    detail: 412,
                },
            ],
        };
        assert_eq!(profile.stage_ns("episodes"), 88_000_000);
        assert_eq!(profile.stages(), vec!["admission_wait", "episodes"]);
        roundtrip_resp(Response::Profile(profile));
        roundtrip_resp(Response::Tagged {
            tag: 5,
            resp: Box::new(Response::Profile(QueryProfile {
                total_ns: 7,
                dropped: 0,
                spans: vec![ProfileSpan::default()],
            })),
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::HelloOk {
            version: 1,
            conn_id: 3,
            cancel_key: 0xdead_beef,
            max_inflight: 1,
        });
        roundtrip_resp(Response::HelloOk {
            version: 2,
            conn_id: 3,
            cancel_key: 0xdead_beef,
            max_inflight: 32,
        });
        roundtrip_resp(Response::Tagged {
            tag: 41,
            resp: Box::new(Response::RowHeader {
                columns: vec!["a".into(), "b".into()],
            }),
        });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::PrepareOk {
            id: 1,
            columns: vec!["t.x".into(), "c".into()],
        });
        roundtrip_resp(Response::RowHeader {
            columns: vec!["a".into()],
        });
        roundtrip_resp(Response::RowBatch {
            rows: vec![
                vec![Value::Int(-5), Value::Float(2.75), Value::from("héllo")],
                vec![
                    Value::Int(i64::MIN),
                    Value::Float(f64::MAX),
                    Value::from(""),
                ],
            ],
        });
        roundtrip_resp(Response::Done {
            summary: QuerySummary {
                work_units: 99,
                wall_micros: 1_000_000,
                statements: vec![
                    StatementSummary {
                        rows: 10,
                        work_units: 44,
                        wall_micros: 17,
                        slices: 3,
                        order: vec![2, 0, 1],
                    },
                    StatementSummary::default(),
                ],
            },
        });
        roundtrip_resp(Response::Text {
            text: "a  b\n-  -\n1  2\n".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        // Unknown tag.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x01]).is_err());
        // Truncated string.
        let mut e = Request::Query {
            sql: "hello".into(),
        }
        .encode()
        .unwrap();
        e.truncate(e.len() - 2);
        assert!(Request::decode(&e).is_err());
        // Trailing garbage.
        let mut e = Request::Shutdown.encode().unwrap();
        e.push(0);
        assert!(Request::decode(&e).is_err());
        // Oversized frame length.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // Unknown error code.
        assert!(Response::decode(&{
            let mut e = Enc::new(0x88);
            e.u16(999);
            e.str("x");
            e.finish().unwrap()
        })
        .is_err());
        // Nested Tagged envelopes are refused on both sides.
        let nested = Request::Tagged {
            tag: 1,
            req: Box::new(Request::Tagged {
                tag: 2,
                req: Box::new(Request::Shutdown),
            }),
        };
        assert!(nested.encode().is_err());
        // Build the nested bytes by hand (encode refuses to).
        let mut hand_rolled = Enc::new(0x10);
        hand_rolled.u32(1);
        let mut innermost = Enc::new(0x10);
        innermost.u32(2);
        innermost.raw(&Request::Shutdown.encode().unwrap());
        hand_rolled.raw(&innermost.finish().unwrap());
        assert!(Request::decode(&hand_rolled.finish().unwrap()).is_err());
    }

    /// Satellite regression: a hostile MAX_FRAME length prefix with *no*
    /// payload bytes must not allocate MAX_FRAME up front — reads proceed
    /// in READ_CHUNK slices, so the reader never sees a huge buffer.
    #[test]
    fn hostile_length_prefix_reads_in_bounded_chunks() {
        struct Metered<'a> {
            inner: &'a [u8],
            max_slice: usize,
        }
        impl Read for Metered<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.max_slice = self.max_slice.max(buf.len());
                self.inner.read(buf)
            }
        }
        // Header announces MAX_FRAME; zero payload bytes follow (EOF).
        let header = MAX_FRAME.to_le_bytes();
        let mut r = Metered {
            inner: &header,
            max_slice: 0,
        };
        let err = read_frame(&mut r).expect_err("truncated frame must error");
        assert!(matches!(err, WireError::Io(_)), "got {err}");
        assert!(
            r.max_slice <= READ_CHUNK,
            "read slice of {} bytes — payload buffer allocated ahead of data",
            r.max_slice
        );
        // A legitimate multi-chunk frame still arrives intact.
        let big = Request::Query {
            sql: "x".repeat(3 * READ_CHUNK + 17),
        };
        let mut bytes = Vec::new();
        big.write(&mut bytes).unwrap();
        let mut r = Metered {
            inner: &bytes,
            max_slice: 0,
        };
        let payload = read_frame(&mut r).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), big);
        assert!(r.max_slice <= READ_CHUNK);
    }

    /// Satellite regression: encode-side lengths past `u32`/MAX_FRAME
    /// bounds produce a typed error instead of a silently truncated
    /// (corrupt) frame.
    #[test]
    fn oversize_encode_is_a_typed_error_not_truncation() {
        // Exactly at the frame cap: the string length check passes; the
        // whole-frame cap is enforced by the framing layer.
        let at_cap = "x".repeat(MAX_FRAME as usize);
        let ok = Response::Text { text: at_cap }.encode();
        assert!(ok.is_ok(), "MAX_FRAME-long string must still encode");
        // One past the cap: typed Oversize, not a corrupt length prefix.
        let over = "x".repeat(MAX_FRAME as usize + 1);
        let err = Response::Text { text: over }.encode().unwrap_err();
        assert!(matches!(err, WireError::Oversize(_)), "got {err}");
        // The framed write path refuses a payload over MAX_FRAME loudly.
        let at_cap = "x".repeat(MAX_FRAME as usize);
        let mut sink = Vec::new();
        let err = Response::Text { text: at_cap }
            .write(&mut sink)
            .expect_err("payload cap enforced at the frame layer");
        assert!(matches!(err, WireError::Malformed(_)), "got {err}");
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let frames = [
            Request::Query {
                sql: "SELECT 1".into(),
            }
            .encode()
            .unwrap(),
            Request::Tagged {
                tag: 9,
                req: Box::new(Request::Execute { id: 3 }),
            }
            .encode()
            .unwrap(),
            Request::Shutdown.encode().unwrap(),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&(f.len() as u32).to_le_bytes());
            wire.extend_from_slice(f);
        }
        // Feed the byte stream in every possible 1..n chunk size.
        for chunk in [1usize, 2, 3, 5, 7, wire.len()] {
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.ingest(piece);
                while let Some(payload) = fb.try_frame().unwrap() {
                    got.push(payload);
                }
            }
            assert_eq!(got.len(), frames.len(), "chunk size {chunk}");
            for (g, f) in got.iter().zip(frames.iter()) {
                assert_eq!(g, f, "chunk size {chunk}");
            }
            assert_eq!(fb.buffered(), 0);
        }
    }

    #[test]
    fn frame_buffer_rejects_oversized_header_immediately() {
        let mut fb = FrameBuffer::new();
        fb.ingest(&(MAX_FRAME + 1).to_le_bytes());
        assert!(fb.try_frame().is_err());
    }

    /// v1 byte-compatibility: a default-tenant v2 `Hello` and a v1
    /// `HelloOk` keep the exact v1 encodings, so old peers interoperate.
    #[test]
    fn v1_frame_shapes_are_preserved() {
        let hello = Request::Hello {
            version: 1,
            tenant: String::new(),
        }
        .encode()
        .unwrap();
        assert_eq!(hello.len(), 1 + 4, "v1 Hello is tag + u32 version");
        let hello_ok = Response::HelloOk {
            version: 1,
            conn_id: 5,
            cancel_key: 6,
            max_inflight: 1,
        }
        .encode()
        .unwrap();
        assert_eq!(hello_ok.len(), 1 + 4 + 8 + 8, "v1 HelloOk has no cap field");
        // v2 appends the in-flight cap.
        let hello_ok2 = Response::HelloOk {
            version: 2,
            conn_id: 5,
            cancel_key: 6,
            max_inflight: 32,
        }
        .encode()
        .unwrap();
        assert_eq!(hello_ok2.len(), 1 + 4 + 8 + 8 + 4);
    }

    #[test]
    fn empty_stream_reports_io_error() {
        let empty: &[u8] = &[];
        assert!(matches!(
            Request::read(&mut { empty }),
            Err(WireError::Io(_))
        ));
    }
}
