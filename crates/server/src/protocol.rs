//! The native wire protocol: length-prefixed frames over TCP.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is the message tag. Integers
//! are little-endian; strings are a `u32` byte length plus UTF-8 bytes;
//! values are a one-byte type tag (1 = int, 2 = float, 3 = string)
//! followed by the scalar. Frames are capped at [`MAX_FRAME`] bytes — a
//! peer announcing a larger frame is a protocol error, never an
//! allocation.
//!
//! See the crate-level docs for the full message flow; the short version:
//!
//! ```text
//! client                          server
//!   Hello{version}          →
//!                           ←      HelloOk{version, conn_id, cancel_key}
//!   Query{sql}              →
//!                           ←      RowHeader{columns}
//!                           ←      RowBatch{rows}   (0..n frames)
//!                           ←      Done{summary}    (or Error{code,msg})
//!   Cancel{conn_id, key}    →      (first frame of a *separate* connection)
//!                           ←      Ok
//! ```

use std::io::{Read, Write};

use skinnerdb::Value;

/// Protocol version spoken by this crate.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame's payload (16 MiB). Row batches are sized
/// well under this by the server.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Rows per `RowBatch` frame the server emits.
pub const ROWS_PER_BATCH: usize = 256;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Must be the first message on a connection (except [`Request::Cancel`]).
    Hello { version: u32 },
    /// Run a SQL script; also carries `SET`/`SHOW` commands.
    Query { sql: String },
    /// Parse + bind a SELECT once; returns a statement id.
    Prepare { sql: String },
    /// Execute a previously prepared statement.
    Execute { id: u32 },
    /// Drop a prepared statement.
    Close { id: u32 },
    /// Set a session option without going through SQL text.
    Set { key: String, value: String },
    /// Out-of-band cancel: sent as the *only* message of a fresh
    /// connection, aborts the query running on connection `conn_id` if
    /// `key` matches the secret from that connection's handshake.
    Cancel { conn_id: u64, key: u64 },
    /// Ask the server to shut down gracefully (drain, join, exit).
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    HelloOk {
        version: u32,
        conn_id: u64,
        cancel_key: u64,
    },
    /// Generic acknowledgement (SET, Cancel, Shutdown).
    Ok,
    PrepareOk {
        id: u32,
        columns: Vec<String>,
    },
    RowHeader {
        columns: Vec<String>,
    },
    RowBatch {
        rows: Vec<Vec<Value>>,
    },
    /// Terminates a successful query; carries per-statement detail.
    Done {
        summary: QuerySummary,
    },
    /// A query answered in text mode (`SET output = text`): one rendered
    /// table instead of header/batches, still terminated by `Done`.
    Text {
        text: String,
    },
    Error {
        code: ErrorCode,
        message: String,
    },
}

/// Wire-level error classes, so clients can react without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Parse/bind/option errors — the SQL itself is at fault.
    Sql = 1,
    /// Work limit or deadline exceeded.
    Timeout = 2,
    /// Cancelled via the out-of-band cancel message.
    Cancelled = 3,
    /// Load shed: admission queue full or admission wait timed out.
    Overloaded = 4,
    /// Malformed frame / message out of order.
    Protocol = 5,
    /// Server is shutting down.
    ShuttingDown = 6,
    /// Connection limit reached.
    TooManyConnections = 7,
    /// Unknown prepared-statement id.
    UnknownStatement = 8,
}

impl ErrorCode {
    fn from_u16(x: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match x {
            1 => Sql,
            2 => Timeout,
            3 => Cancelled,
            4 => Overloaded,
            5 => Protocol,
            6 => ShuttingDown,
            7 => TooManyConnections,
            8 => UnknownStatement,
            _ => return None,
        })
    }
}

/// Per-query execution summary, with one entry per script statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySummary {
    pub work_units: u64,
    pub wall_micros: u64,
    pub statements: Vec<StatementSummary>,
}

/// One script statement's own numbers (the satellite fix in the library:
/// scripts report per-statement metrics, and the server forwards them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementSummary {
    pub rows: u64,
    pub work_units: u64,
    pub wall_micros: u64,
    /// Learning-engine episodes (time slices) the statement ran.
    pub slices: u64,
    /// Join order the statement executed/converged to (table positions).
    pub order: Vec<u32>,
}

/// Errors arising while reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    Io(std::io::Error),
    /// Malformed payload, unknown tag, or an oversized frame.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

// ---- primitive encoders -------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new(tag: u8) -> Self {
        Enc(vec![tag])
    }
    fn u8(&mut self, x: u8) {
        self.0.push(x);
    }
    fn u16(&mut self, x: u16) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.0.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(1);
                self.u64(*i as u64);
            }
            Value::Float(x) => {
                self.u8(2);
                self.f64(*x);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
        }
    }
}

// ---- primitive decoders -------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }
    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::from(self.str()?.as_str())),
            t => Err(malformed(format!("unknown value tag {t}"))),
        }
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes in payload"))
        }
    }
}

// ---- framing ------------------------------------------------------------

fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    // Enforced on the write side too (not just on read): an oversized
    // frame must fail loudly here, before half a header desyncs the peer.
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(malformed(format!(
            "refusing to write a {}-byte frame (MAX_FRAME is {MAX_FRAME})",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(malformed(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---- message codecs -----------------------------------------------------

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut e;
        match self {
            Request::Hello { version } => {
                e = Enc::new(0x01);
                e.u32(*version);
            }
            Request::Query { sql } => {
                e = Enc::new(0x02);
                e.str(sql);
            }
            Request::Prepare { sql } => {
                e = Enc::new(0x03);
                e.str(sql);
            }
            Request::Execute { id } => {
                e = Enc::new(0x04);
                e.u32(*id);
            }
            Request::Close { id } => {
                e = Enc::new(0x05);
                e.u32(*id);
            }
            Request::Set { key, value } => {
                e = Enc::new(0x06);
                e.str(key);
                e.str(value);
            }
            Request::Cancel { conn_id, key } => {
                e = Enc::new(0x07);
                e.u64(*conn_id);
                e.u64(*key);
            }
            Request::Shutdown => e = Enc::new(0x08),
        }
        e.0
    }

    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            0x01 => Request::Hello { version: d.u32()? },
            0x02 => Request::Query { sql: d.str()? },
            0x03 => Request::Prepare { sql: d.str()? },
            0x04 => Request::Execute { id: d.u32()? },
            0x05 => Request::Close { id: d.u32()? },
            0x06 => Request::Set {
                key: d.str()?,
                value: d.str()?,
            },
            0x07 => Request::Cancel {
                conn_id: d.u64()?,
                key: d.u64()?,
            },
            0x08 => Request::Shutdown,
            t => return Err(malformed(format!("unknown request tag {t:#x}"))),
        };
        d.finish()?;
        Ok(req)
    }

    /// Write this request as one frame.
    pub fn write(&self, w: &mut impl Write) -> Result<(), WireError> {
        write_frame(w, &self.encode())
    }

    /// Read one request frame.
    pub fn read(r: &mut impl Read) -> Result<Request, WireError> {
        Request::decode(&read_frame(r)?)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut e;
        match self {
            Response::HelloOk {
                version,
                conn_id,
                cancel_key,
            } => {
                e = Enc::new(0x81);
                e.u32(*version);
                e.u64(*conn_id);
                e.u64(*cancel_key);
            }
            Response::Ok => e = Enc::new(0x82),
            Response::PrepareOk { id, columns } => {
                e = Enc::new(0x83);
                e.u32(*id);
                e.u32(columns.len() as u32);
                for c in columns {
                    e.str(c);
                }
            }
            Response::RowHeader { columns } => {
                e = Enc::new(0x84);
                e.u32(columns.len() as u32);
                for c in columns {
                    e.str(c);
                }
            }
            Response::RowBatch { rows } => {
                e = Enc::new(0x85);
                e.u32(rows.len() as u32);
                for row in rows {
                    e.u32(row.len() as u32);
                    for v in row {
                        e.value(v);
                    }
                }
            }
            Response::Done { summary } => {
                e = Enc::new(0x86);
                e.u64(summary.work_units);
                e.u64(summary.wall_micros);
                e.u32(summary.statements.len() as u32);
                for s in &summary.statements {
                    e.u64(s.rows);
                    e.u64(s.work_units);
                    e.u64(s.wall_micros);
                    e.u64(s.slices);
                    e.u32(s.order.len() as u32);
                    for &t in &s.order {
                        e.u32(t);
                    }
                }
            }
            Response::Text { text } => {
                e = Enc::new(0x87);
                e.str(text);
            }
            Response::Error { code, message } => {
                e = Enc::new(0x88);
                e.u16(*code as u16);
                e.str(message);
            }
        }
        e.0
    }

    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut d = Dec::new(payload);
        let resp = match d.u8()? {
            0x81 => Response::HelloOk {
                version: d.u32()?,
                conn_id: d.u64()?,
                cancel_key: d.u64()?,
            },
            0x82 => Response::Ok,
            0x83 => {
                let id = d.u32()?;
                let n = d.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    columns.push(d.str()?);
                }
                Response::PrepareOk { id, columns }
            }
            0x84 => {
                let n = d.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    columns.push(d.str()?);
                }
                Response::RowHeader { columns }
            }
            0x85 => {
                let n = d.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(ROWS_PER_BATCH * 4));
                for _ in 0..n {
                    let w = d.u32()? as usize;
                    let mut row = Vec::with_capacity(w.min(4096));
                    for _ in 0..w {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                Response::RowBatch { rows }
            }
            0x86 => {
                let work_units = d.u64()?;
                let wall_micros = d.u64()?;
                let n = d.u32()? as usize;
                let mut statements = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let rows = d.u64()?;
                    let work_units = d.u64()?;
                    let wall_micros = d.u64()?;
                    let slices = d.u64()?;
                    let k = d.u32()? as usize;
                    let mut order = Vec::with_capacity(k.min(4096));
                    for _ in 0..k {
                        order.push(d.u32()?);
                    }
                    statements.push(StatementSummary {
                        rows,
                        work_units,
                        wall_micros,
                        slices,
                        order,
                    });
                }
                Response::Done {
                    summary: QuerySummary {
                        work_units,
                        wall_micros,
                        statements,
                    },
                }
            }
            0x87 => Response::Text { text: d.str()? },
            0x88 => {
                let code = d.u16()?;
                let message = d.str()?;
                Response::Error {
                    code: ErrorCode::from_u16(code)
                        .ok_or_else(|| malformed(format!("unknown error code {code}")))?,
                    message,
                }
            }
            t => return Err(malformed(format!("unknown response tag {t:#x}"))),
        };
        d.finish()?;
        Ok(resp)
    }

    /// Write this response as one frame.
    pub fn write(&self, w: &mut impl Write) -> Result<(), WireError> {
        write_frame(w, &self.encode())
    }

    /// Read one response frame.
    pub fn read(r: &mut impl Read) -> Result<Response, WireError> {
        Response::decode(&read_frame(r)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        let got = Request::read(&mut buf.as_slice()).unwrap();
        assert_eq!(got, req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        let got = Response::read(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_req(Request::Query {
            sql: "SELECT t.x FROM t".into(),
        });
        roundtrip_req(Request::Prepare { sql: "".into() });
        roundtrip_req(Request::Execute { id: 7 });
        roundtrip_req(Request::Close { id: 7 });
        roundtrip_req(Request::Set {
            key: "strategy".into(),
            value: "parallel_skinner".into(),
        });
        roundtrip_req(Request::Cancel {
            conn_id: u64::MAX,
            key: 12345,
        });
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::HelloOk {
            version: 1,
            conn_id: 3,
            cancel_key: 0xdead_beef,
        });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::PrepareOk {
            id: 1,
            columns: vec!["t.x".into(), "c".into()],
        });
        roundtrip_resp(Response::RowHeader {
            columns: vec!["a".into()],
        });
        roundtrip_resp(Response::RowBatch {
            rows: vec![
                vec![Value::Int(-5), Value::Float(2.75), Value::from("héllo")],
                vec![
                    Value::Int(i64::MIN),
                    Value::Float(f64::MAX),
                    Value::from(""),
                ],
            ],
        });
        roundtrip_resp(Response::Done {
            summary: QuerySummary {
                work_units: 99,
                wall_micros: 1_000_000,
                statements: vec![
                    StatementSummary {
                        rows: 10,
                        work_units: 44,
                        wall_micros: 17,
                        slices: 3,
                        order: vec![2, 0, 1],
                    },
                    StatementSummary::default(),
                ],
            },
        });
        roundtrip_resp(Response::Text {
            text: "a  b\n-  -\n1  2\n".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        // Unknown tag.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x01]).is_err());
        // Truncated string.
        let mut e = Request::Query {
            sql: "hello".into(),
        }
        .encode();
        e.truncate(e.len() - 2);
        assert!(Request::decode(&e).is_err());
        // Trailing garbage.
        let mut e = Request::Shutdown.encode();
        e.push(0);
        assert!(Request::decode(&e).is_err());
        // Oversized frame length.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // Unknown error code.
        assert!(Response::decode(&{
            let mut e = Enc::new(0x88);
            e.u16(999);
            e.str("x");
            e.0
        })
        .is_err());
    }

    #[test]
    fn empty_stream_reports_io_error() {
        let empty: &[u8] = &[];
        assert!(matches!(
            Request::read(&mut { empty }),
            Err(WireError::Io(_))
        ));
    }
}
