//! The concurrent server: acceptor, per-connection sessions, cancellation
//! and graceful shutdown.

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use skinnerdb::skinner_exec::CancelToken;
use skinnerdb::{
    render_table_with, Database, DbError, Prepared, QueryResult, ScriptOutcome, Session,
    TableOptions,
};

use crate::admission::{Admission, AdmissionConfig, AdmissionGate, ShedReason, SlotGuard};
use crate::protocol::{
    ErrorCode, QuerySummary, Request, Response, StatementSummary, WireError, PROTOCOL_VERSION,
    ROWS_PER_BATCH,
};
use crate::stats::ServerStats;

/// Server sizing and behaviour.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections allowed at once; further arrivals are turned away with
    /// an explicit error (never silently dropped).
    pub max_connections: usize,
    /// Query admission control (concurrency gate + bounded queue).
    pub admission: AdmissionConfig,
    /// Honour the wire-level `Shutdown` request (the binary's clean-exit
    /// path; embedders running in-process may prefer to disable it and
    /// call [`Server::shutdown`] themselves).
    pub allow_remote_shutdown: bool,
    /// Rows per `RowBatch` frame.
    pub rows_per_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            admission: AdmissionConfig::default(),
            allow_remote_shutdown: true,
            rows_per_batch: ROWS_PER_BATCH,
        }
    }
}

/// Per-connection state reachable from *other* threads (the cancel path
/// and shutdown).
struct ConnShared {
    stream: TcpStream,
    cancel_key: u64,
    /// The running query's cancel state. Token and flag live under one
    /// lock so "arm a fresh query" and "cancel the current query" are
    /// atomic with respect to each other — a stale cancel aimed at the
    /// previous query can neither kill the next one nor leave a flag
    /// behind that mislabels its outcome.
    slot: Mutex<QuerySlot>,
}

/// Cancel state of the query currently executing on a connection.
struct QuerySlot {
    /// Fresh per query; stale cancels hit an abandoned token harmlessly.
    token: CancelToken,
    /// Set by an out-of-band cancel so the connection can distinguish
    /// "cancelled" from an ordinary deadline/work-limit timeout.
    cancel_requested: bool,
}

struct Shared {
    db: Database,
    cfg: ServerConfig,
    addr: SocketAddr,
    gate: Arc<AdmissionGate>,
    stats: ServerStats,
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<ConnShared>>>,
    next_conn_id: AtomicU64,
    active_conns: AtomicUsize,
    key_seed: AtomicU64,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Shed every queued query immediately.
        self.gate.close();
        // Break every connection: trip the running query's token, then
        // shut the socket so blocked reads/writes error out.
        for conn in self.conns.lock().values() {
            conn.slot.lock().token.cancel();
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor's `accept()` with a throwaway connection.
        // A wildcard bind (0.0.0.0 / ::) is not connectable everywhere;
        // wake through loopback on the same port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }

    /// A process-unique, hard-to-guess cancel key (no RNG dependency:
    /// mixes a counter with the clock, which is plenty for a loopback
    /// protocol's misdirected-cancel guard).
    fn mint_cancel_key(&self) -> u64 {
        let n = self
            .key_seed
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let mut x = n ^ (t << 17) ^ std::process::id() as u64;
        // splitmix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the acceptor, breaks every connection and joins all threads.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// start serving `db`.
    pub fn bind(
        db: Database,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            gate: Arc::new(AdmissionGate::new(cfg.admission)),
            cfg,
            addr: local,
            stats: ServerStats::new(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
            key_seed: AtomicU64::new(0x5123_9d1f_8437_aa77),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("skinner-acceptor".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The address actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared database this server fronts (tests use it to compare
    /// wire results with in-process execution).
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// True once a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Stop accepting, cancel and disconnect every client, and join every
    /// thread the server spawned. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.trigger_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Block until a shutdown is requested (e.g. by a wire-level
    /// `Shutdown` message), then join everything. The binary's main loop.
    pub fn wait(&mut self) {
        while !self.is_shutting_down() {
            std::thread::park_timeout(std::time::Duration::from_millis(100));
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failures (e.g. EMFILE under fd
                // pressure) must not busy-spin a core.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The shutdown wake-up (or an unlucky late client).
            let _ = Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            }
            .write(&mut &stream);
            break;
        }
        // Reap finished connection threads so the handle list stays small.
        handles.retain(|h| !h.is_finished());
        if shared.active_conns.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            ServerStats::bump(&shared.stats.connections_rejected);
            let _ = Response::Error {
                code: ErrorCode::TooManyConnections,
                message: format!(
                    "connection limit ({}) reached; retry later",
                    shared.cfg.max_connections
                ),
            }
            .write(&mut &stream);
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        ServerStats::bump(&shared.stats.connections_total);
        let shared2 = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("skinner-conn".into())
            .spawn(move || {
                let shared = shared2;
                // A panicking connection (a strategy blowing up on a
                // pathological query, say) must still release its
                // connection slot, or 256 such panics would permanently
                // lock everyone out.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Conn::run(stream, &shared)
                }));
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(h) => handles.push(h),
            Err(_) => {
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    // Graceful exit: every connection thread is joined before the
    // acceptor returns, so `Server::shutdown` joining the acceptor
    // transitively joins the whole server.
    for h in handles {
        let _ = h.join();
    }
}

/// How query results travel back.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputMode {
    Binary,
    Text,
}

struct Conn<'a> {
    shared: &'a Shared,
    session: Session,
    me: Arc<ConnShared>,
    conn_id: u64,
    output: OutputMode,
    prepared: HashMap<u32, Prepared>,
    next_stmt_id: u32,
}

impl<'a> Conn<'a> {
    fn run(stream: TcpStream, shared: &Shared) {
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        let me = Arc::new(ConnShared {
            stream: match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            },
            cancel_key: shared.mint_cancel_key(),
            slot: Mutex::new(QuerySlot {
                token: CancelToken::new(),
                cancel_requested: false,
            }),
        });
        shared.conns.lock().insert(conn_id, me.clone());
        let mut conn = Conn {
            shared,
            session: shared.db.session(),
            me,
            conn_id,
            output: OutputMode::Binary,
            prepared: HashMap::new(),
            next_stmt_id: 1,
        };
        // catch_unwind so the conns-map entry is removed even if a
        // request handler panics (the thread's slot is released by the
        // acceptor-side guard either way).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| conn.serve(stream)));
        shared.conns.lock().remove(&conn_id);
    }

    fn serve(&mut self, stream: TcpStream) -> Result<(), WireError> {
        let mut reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        // First frame: Hello — or an out-of-band Cancel/Shutdown on a
        // dedicated connection.
        match Request::read(&mut reader)? {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    let resp = Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                        ),
                    };
                    return resp.write(&mut writer);
                }
                Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    conn_id: self.conn_id,
                    cancel_key: self.me.cancel_key,
                }
                .write(&mut writer)?;
            }
            Request::Cancel { conn_id, key } => {
                let resp = self.handle_cancel(conn_id, key);
                return resp.write(&mut writer);
            }
            Request::Shutdown => {
                return self.handle_shutdown(&mut writer);
            }
            _ => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: "expected Hello as the first message".into(),
                };
                return resp.write(&mut writer);
            }
        }
        loop {
            let req = match Request::read(&mut reader) {
                Ok(req) => req,
                // EOF / reset / socket shut down by shutdown(): done.
                Err(_) => return Ok(()),
            };
            match req {
                Request::Hello { .. } => {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "duplicate Hello".into(),
                    }
                    .write(&mut writer)?;
                }
                Request::Query { sql } => self.handle_query(&sql, &mut writer)?,
                Request::Prepare { sql } => {
                    let resp = match self.session.prepare(&sql) {
                        Ok(p) => {
                            let id = self.next_stmt_id;
                            self.next_stmt_id += 1;
                            let columns = p
                                .query()
                                .select
                                .iter()
                                .map(|s| s.name().to_string())
                                .collect();
                            self.prepared.insert(id, p);
                            Response::PrepareOk { id, columns }
                        }
                        Err(e) => sql_error(&e),
                    };
                    resp.write(&mut writer)?;
                }
                Request::Execute { id } => self.handle_execute(id, &mut writer)?,
                Request::Close { id } => {
                    self.prepared.remove(&id);
                    Response::Ok.write(&mut writer)?;
                }
                Request::Set { key, value } => {
                    let resp = self.handle_set(&key, &value);
                    resp.write(&mut writer)?;
                }
                Request::Cancel { conn_id, key } => {
                    let resp = self.handle_cancel(conn_id, key);
                    resp.write(&mut writer)?;
                }
                Request::Shutdown => return self.handle_shutdown(&mut writer),
            }
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                return Ok(());
            }
        }
    }

    fn handle_shutdown(&mut self, writer: &mut impl std::io::Write) -> Result<(), WireError> {
        if !self.shared.cfg.allow_remote_shutdown {
            return Response::Error {
                code: ErrorCode::Protocol,
                message: "remote shutdown is disabled on this server".into(),
            }
            .write(writer);
        }
        Response::Ok.write(writer)?;
        self.shared.trigger_shutdown();
        Ok(())
    }

    fn handle_cancel(&self, conn_id: u64, key: u64) -> Response {
        let conns = self.shared.conns.lock();
        match conns.get(&conn_id) {
            Some(conn) if conn.cancel_key == key => {
                let mut slot = conn.slot.lock();
                slot.cancel_requested = true;
                slot.token.cancel();
                Response::Ok
            }
            _ => Response::Error {
                code: ErrorCode::Protocol,
                message: "unknown connection id or bad cancel key".into(),
            },
        }
    }

    fn handle_set(&mut self, key: &str, value: &str) -> Response {
        if key.trim().eq_ignore_ascii_case("output") {
            return match value.trim().to_ascii_lowercase().as_str() {
                "binary" => {
                    self.output = OutputMode::Binary;
                    Response::Ok
                }
                "text" => {
                    self.output = OutputMode::Text;
                    Response::Ok
                }
                other => Response::Error {
                    code: ErrorCode::Sql,
                    message: format!("output must be 'binary' or 'text', got {other:?}"),
                },
            };
        }
        match self.session.set_option(key, value) {
            Ok(()) => Response::Ok,
            Err(e) => sql_error(&e),
        }
    }

    /// `SET`/`SHOW` text commands and plain SQL, multiplexed over Query.
    fn handle_query(
        &mut self,
        sql: &str,
        writer: &mut impl std::io::Write,
    ) -> Result<(), WireError> {
        let trimmed = sql.trim().trim_end_matches(';').trim();
        if let Some(rest) = strip_keyword(trimmed, "SET") {
            let resp = match parse_set(rest) {
                Some((key, value)) => self.handle_set(&key, &value),
                None => Response::Error {
                    code: ErrorCode::Sql,
                    message: "usage: SET <option> = <value>".into(),
                },
            };
            return resp.write(writer);
        }
        if let Some(rest) = strip_keyword(trimmed, "SHOW") {
            let resp = self.handle_show(rest);
            return match resp {
                Ok(table) => self.write_result(writer, table, QuerySummary::default()),
                Err(resp) => resp.write(writer),
            };
        }
        self.execute_gated(writer, |conn, ctx| {
            let strategy = conn.session.strategy();
            (
                strategy.name().to_string(),
                conn.shared
                    .db
                    .run_script_detailed(sql, strategy.as_ref(), ctx),
            )
        })
    }

    fn handle_execute(
        &mut self,
        id: u32,
        writer: &mut impl std::io::Write,
    ) -> Result<(), WireError> {
        if !self.prepared.contains_key(&id) {
            return Response::Error {
                code: ErrorCode::UnknownStatement,
                message: format!("no prepared statement #{id}"),
            }
            .write(writer);
        }
        self.execute_gated(writer, |conn, ctx| {
            let p = &conn.prepared[&id];
            let started = Instant::now();
            let out = p.execute_in(ctx);
            let name = p.strategy().name().to_string();
            let script = ScriptOutcome {
                work_units: out.work_units,
                wall: started.elapsed(),
                timed_out: out.timed_out,
                statements: vec![skinnerdb::StatementOutcome {
                    kind: skinnerdb::StatementKind::Select,
                    rows: out.result.num_rows(),
                    work_units: out.work_units,
                    wall: out.wall,
                    timed_out: out.timed_out,
                    metrics: out.metrics,
                }],
                result: out.result,
            };
            (name, Ok(script))
        })
    }

    /// Admission-gated execution shared by Query and Execute: take a slot
    /// (or shed), arm the per-query cancel token, run, stream the result.
    fn execute_gated(
        &mut self,
        writer: &mut impl std::io::Write,
        run: impl FnOnce(&mut Self, &skinnerdb::ExecContext) -> (String, Result<ScriptOutcome, DbError>),
    ) -> Result<(), WireError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            }
            .write(writer);
        }
        // Fresh per-query token honouring the session deadline; parked in
        // the connection slot so the out-of-band cancel path can trip it.
        // Armed *before* queueing at the admission gate, so a cancel that
        // lands while this query waits for a slot is not lost (the
        // deadline clock also covers queue time — the client-perceived
        // latency is what the deadline bounds).
        let token = match self.session.settings().deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        {
            // Atomically arm the new query: install its token and clear
            // any cancel aimed at a previous one.
            let mut slot = self.me.slot.lock();
            slot.token = token.clone();
            slot.cancel_requested = false;
        }
        let guard = match self.shared.gate.admit() {
            Admission::Granted(permit) => SlotGuard::new(self.shared.gate.clone(), permit),
            Admission::Shed(reason) => {
                let code = match reason {
                    ShedReason::Closed => ErrorCode::ShuttingDown,
                    _ => ErrorCode::Overloaded,
                };
                return Response::Error {
                    code,
                    message: reason.message(self.shared.gate.config()),
                }
                .write(writer);
            }
        };
        ServerStats::bump(&self.shared.stats.queries_total);
        // A cancel (or deadline) that fired during the queue wait aborts
        // before any execution work is done.
        let (strategy_name, outcome) = if token.is_cancelled() {
            let name = self.session.strategy().name().to_string();
            (
                name,
                Ok(ScriptOutcome {
                    result: QueryResult::empty(Vec::new()),
                    work_units: 0,
                    wall: std::time::Duration::ZERO,
                    timed_out: true,
                    statements: Vec::new(),
                }),
            )
        } else {
            let ctx = self.session.exec_context().with_cancel(token);
            run(self, &ctx)
        };
        drop(guard); // free the slot before streaming rows back
        match outcome {
            Err(e) => {
                ServerStats::bump(&self.shared.stats.queries_failed);
                sql_error(&e).write(writer)
            }
            Ok(script) if script.timed_out => {
                let cancelled = {
                    let mut slot = self.me.slot.lock();
                    std::mem::take(&mut slot.cancel_requested)
                };
                let (code, counter) = if cancelled {
                    (ErrorCode::Cancelled, &self.shared.stats.queries_cancelled)
                } else {
                    (ErrorCode::Timeout, &self.shared.stats.queries_timed_out)
                };
                ServerStats::bump(counter);
                Response::Error {
                    code,
                    message: match code {
                        ErrorCode::Cancelled => "query cancelled by client request".into(),
                        _ => "query exceeded its work limit or deadline".into(),
                    },
                }
                .write(writer)
            }
            Ok(script) => {
                let metrics: Vec<&skinnerdb::ExecMetrics> =
                    script.statements.iter().map(|s| &s.metrics).collect();
                self.shared.stats.record_query(
                    &strategy_name,
                    &metrics,
                    script.work_units,
                    script.wall,
                );
                let summary = summarize(&script);
                let ScriptOutcome { result, .. } = script;
                self.write_result(writer, result, summary)
            }
        }
    }

    fn handle_show(&self, what: &str) -> Result<QueryResult, Response> {
        let what = what.trim().to_ascii_uppercase();
        match what.as_str() {
            "SERVER STATS" => {
                let cache = self.shared.db.learning_cache_stats();
                Ok(self.shared.stats.snapshot_table(&[
                    (
                        "active_connections",
                        self.shared.active_conns.load(Ordering::SeqCst) as u64,
                    ),
                    ("active_queries", self.shared.gate.active()),
                    ("queued_queries", self.shared.gate.queued() as u64),
                    ("shed_total", self.shared.gate.shed_total()),
                    ("admitted_total", self.shared.gate.admitted_total()),
                    // The instance-wide default only — connections may
                    // override per session via SET learning_cache, which
                    // the hit/miss/published counters below reflect.
                    (
                        "learning_cache.enabled_default",
                        self.shared.db.learning_cache_enabled() as u64,
                    ),
                    ("learning_cache.entries", cache.entries as u64),
                    ("learning_cache.hits", cache.hits),
                    ("learning_cache.misses", cache.misses),
                    ("learning_cache.invalidations", cache.invalidations),
                    ("learning_cache.published", cache.published),
                    ("learning_cache.evictions", cache.evictions),
                ]))
            }
            "STRATEGIES" => {
                let names = self.shared.db.strategies().names();
                Ok(QueryResult {
                    columns: vec!["strategy".into()],
                    rows: names
                        .into_iter()
                        .map(|n| vec![skinnerdb::Value::from(n.as_str())])
                        .collect(),
                })
            }
            other => Err(Response::Error {
                code: ErrorCode::Sql,
                message: format!("unknown SHOW target {other:?} (try SERVER STATS, STRATEGIES)"),
            }),
        }
    }

    /// Stream a result: text mode sends one rendered table, binary mode
    /// sends header + row batches; both end with `Done`.
    fn write_result(
        &self,
        writer: &mut impl std::io::Write,
        result: QueryResult,
        summary: QuerySummary,
    ) -> Result<(), WireError> {
        match self.output {
            OutputMode::Text => {
                let mut text = render_table_with(
                    &result,
                    &TableOptions {
                        max_rows: usize::MAX,
                        row_count_footer: true,
                        ..TableOptions::default()
                    },
                );
                // A rendered table must still fit one frame; clip rather
                // than desync the connection with an unwritable frame.
                let budget = (crate::protocol::MAX_FRAME as usize).saturating_sub(1024);
                if text.len() > budget {
                    let mut cut = budget;
                    while cut > 0 && !text.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    text.truncate(cut);
                    text.push_str("\n… (output truncated: table exceeds one frame)\n");
                }
                Response::Text { text }.write(writer)?;
            }
            OutputMode::Binary => {
                Response::RowHeader {
                    columns: result.columns.clone(),
                }
                .write(writer)?;
                // Batches are bounded by row count AND bytes: wide string
                // values must not push a frame past MAX_FRAME.
                let byte_budget = (crate::protocol::MAX_FRAME as usize) / 8;
                let mut batch: Vec<Vec<skinnerdb::Value>> = Vec::new();
                let mut batch_bytes = 0usize;
                for row in result.rows {
                    let row_bytes: usize = 4 + row
                        .iter()
                        .map(|v| match v {
                            skinnerdb::Value::Str(s) => 5 + s.len(),
                            _ => 9,
                        })
                        .sum::<usize>();
                    if !batch.is_empty()
                        && (batch.len() >= self.shared.cfg.rows_per_batch
                            || batch_bytes + row_bytes > byte_budget)
                    {
                        Response::RowBatch {
                            rows: std::mem::take(&mut batch),
                        }
                        .write(writer)?;
                        batch_bytes = 0;
                    }
                    batch_bytes += row_bytes;
                    batch.push(row);
                }
                if !batch.is_empty() {
                    Response::RowBatch { rows: batch }.write(writer)?;
                }
            }
        }
        Response::Done { summary }.write(writer)
    }
}

fn summarize(script: &ScriptOutcome) -> QuerySummary {
    QuerySummary {
        work_units: script.work_units,
        wall_micros: script.wall.as_micros() as u64,
        statements: script
            .statements
            .iter()
            .map(|s| StatementSummary {
                rows: s.rows as u64,
                work_units: s.work_units,
                wall_micros: s.wall.as_micros() as u64,
                slices: s.metrics.slices,
                order: s.metrics.order.iter().map(|&t| t as u32).collect(),
            })
            .collect(),
    }
}

fn sql_error(e: &DbError) -> Response {
    let code = match e {
        DbError::Timeout => ErrorCode::Timeout,
        _ => ErrorCode::Sql,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Case-insensitive keyword prefix: returns the remainder if `input`
/// starts with `kw` followed by whitespace or end.
fn strip_keyword<'x>(input: &'x str, kw: &str) -> Option<&'x str> {
    if input.len() < kw.len() || !input[..kw.len()].eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &input[kw.len()..];
    if rest.is_empty() || rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

/// Parse the tail of a `SET` command: `key = value`, `key TO value`, or
/// `key value`; values may be quoted.
fn parse_set(rest: &str) -> Option<(String, String)> {
    let rest = rest.trim();
    let (key, value) = match rest.split_once('=') {
        Some((k, v)) => (k, v),
        None => {
            let (k, v) = rest.split_once(char::is_whitespace)?;
            let v = strip_keyword(v.trim(), "TO").unwrap_or(v);
            (k, v)
        }
    };
    let value = value.trim().trim_matches('\'').trim_matches('"');
    let key = key.trim();
    if key.is_empty() || value.is_empty() {
        return None;
    }
    Some((key.to_string(), value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_command_forms_parse() {
        assert_eq!(
            parse_set("strategy = 'parallel_skinner'"),
            Some(("strategy".into(), "parallel_skinner".into()))
        );
        assert_eq!(
            parse_set("threads TO 4"),
            Some(("threads".into(), "4".into()))
        );
        assert_eq!(
            parse_set("work_limit 100"),
            Some(("work_limit".into(), "100".into()))
        );
        assert_eq!(parse_set("lonely"), None);
        assert_eq!(parse_set(""), None);
    }

    #[test]
    fn keyword_stripping_is_case_insensitive_and_word_bounded() {
        assert_eq!(strip_keyword("SET a = b", "set"), Some(" a = b"));
        assert_eq!(strip_keyword("settle down", "SET"), None);
        assert_eq!(
            strip_keyword("show server stats", "SHOW"),
            Some(" server stats")
        );
        assert_eq!(strip_keyword("SHOW", "SHOW"), Some(""));
    }

    #[test]
    fn cancel_keys_are_distinct() {
        let shared = Shared {
            db: Database::new(),
            cfg: ServerConfig::default(),
            addr: "127.0.0.1:1".parse().unwrap(),
            gate: Arc::new(AdmissionGate::new(AdmissionConfig::default())),
            stats: ServerStats::new(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
            key_seed: AtomicU64::new(1),
        };
        let a = shared.mint_cancel_key();
        let b = shared.mint_cancel_key();
        assert_ne!(a, b);
    }
}
