//! The concurrent server: acceptor, connection-shard event loops, query
//! dispatch to a completion pool, cancellation and graceful shutdown.
//!
//! Life of a query (v2, pipelined):
//!
//! 1. The blocking **acceptor** thread accepts a `TcpStream`, checks the
//!    connection limit, and hands the socket to one of N **connection
//!    shards** (round-robin) through the shard's inbox + waker.
//! 2. The shard's event loop (`conn::shard_loop`) registers the
//!    nonblocking socket with its [`crate::poll::Poller`], accumulates
//!    bytes into a [`crate::protocol::FrameBuffer`], and decodes complete
//!    frames. `SET`/`SHOW`/`Prepare`/`Cancel` are answered inline on the
//!    loop; `Query`/`Execute` are **dispatched**: a fresh cancel token is
//!    armed, the admission gate's non-blocking [`AdmissionGate::begin`]
//!    either grants, queues or sheds, and a `Job` goes to the
//!    [`CompletionPool`].
//! 3. A pool worker waits out the admission ticket if queued (never on
//!    the event loop), runs the query, encodes the response frames, and
//!    returns a `Completion`. The pool's completion hook pushes it to
//!    the owning shard and wakes it.
//! 4. The event loop routes the completion back to the connection (a
//!    stale token is dropped by conn-id check), appends the bytes to the
//!    connection's outbox and flushes as the socket allows. Backpressure
//!    is per connection: reads pause while the in-flight count is at the
//!    negotiated cap or the outbox exceeds the high-water mark.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use skinnerdb::skinner_exec::{
    CancelToken, CompletionPool, ExecContext, ExecutionStrategy, SpanTimer,
};
use skinnerdb::{Database, DbError, Prepared, QueryResult, ScriptOutcome};

use crate::admission::{
    Admission, AdmissionConfig, AdmissionGate, ShedReason, TenantPermit, Ticket,
};
use crate::conn::{shard_loop, ConnCancel, OutputMode};
use crate::metrics::MetricsExporter;
use crate::poll::{Poller, Waker};
use crate::protocol::{
    ErrorCode, ProfileSpan, QueryProfile, QuerySummary, Response, StatementSummary, WireError,
    DEFAULT_MAX_INFLIGHT, ROWS_PER_BATCH,
};
use crate::stats::{template_key, ServerStats};

/// Server sizing and behaviour.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections allowed at once; further arrivals are turned away with
    /// an explicit error (never silently dropped).
    pub max_connections: usize,
    /// Query admission control (concurrency gate + bounded queue +
    /// per-tenant fair shares).
    pub admission: AdmissionConfig,
    /// Honour the wire-level `Shutdown` request (the binary's clean-exit
    /// path; embedders running in-process may prefer to disable it and
    /// call [`Server::shutdown`] themselves).
    pub allow_remote_shutdown: bool,
    /// Rows per `RowBatch` frame.
    pub rows_per_batch: usize,
    /// Connection-shard event loops; `0` = auto (min(4, cores)).
    pub shards: usize,
    /// Pipelined statements a v2 connection may keep in flight at once
    /// (advertised in `HelloOk`; v1 connections are always capped at 1).
    pub max_inflight_per_conn: u32,
    /// Close connections idle (no traffic, nothing in flight) longer than
    /// this; `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Pause reading from a connection whose outbox exceeds this many
    /// bytes until the client drains it.
    pub write_highwater: usize,
    /// Serve the telemetry registry as Prometheus text on this address
    /// (`--metrics-addr`); `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Log a structured slow-query line (template key, join order,
    /// convergence, per-stage micros) for queries at or over this wall
    /// time; `None` disables the log.
    pub slow_query_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            admission: AdmissionConfig::default(),
            allow_remote_shutdown: true,
            rows_per_batch: ROWS_PER_BATCH,
            shards: 0,
            max_inflight_per_conn: DEFAULT_MAX_INFLIGHT,
            idle_timeout: Some(Duration::from_secs(300)),
            write_highwater: 4 * 1024 * 1024,
            metrics_addr: None,
            slow_query_ms: None,
        }
    }
}

impl ServerConfig {
    pub(crate) fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|p| p.get().min(4))
            .unwrap_or(2)
            .max(1)
    }
}

/// One shard's mailbox: freshly accepted sockets and finished-query
/// completions, plus the waker that pops its event loop.
pub(crate) struct ShardHandle {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl ShardHandle {
    pub(crate) fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().push(stream);
        self.waker.wake();
    }

    pub(crate) fn push_completion(&self, c: Completion) {
        self.completions.lock().push(c);
        self.waker.wake();
    }

    pub(crate) fn take_inbox(&self) -> Vec<TcpStream> {
        std::mem::take(&mut self.inbox.lock())
    }

    pub(crate) fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut self.completions.lock())
    }

    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// A dispatched query on its way to a pool worker.
pub(crate) struct Job {
    pub shard: usize,
    pub conn_token: usize,
    pub conn_id: u64,
    /// Pipelining tag (`None` = untagged/v1): echoed on every response
    /// frame this job produces.
    pub tag: Option<u32>,
    pub version: u32,
    pub output: OutputMode,
    pub gate: GateWait,
    pub token: CancelToken,
    pub cancel: Arc<ConnCancel>,
    pub ctx: ExecContext,
    pub kind: JobKind,
}

pub(crate) enum JobKind {
    Query {
        sql: String,
        strategy: Arc<dyn ExecutionStrategy>,
    },
    Execute {
        prepared: Arc<Prepared>,
    },
}

/// Admission state the job carries: either already granted (fast path) or
/// a queued ticket whose blocking wait happens on the pool worker.
pub(crate) enum GateWait {
    Granted(TenantPermit),
    Queued(Ticket),
}

/// A finished query's pre-encoded response frames, routed back to the
/// owning shard/connection by the completion hook.
pub(crate) struct Completion {
    pub shard: usize,
    pub conn_token: usize,
    pub conn_id: u64,
    pub bytes: Vec<u8>,
    /// The statement's span profile, keyed by its cancel-registry key —
    /// parked on the connection so a follow-up [`crate::protocol::Request::Profile`]
    /// can fetch it.
    pub profile: Option<(u64, QueryProfile)>,
}

pub(crate) struct Shared {
    pub db: Database,
    pub cfg: ServerConfig,
    pub addr: SocketAddr,
    pub gate: Arc<AdmissionGate>,
    pub stats: ServerStats,
    pub shutting_down: AtomicBool,
    /// `Some(when)` once shutdown was requested; [`Server::wait`] blocks
    /// on the condvar (no polling) and measures its wake latency from the
    /// stored instant.
    shutdown_at: StdMutex<Option<Instant>>,
    shutdown_cv: Condvar,
    /// Cancel registries of live connections, keyed by conn id — the
    /// out-of-band cancel path and shutdown reach running queries here.
    pub conns: Mutex<HashMap<u64, Arc<ConnCancel>>>,
    pub next_conn_id: AtomicU64,
    pub active_conns: AtomicUsize,
    key_seed: AtomicU64,
    pub shards: Vec<Arc<ShardHandle>>,
    pool: StdMutex<Option<CompletionPool<Job>>>,
}

impl Shared {
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    pub(crate) fn submit(&self, job: Job) {
        if let Some(pool) = self.pool.lock().unwrap().as_ref() {
            pool.submit(job);
        }
    }

    pub(crate) fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stamp the request time and pop `Server::wait` immediately.
        {
            let mut at = self.shutdown_at.lock().unwrap();
            at.get_or_insert_with(Instant::now);
        }
        self.shutdown_cv.notify_all();
        // Shed every queued query and trip every running one.
        self.gate.close();
        for conn in self.conns.lock().values() {
            conn.cancel_all();
        }
        // Pop every shard's event loop so it tears its connections down.
        for shard in &self.shards {
            shard.wake();
        }
        // Unblock the acceptor's `accept()` with a throwaway connection.
        // A wildcard bind (0.0.0.0 / ::) is not connectable everywhere;
        // wake through loopback on the same port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }

    /// Sample live structures (connections, admission gate, learning
    /// cache, per-tenant state) into registry gauges/counters. Called per
    /// `/metrics` scrape so the exposition is current without any
    /// periodic sampler thread.
    pub(crate) fn refresh_gauges(&self) {
        let r = self.stats.registry();
        r.gauge("skinner_active_connections", "Open client connections.")
            .set(self.active_conns.load(Ordering::SeqCst) as u64);
        r.gauge("skinner_active_queries", "Queries executing right now.")
            .set(self.gate.active());
        r.gauge(
            "skinner_queued_queries",
            "Queries waiting for an execution slot.",
        )
        .set(self.gate.queued() as u64);
        r.counter(
            "skinner_admitted_total",
            "Queries granted an execution slot.",
        )
        .raise_to(self.gate.admitted_total());
        r.counter(
            "skinner_shed_total",
            "Queries refused by admission control.",
        )
        .raise_to(self.gate.shed_total());
        let cache = self.db.learning_cache_stats();
        r.gauge(
            "skinner_learning_cache_entries",
            "Templates in the cross-query learning cache.",
        )
        .set(cache.entries as u64);
        r.counter("skinner_learning_cache_hits_total", "Learning-cache hits.")
            .raise_to(cache.hits);
        r.counter(
            "skinner_learning_cache_misses_total",
            "Learning-cache misses.",
        )
        .raise_to(cache.misses);
        r.counter(
            "skinner_learning_cache_published_total",
            "UCT statistics published to the learning cache.",
        )
        .raise_to(cache.published);
        r.counter(
            "skinner_learning_cache_evictions_total",
            "Learning-cache entries evicted.",
        )
        .raise_to(cache.evictions);
        r.counter(
            "skinner_learning_cache_invalidations_total",
            "Learning-cache entries invalidated (drops, content changes).",
        )
        .raise_to(cache.invalidations);
        r.gauge(
            "skinner_learning_cache_quarantined",
            "Templates currently quarantined for warm-start regressions.",
        )
        .set(cache.quarantined as u64);
        r.counter(
            "skinner_learning_cache_quarantines_total",
            "Quarantines ever entered by drift detection.",
        )
        .raise_to(cache.quarantines);
        r.counter(
            "skinner_learning_cache_generalized_hits_total",
            "Lookups served by a nearest-neighbor template.",
        )
        .raise_to(cache.generalized_hits);
        r.counter(
            "skinner_learning_cache_loaded_total",
            "Persisted priors loaded from the data directory.",
        )
        .raise_to(cache.loaded);
        r.counter(
            "skinner_learning_cache_load_rejected_total",
            "Persisted prior payloads refused (corrupt or wrong version).",
        )
        .raise_to(cache.load_rejected);
        r.counter(
            "skinner_learning_cache_flushes_total",
            "Learning-cache flushes to the data directory.",
        )
        .raise_to(cache.flushes);
        for t in self.gate.tenant_snapshot() {
            let labels = [("tenant", t.name.as_str())];
            r.gauge_with(
                "skinner_tenant_inflight",
                "Queries executing, by admission tenant.",
                &labels,
            )
            .set(u64::from(t.inflight));
            r.gauge_with(
                "skinner_tenant_waiting",
                "Queries queued, by admission tenant.",
                &labels,
            )
            .set(u64::from(t.waiting));
            r.gauge_with(
                "skinner_tenant_weight",
                "Configured fair-share weight, by admission tenant.",
                &labels,
            )
            .set(u64::from(t.weight));
            r.counter_with(
                "skinner_tenant_admitted_total",
                "Queries admitted, by admission tenant.",
                &labels,
            )
            .raise_to(t.admitted);
            r.counter_with(
                "skinner_tenant_shed_total",
                "Queries shed, by admission tenant.",
                &labels,
            )
            .raise_to(t.shed);
        }
    }

    /// A process-unique, hard-to-guess cancel key (no RNG dependency:
    /// mixes a counter with the clock, which is plenty for a loopback
    /// protocol's misdirected-cancel guard).
    pub(crate) fn mint_cancel_key(&self) -> u64 {
        let n = self
            .key_seed
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let mut x = n ^ (t << 17) ^ std::process::id() as u64;
        // splitmix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the acceptor, breaks every connection and joins all threads.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    wake_latency: Option<Duration>,
    /// The `/metrics` endpoint. Deliberately NOT stopped by
    /// [`Server::shutdown`]: it outlives the drain so the final scrape
    /// (e.g. CI asserting the shutdown wake-latency gauge) still works;
    /// it stops when the `Server` is dropped.
    exporter: Option<MetricsExporter>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// start serving `db`.
    pub fn bind(
        db: Database,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shard_count = cfg.effective_shards();
        let mut pollers = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let poller = Poller::new()?;
            handles.push(Arc::new(ShardHandle {
                inbox: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                waker: poller.waker(),
            }));
            pollers.push(poller);
        }
        let gate = Arc::new(AdmissionGate::new(cfg.admission.clone()));
        let shared = Arc::new(Shared {
            db,
            gate,
            addr: local,
            stats: ServerStats::new(),
            shutting_down: AtomicBool::new(false),
            shutdown_at: StdMutex::new(None),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
            key_seed: AtomicU64::new(0x5123_9d1f_8437_aa77),
            shards: handles,
            pool: StdMutex::new(None),
            cfg,
        });
        // Worker threads: enough for every concurrently *executing* query
        // plus every queued admission ticket blocking in `Ticket::wait` —
        // with the gate bounding both, this exact count makes head-of-line
        // deadlock (all workers parked on tickets while granted jobs wait
        // for a thread) impossible.
        let threads = shared.cfg.admission.max_concurrent + shared.cfg.admission.queue_depth;
        let worker_shared: Weak<Shared> = Arc::downgrade(&shared);
        let hook_shared: Weak<Shared> = Arc::downgrade(&shared);
        let pool = CompletionPool::new(
            threads,
            move |_wid, job: Job| worker_shared.upgrade().map(|shared| run_job(&shared, job)),
            move |_wid, completion: Option<Completion>| {
                let (Some(shared), Some(c)) = (hook_shared.upgrade(), completion) else {
                    return;
                };
                if let Some(shard) = shared.shards.get(c.shard) {
                    shard.push_completion(c);
                }
            },
        );
        *shared.pool.lock().unwrap() = Some(pool);
        let mut shard_threads = Vec::with_capacity(shard_count);
        for (ix, poller) in pollers.into_iter().enumerate() {
            let shared2 = shared.clone();
            let handle = shared.shards[ix].clone();
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("skinner-shard-{ix}"))
                    .spawn(move || shard_loop(shared2, handle, poller, ix))?,
            );
        }
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("skinner-acceptor".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        let exporter = match shared.cfg.metrics_addr.clone() {
            Some(maddr) => {
                let weak: Weak<Shared> = Arc::downgrade(&shared);
                let scrapes = shared.stats.metrics_scrapes_total.clone();
                Some(MetricsExporter::bind(
                    maddr.as_str(),
                    shared.stats.registry().clone(),
                    move || {
                        scrapes.inc();
                        if let Some(s) = weak.upgrade() {
                            s.refresh_gauges();
                        }
                    },
                )?)
            }
            None => None,
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            shard_threads,
            wake_latency: None,
            exporter,
        })
    }

    /// The address actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The `/metrics` endpoint's bound address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(|e| e.local_addr())
    }

    /// The server's metric registry (shared with `/metrics` and
    /// `SHOW SERVER STATS`).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The shared database this server fronts (tests use it to compare
    /// wire results with in-process execution).
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// True once a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// A handle that can request shutdown from another thread (the
    /// binary's SIGTERM watcher uses this). Holds only a `Weak`, so a
    /// forgotten handle never keeps a dead server's state alive.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::downgrade(&self.shared))
    }

    /// Stop accepting, cancel and disconnect every client, and join every
    /// thread the server spawned. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.trigger_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.shard_threads.drain(..) {
            let _ = h.join();
        }
        // Dropping the pool joins its workers (and breaks the
        // Shared → pool → Weak cycle for good measure).
        let pool = self.shared.pool.lock().unwrap().take();
        drop(pool);
        // Every worker has drained: flush the learning cache's final
        // partial batch of publications so cross-query knowledge survives
        // the restart (no-op without a data directory).
        self.shared.db.flush_learning_cache();
    }

    /// Block until a shutdown is requested (e.g. by a wire-level
    /// `Shutdown` message), then join everything. The binary's main loop.
    /// Wakes by condvar notification, not polling — see
    /// [`Server::shutdown_wake_latency`].
    pub fn wait(&mut self) {
        {
            let mut at = self.shared.shutdown_at.lock().unwrap();
            while at.is_none() {
                at = self.shared.shutdown_cv.wait(at).unwrap();
            }
            let latency = at.expect("stamped before notify").elapsed();
            self.wake_latency = Some(latency);
            // Publish to the registry so CI (and operators) can assert
            // the condvar wake from a `/metrics` scrape instead of
            // parsing stdout.
            self.shared
                .stats
                .shutdown_wake_latency_us
                .set(latency.as_micros() as u64);
        }
        self.shutdown();
    }

    /// How long [`Server::wait`] slept past the shutdown request before
    /// waking (`None` until a `wait` call has been woken). CI asserts this
    /// stays in condvar territory (well under 10 ms), guarding against a
    /// regression to timed polling.
    pub fn shutdown_wake_latency(&self) -> Option<Duration> {
        self.wake_latency
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Requests a graceful shutdown of a [`Server`] from any thread —
/// functionally the same as a wire-level `Shutdown` message: the blocked
/// [`Server::wait`] wakes, drains, and flushes the learning cache.
#[derive(Clone)]
pub struct ShutdownHandle(Weak<Shared>);

impl ShutdownHandle {
    /// Trigger the shutdown; returns `false` if the server is already
    /// gone.
    pub fn request(&self) -> bool {
        match self.0.upgrade() {
            Some(shared) => {
                shared.trigger_shutdown();
                true
            }
            None => false,
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_shard = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.is_shutting_down() {
                    break;
                }
                // Transient accept failures (e.g. EMFILE under fd
                // pressure) must not busy-spin a core.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.is_shutting_down() {
            // The shutdown wake-up (or an unlucky late client).
            let _ = Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            }
            .write(&mut &stream);
            break;
        }
        if shared.active_conns.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.stats.connections_rejected.inc();
            // Best effort on a still-blocking socket; a stalled peer can't
            // wedge the acceptor for long (tiny frame, fresh buffer).
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            let _ = Response::Error {
                code: ErrorCode::TooManyConnections,
                message: format!(
                    "connection limit ({}) reached; retry later",
                    shared.cfg.max_connections
                ),
            }
            .write(&mut &stream);
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        shared.stats.connections_total.inc();
        shared.shards[next_shard % shared.shards.len()].push_conn(stream);
        next_shard = next_shard.wrapping_add(1);
    }
}

// ---- worker-side execution ---------------------------------------------

/// Run one dispatched job on a pool worker: wait out a queued admission
/// ticket, execute, and pre-encode every response frame. Always returns a
/// completion — panics inside execution are caught and reported as errors
/// so the connection's in-flight count never leaks.
fn run_job(shared: &Arc<Shared>, job: Job) -> Completion {
    let Job {
        shard,
        conn_token,
        conn_id,
        tag,
        version,
        output,
        gate,
        token,
        cancel,
        ctx,
        kind,
    } = job;
    let mut out = Vec::new();
    // The trace was attached at dispatch (its epoch is the dispatch
    // instant), so `admission_wait` spans dispatch → execution slot,
    // including any time queued behind the gate or the pool.
    let trace = ctx.trace_arc().cloned();
    let permit = match gate {
        GateWait::Granted(p) => Ok(p),
        GateWait::Queued(ticket) => match ticket.wait() {
            Admission::Granted(p) => Ok(p),
            Admission::Shed(reason) => Err(reason),
        },
    };
    if let Some(t) = trace.as_deref() {
        t.record("admission_wait", 0, 0);
        shared.stats.admission_wait_us.record(t.now_ns() / 1_000);
    }
    match permit {
        Err(reason) => {
            cancel.finish(ConnCancel::tag_key(tag));
            let code = match reason {
                ShedReason::Closed => ErrorCode::ShuttingDown,
                _ => ErrorCode::Overloaded,
            };
            push_frame(
                &mut out,
                tag,
                version,
                Response::Error {
                    code,
                    message: reason.message(shared.gate.config()),
                },
            );
        }
        Ok(permit) => {
            shared.stats.queries_total.inc();
            // A cancel (or deadline) that fired during the queue wait
            // aborts before any execution work is done.
            let ran = if token.is_cancelled() {
                let name = match &kind {
                    JobKind::Query { strategy, .. } => strategy.name().to_string(),
                    JobKind::Execute { prepared } => prepared.strategy().name().to_string(),
                };
                Ok((
                    name,
                    Ok(ScriptOutcome {
                        result: QueryResult::empty(Vec::new()),
                        work_units: 0,
                        wall: Duration::ZERO,
                        timed_out: true,
                        statements: Vec::new(),
                    }),
                ))
            } else {
                // An engine panicking on a pathological query must still
                // produce a response (and a completion), or the
                // connection's in-flight slot leaks forever.
                catch_unwind(AssertUnwindSafe(|| match &kind {
                    JobKind::Query { sql, strategy } => (
                        strategy.name().to_string(),
                        shared.db.run_script_detailed(sql, strategy.as_ref(), &ctx),
                    ),
                    JobKind::Execute { prepared } => {
                        let started = Instant::now();
                        let out = prepared.execute_in(&ctx);
                        let name = prepared.strategy().name().to_string();
                        let script = ScriptOutcome {
                            work_units: out.work_units,
                            wall: started.elapsed(),
                            timed_out: out.timed_out,
                            statements: vec![skinnerdb::StatementOutcome {
                                kind: skinnerdb::StatementKind::Select,
                                rows: out.result.num_rows(),
                                work_units: out.work_units,
                                wall: out.wall,
                                timed_out: out.timed_out,
                                metrics: out.metrics,
                            }],
                            result: out.result,
                        };
                        (name, Ok(script))
                    }
                }))
                .map_err(|_| ())
            };
            drop(permit); // free the execution slot before encoding rows
            let cancelled = cancel.finish(ConnCancel::tag_key(tag));
            match ran {
                Err(()) => {
                    shared.stats.queries_failed.inc();
                    push_frame(
                        &mut out,
                        tag,
                        version,
                        Response::Error {
                            code: ErrorCode::Sql,
                            message: "internal error: query execution panicked".into(),
                        },
                    );
                }
                Ok((_, Err(e))) => {
                    shared.stats.queries_failed.inc();
                    push_frame(&mut out, tag, version, sql_error(&e));
                }
                Ok((_, Ok(script))) if script.timed_out => {
                    let (code, counter) = if cancelled {
                        (ErrorCode::Cancelled, &shared.stats.queries_cancelled)
                    } else {
                        (ErrorCode::Timeout, &shared.stats.queries_timed_out)
                    };
                    counter.inc();
                    push_frame(
                        &mut out,
                        tag,
                        version,
                        Response::Error {
                            code,
                            message: match code {
                                ErrorCode::Cancelled => "query cancelled by client request".into(),
                                _ => "query exceeded its work limit or deadline".into(),
                            },
                        },
                    );
                }
                Ok((strategy_name, Ok(script))) => {
                    let metrics: Vec<&skinnerdb::ExecMetrics> =
                        script.statements.iter().map(|s| &s.metrics).collect();
                    shared.stats.record_query(
                        &strategy_name,
                        &metrics,
                        script.work_units,
                        script.wall,
                    );
                    maybe_log_slow_query(shared, &kind, &strategy_name, &script, trace.as_deref());
                    let summary = summarize(&script);
                    let ScriptOutcome { result, .. } = script;
                    let enc_timer = SpanTimer::start(trace.as_deref(), "encode_flush");
                    write_result_frames(
                        &mut out,
                        tag,
                        version,
                        output,
                        shared.cfg.rows_per_batch,
                        result,
                        summary,
                    );
                    enc_timer.finish(out.len() as u64);
                }
            }
        }
    }
    let profile = trace.as_deref().map(|t| {
        let spans = t
            .spans()
            .into_iter()
            .map(|s| ProfileSpan {
                stage: s.stage.to_string(),
                label: s.label,
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
                detail: s.detail,
            })
            .collect();
        (
            ConnCancel::tag_key(tag),
            QueryProfile {
                total_ns: t.now_ns(),
                dropped: t.dropped(),
                spans,
            },
        )
    });
    Completion {
        shard,
        conn_token,
        conn_id,
        bytes: out,
        profile,
    }
}

/// Emit the structured slow-query line when the statement's wall time
/// crossed `slow_query_ms`: template key, strategy, learned join order,
/// convergence point, warm-start/page counters and per-stage micros.
fn maybe_log_slow_query(
    shared: &Arc<Shared>,
    kind: &JobKind,
    strategy: &str,
    script: &ScriptOutcome,
    trace: Option<&skinnerdb::skinner_exec::Trace>,
) {
    let Some(threshold_ms) = shared.cfg.slow_query_ms else {
        return;
    };
    if script.wall < Duration::from_millis(threshold_ms) {
        return;
    }
    shared.stats.slow_queries_total.inc();
    let template = match kind {
        JobKind::Query { sql, .. } => template_key(sql),
        JobKind::Execute { .. } => "<prepared statement>".to_string(),
    };
    // Script statistics of the heaviest statement (by wall) stand in for
    // the script when scripts have several.
    let stmt = script
        .statements
        .iter()
        .max_by_key(|s| s.wall)
        .map(|s| &s.metrics);
    let order: Vec<usize> = stmt.map(|m| m.order.clone()).unwrap_or_default();
    let counter = |name: &str| stmt.and_then(|m| m.counter(name)).unwrap_or(0);
    let (pages_read, pages_skipped, slices) = stmt
        .map(|m| (m.pages_read, m.pages_skipped, m.slices))
        .unwrap_or((0, 0, 0));
    let stages = trace
        .map(|t| {
            let mut agg: Vec<(&'static str, u64)> = Vec::new();
            for s in t.spans() {
                match agg.iter_mut().find(|(n, _)| *n == s.stage) {
                    Some(e) => e.1 += s.dur_ns,
                    None => agg.push((s.stage, s.dur_ns)),
                }
            }
            agg.iter()
                .map(|(n, ns)| format!("{n}={}us", ns / 1_000))
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default();
    eprintln!(
        "slow-query wall_ms={} strategy={} slices={} order={:?} last_order_switch={} \
         order_switches={} warm_start={} pages_read={} pages_skipped={} stages=[{}] template={:?}",
        script.wall.as_millis(),
        strategy,
        slices,
        order,
        counter("last_order_switch"),
        counter("order_switches"),
        counter("cache_hit"),
        pages_read,
        pages_skipped,
        stages,
        template,
    );
}

// ---- response encoding --------------------------------------------------

/// Append `resp` to `out` as a complete frame, wrapped in a `Tagged`
/// envelope when the originating request was tagged. An unencodable
/// response (oversized value) degrades to a typed error frame —
/// `TooLarge` for v2 peers, `Protocol` for v1 — instead of desyncing the
/// stream. Returns false when the original response could not be encoded
/// (callers streaming multi-frame results stop at the first failure; the
/// error frame is terminal).
pub(crate) fn push_frame(
    out: &mut Vec<u8>,
    tag: Option<u32>,
    version: u32,
    resp: Response,
) -> bool {
    let wrap = |resp: Response| match tag {
        Some(t) => Response::Tagged {
            tag: t,
            resp: Box::new(resp),
        },
        None => resp,
    };
    match wrap(resp).encode_framed(out) {
        Ok(()) => true,
        Err(e) => {
            let code = if version >= 2 {
                ErrorCode::TooLarge
            } else {
                ErrorCode::Protocol
            };
            let fallback = wrap(Response::Error {
                code,
                message: clip_message(e),
            });
            let _ = fallback.encode_framed(out);
            false
        }
    }
}

/// Error text for an unencodable frame, clipped so the *error* frame
/// always encodes.
fn clip_message(e: WireError) -> String {
    let mut msg = e.to_string();
    msg.truncate(512);
    msg
}

/// Stream a result as frames: text mode sends one rendered table, binary
/// mode sends header + row batches; both end with `Done`.
pub(crate) fn write_result_frames(
    out: &mut Vec<u8>,
    tag: Option<u32>,
    version: u32,
    output: OutputMode,
    rows_per_batch: usize,
    result: QueryResult,
    summary: QuerySummary,
) {
    match output {
        OutputMode::Text => {
            let mut text = skinnerdb::render_table_with(
                &result,
                &skinnerdb::TableOptions {
                    max_rows: usize::MAX,
                    row_count_footer: true,
                    ..skinnerdb::TableOptions::default()
                },
            );
            // A rendered table must still fit one frame; clip rather than
            // desync the connection with an unwritable frame.
            let budget = (crate::protocol::MAX_FRAME as usize).saturating_sub(1024);
            if text.len() > budget {
                let mut cut = budget;
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                text.truncate(cut);
                text.push_str("\n… (output truncated: table exceeds one frame)\n");
            }
            if !push_frame(out, tag, version, Response::Text { text }) {
                return;
            }
        }
        OutputMode::Binary => {
            if !push_frame(
                out,
                tag,
                version,
                Response::RowHeader {
                    columns: result.columns.clone(),
                },
            ) {
                return;
            }
            // Batches are bounded by row count AND bytes: wide string
            // values must not push a frame past MAX_FRAME.
            let byte_budget = (crate::protocol::MAX_FRAME as usize) / 8;
            let mut batch: Vec<Vec<skinnerdb::Value>> = Vec::new();
            let mut batch_bytes = 0usize;
            for row in result.rows {
                let row_bytes: usize = 4 + row
                    .iter()
                    .map(|v| match v {
                        skinnerdb::Value::Str(s) => 5 + s.len(),
                        _ => 9,
                    })
                    .sum::<usize>();
                if !batch.is_empty()
                    && (batch.len() >= rows_per_batch || batch_bytes + row_bytes > byte_budget)
                {
                    let frame = Response::RowBatch {
                        rows: std::mem::take(&mut batch),
                    };
                    if !push_frame(out, tag, version, frame) {
                        return;
                    }
                    batch_bytes = 0;
                }
                batch_bytes += row_bytes;
                batch.push(row);
            }
            if !batch.is_empty()
                && !push_frame(out, tag, version, Response::RowBatch { rows: batch })
            {
                return;
            }
        }
    }
    push_frame(out, tag, version, Response::Done { summary });
}

pub(crate) fn summarize(script: &ScriptOutcome) -> QuerySummary {
    QuerySummary {
        work_units: script.work_units,
        wall_micros: script.wall.as_micros() as u64,
        statements: script
            .statements
            .iter()
            .map(|s| StatementSummary {
                rows: s.rows as u64,
                work_units: s.work_units,
                wall_micros: s.wall.as_micros() as u64,
                slices: s.metrics.slices,
                order: s.metrics.order.iter().map(|&t| t as u32).collect(),
            })
            .collect(),
    }
}

pub(crate) fn sql_error(e: &DbError) -> Response {
    let code = match e {
        DbError::Timeout => ErrorCode::Timeout,
        _ => ErrorCode::Sql,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Case-insensitive keyword prefix: returns the remainder if `input`
/// starts with `kw` followed by whitespace or end.
pub(crate) fn strip_keyword<'x>(input: &'x str, kw: &str) -> Option<&'x str> {
    if input.len() < kw.len() || !input[..kw.len()].eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &input[kw.len()..];
    if rest.is_empty() || rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

/// Parse the tail of a `SET` command: `key = value`, `key TO value`, or
/// `key value`; values may be quoted.
pub(crate) fn parse_set(rest: &str) -> Option<(String, String)> {
    let rest = rest.trim();
    let (key, value) = match rest.split_once('=') {
        Some((k, v)) => (k, v),
        None => {
            let (k, v) = rest.split_once(char::is_whitespace)?;
            let v = strip_keyword(v.trim(), "TO").unwrap_or(v);
            (k, v)
        }
    };
    let value = value.trim().trim_matches('\'').trim_matches('"');
    let key = key.trim();
    if key.is_empty() || value.is_empty() {
        return None;
    }
    Some((key.to_string(), value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_command_forms_parse() {
        assert_eq!(
            parse_set("strategy = 'parallel_skinner'"),
            Some(("strategy".into(), "parallel_skinner".into()))
        );
        assert_eq!(
            parse_set("threads TO 4"),
            Some(("threads".into(), "4".into()))
        );
        assert_eq!(
            parse_set("work_limit 100"),
            Some(("work_limit".into(), "100".into()))
        );
        assert_eq!(parse_set("lonely"), None);
        assert_eq!(parse_set(""), None);
    }

    #[test]
    fn keyword_stripping_is_case_insensitive_and_word_bounded() {
        assert_eq!(strip_keyword("SET a = b", "set"), Some(" a = b"));
        assert_eq!(strip_keyword("settle down", "SET"), None);
        assert_eq!(
            strip_keyword("show server stats", "SHOW"),
            Some(" server stats")
        );
        assert_eq!(strip_keyword("SHOW", "SHOW"), Some(""));
    }

    #[test]
    fn cancel_keys_are_distinct() {
        let shared = Shared {
            db: Database::new(),
            cfg: ServerConfig::default(),
            addr: "127.0.0.1:1".parse().unwrap(),
            gate: Arc::new(AdmissionGate::new(AdmissionConfig::default())),
            stats: ServerStats::new(),
            shutting_down: AtomicBool::new(false),
            shutdown_at: StdMutex::new(None),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
            key_seed: AtomicU64::new(1),
            shards: Vec::new(),
            pool: StdMutex::new(None),
        };
        let a = shared.mint_cancel_key();
        let b = shared.mint_cancel_key();
        assert_ne!(a, b);
    }

    /// Frame-level degradation: an unencodable response becomes a typed
    /// error frame in place, tagged like the original.
    #[test]
    fn unencodable_response_degrades_to_typed_error() {
        let huge = "x".repeat(crate::protocol::MAX_FRAME as usize + 1);
        let mut out = Vec::new();
        let ok = push_frame(&mut out, Some(9), 2, Response::Text { text: huge });
        assert!(!ok);
        // The appended frame decodes as Tagged{9, Error{TooLarge}}.
        let len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
        let resp = Response::decode(&out[4..4 + len]).unwrap();
        match resp {
            Response::Tagged { tag, resp } => {
                assert_eq!(tag, 9);
                assert!(matches!(
                    *resp,
                    Response::Error {
                        code: ErrorCode::TooLarge,
                        ..
                    }
                ));
            }
            other => panic!("expected tagged error, got {other:?}"),
        }
        // v1 peers get the closest v1 code instead.
        let huge = "x".repeat(crate::protocol::MAX_FRAME as usize + 1);
        let mut out = Vec::new();
        push_frame(&mut out, None, 1, Response::Text { text: huge });
        let len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
        assert!(matches!(
            Response::decode(&out[4..4 + len]).unwrap(),
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
    }
}
