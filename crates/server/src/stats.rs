//! The observable server state behind `SHOW SERVER STATS` and `/metrics`.
//!
//! Everything is backed by one [`Registry`] from `skinner_telemetry`:
//! the hot-path handles below (`Counter`/`Gauge`/`Histo`) update atomics
//! directly, and the same registry renders both the Prometheus text
//! exposition (the `/metrics` endpoint) and the extra rows appended to
//! `SHOW SERVER STATS`. The per-strategy aggregates keep their historical
//! `strategy.<name>.<field>` rows for wire compatibility and are mirrored
//! into labeled registry counters for scraping.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

use skinner_telemetry::{Counter, Gauge, Histo, Registry};
use skinnerdb::{ExecMetrics, QueryResult, Value};

/// Per-strategy execution aggregates: how many queries each strategy
/// served, how many learning episodes (time slices) they ran, and the
/// cumulative reward proxy (deduplicated result tuples — per-episode
/// reward in the paper is per-slice progress, so tuples/episodes is the
/// mean reward).
#[derive(Debug, Default, Clone)]
pub struct StrategyAgg {
    pub queries: u64,
    pub episodes: u64,
    pub result_tuples: u64,
    pub work_units: u64,
    pub wall_micros: u64,
    /// Zone-mapped pages evaluated / skipped during pre-processing (only
    /// disk-backed tables carry zone maps; in-memory scans report zero).
    pub pages_read: u64,
    pub pages_skipped: u64,
    /// Hybrid (`skinner_h`) alternation slices granted to the optimizer's
    /// plan / to learned execution.
    pub optimizer_slices: u64,
    pub learned_slices: u64,
    /// Queries in which the hybrid switched over to pure learned execution.
    pub hybrid_switchovers: u64,
    /// Last planner cost estimate (`C_out` under estimated cardinalities)
    /// reported by an optimizer-planned query.
    pub plan_cost_est: u64,
}

/// The server's metric handles, all registered in one shared [`Registry`].
/// Counters are monotonic; gauges are set (or bumped) from live
/// structures; histograms capture latency distributions.
#[derive(Debug, Clone)]
pub struct ServerStats {
    registry: Registry,
    pub connections_total: Counter,
    pub connections_rejected: Counter,
    /// Idle-reaped connections. Exposed as a gauge so CI can assert it
    /// from a `/metrics` scrape (it only ever grows, but it mirrors a
    /// sweep-owned tally rather than a request counter).
    pub connections_reaped_idle: Gauge,
    pub queries_total: Counter,
    pub queries_failed: Counter,
    pub queries_cancelled: Counter,
    pub queries_timed_out: Counter,
    /// Queries whose wall time crossed `--slow-query-ms`.
    pub slow_queries_total: Counter,
    /// Regret proxy: cumulative join-order switches across all queries
    /// (a converged workload stops switching).
    pub order_switches_total: Counter,
    /// Cross-query learning: queries answered with a warm-started UCT
    /// tree from the template cache.
    pub warm_start_hits_total: Counter,
    /// Cross-query learning: cumulative tree visits seeded from cached
    /// priors (0 while every query runs cold — the restart-survival CI
    /// asserts this goes positive right after a warm restart).
    pub warm_start_visits_total: Counter,
    /// Cross-query learning: warm starts served by a *nearest-neighbor*
    /// template (generalization) rather than an exact key match.
    pub warm_start_generalized_total: Counter,
    /// Microseconds [`crate::server::Server::wait`] slept past the
    /// shutdown request before its condvar woke (set once at shutdown;
    /// CI asserts it stays well under 10ms).
    pub shutdown_wake_latency_us: Gauge,
    pub metrics_scrapes_total: Counter,
    pub query_latency_us: Histo,
    pub admission_wait_us: Histo,
    /// Distribution of the episode index after which the winning join
    /// order stopped changing — the paper's convergence measure.
    pub last_order_switch_slices: Histo,
    /// Distribution of the learned-side episode at which `skinner_h`
    /// switched over to pure learned execution (queries that switched).
    pub hybrid_switchover_episode: Histo,
    per_strategy: std::sync::Arc<Mutex<BTreeMap<String, StrategyAgg>>>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    pub fn new() -> Self {
        let registry = Registry::new();
        ServerStats {
            connections_total: registry.counter(
                "skinner_connections_total",
                "Connections accepted since start.",
            ),
            connections_rejected: registry.counter(
                "skinner_connections_rejected_total",
                "Connections refused at the limit.",
            ),
            connections_reaped_idle: registry.gauge(
                "skinner_connections_reaped_idle",
                "Connections closed by the idle sweep.",
            ),
            queries_total: registry.counter("skinner_queries_total", "Queries admitted to run."),
            queries_failed: registry.counter(
                "skinner_queries_failed_total",
                "Queries ending in an error.",
            ),
            queries_cancelled: registry.counter(
                "skinner_queries_cancelled_total",
                "Queries cancelled out-of-band.",
            ),
            queries_timed_out: registry.counter(
                "skinner_queries_timed_out_total",
                "Queries over their work limit or deadline.",
            ),
            slow_queries_total: registry.counter(
                "skinner_slow_queries_total",
                "Queries over the slow-query threshold.",
            ),
            order_switches_total: registry.counter(
                "skinner_order_switches_total",
                "Join-order switches across all learning queries (regret proxy).",
            ),
            warm_start_hits_total: registry.counter(
                "skinner_warm_start_hits_total",
                "Queries warm-started from the cross-query template cache.",
            ),
            warm_start_visits_total: registry.counter(
                "skinner_warm_start_visits_total",
                "Tree visits seeded from cached priors across all queries.",
            ),
            warm_start_generalized_total: registry.counter(
                "skinner_warm_start_generalized_total",
                "Warm starts served by a nearest-neighbor template.",
            ),
            shutdown_wake_latency_us: registry.gauge(
                "skinner_shutdown_wake_latency_us",
                "Microseconds the shutdown condvar wait overslept the request.",
            ),
            metrics_scrapes_total: registry
                .counter("skinner_metrics_scrapes_total", "Scrapes of /metrics."),
            query_latency_us: registry.histogram(
                "skinner_query_latency_us",
                "Successful query wall time in microseconds.",
            ),
            admission_wait_us: registry.histogram(
                "skinner_admission_wait_us",
                "Microseconds from dispatch to an execution slot.",
            ),
            last_order_switch_slices: registry.histogram(
                "skinner_last_order_switch_slices",
                "Episode index of the last join-order switch (convergence).",
            ),
            hybrid_switchover_episode: registry.histogram(
                "skinner_hybrid_switchover_episode",
                "Learned-side episode at which a hybrid query switched over.",
            ),
            per_strategy: std::sync::Arc::new(Mutex::new(BTreeMap::new())),
            registry,
        }
    }

    /// The registry every handle lives in — the `/metrics` endpoint
    /// renders it, and samplers register live gauges into it.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fold one finished query into the per-strategy aggregates, the
    /// latency histogram and the regret-proxy counters.
    pub fn record_query(
        &self,
        strategy: &str,
        metrics_per_statement: &[&ExecMetrics],
        work_units: u64,
        wall: Duration,
    ) {
        self.query_latency_us.record(wall.as_micros() as u64);
        let mut map = self.per_strategy.lock();
        let agg = map.entry(strategy.to_string()).or_default();
        agg.queries += 1;
        agg.work_units += work_units;
        agg.wall_micros += wall.as_micros() as u64;
        for m in metrics_per_statement {
            agg.episodes += m.slices;
            agg.result_tuples += m.result_tuples;
            agg.pages_read += m.pages_read;
            agg.pages_skipped += m.pages_skipped;
            if let Some(n) = m.counter("order_switches") {
                self.order_switches_total.add(n);
            }
            if m.counter("cache_hit") == Some(1) {
                self.warm_start_hits_total.inc();
            }
            if let Some(v) = m.counter("warm_start_visits") {
                self.warm_start_visits_total.add(v);
            }
            if m.counter("warm_start_generalized") == Some(1) {
                self.warm_start_generalized_total.inc();
            }
            if let Some(s) = m.counter("last_order_switch") {
                self.last_order_switch_slices.record(s);
            }
            if let Some(n) = m.counter("optimizer_slices") {
                agg.optimizer_slices += n;
            }
            if let Some(n) = m.counter("learned_slices") {
                agg.learned_slices += n;
            }
            if let Some(e) = m.counter("switched_at_episode") {
                // 0 means "never switched"; only actual switchovers count.
                if e > 0 {
                    agg.hybrid_switchovers += 1;
                    self.hybrid_switchover_episode.record(e);
                }
            }
            if let Some(c) = m.counter("plan_cost_est") {
                agg.plan_cost_est = c;
            }
        }
        let mirror = agg.clone();
        drop(map);
        // Mirror the row-oriented aggregates into labeled registry series
        // so `/metrics` carries them too (raise_to: the mutex-held tally
        // is authoritative, the registry copy trails it monotonically).
        let labels: &[(&str, &str)] = &[("strategy", strategy)];
        let mirror_counter = |name: &str, help: &'static str, v: u64| {
            self.registry.counter_with(name, help, labels).raise_to(v);
        };
        mirror_counter(
            "skinner_strategy_queries_total",
            "Queries served, by strategy.",
            mirror.queries,
        );
        mirror_counter(
            "skinner_strategy_episodes_total",
            "Learning episodes (time slices) run, by strategy.",
            mirror.episodes,
        );
        mirror_counter(
            "skinner_strategy_result_tuples_total",
            "Result tuples produced (cumulative reward proxy), by strategy.",
            mirror.result_tuples,
        );
        mirror_counter(
            "skinner_strategy_work_units_total",
            "Deterministic work units spent, by strategy.",
            mirror.work_units,
        );
        mirror_counter(
            "skinner_strategy_pages_read_total",
            "Zone-mapped pages evaluated during preprocessing, by strategy.",
            mirror.pages_read,
        );
        mirror_counter(
            "skinner_strategy_pages_skipped_total",
            "Zone-mapped pages skipped during preprocessing, by strategy.",
            mirror.pages_skipped,
        );
        mirror_counter(
            "skinner_strategy_optimizer_slices_total",
            "Hybrid alternation slices granted to the optimizer's plan, by strategy.",
            mirror.optimizer_slices,
        );
        mirror_counter(
            "skinner_strategy_learned_slices_total",
            "Hybrid alternation slices granted to learned execution, by strategy.",
            mirror.learned_slices,
        );
        mirror_counter(
            "skinner_strategy_hybrid_switchovers_total",
            "Queries in which the hybrid switched to pure learned execution, by strategy.",
            mirror.hybrid_switchovers,
        );
    }

    pub fn strategy_aggregates(&self) -> BTreeMap<String, StrategyAgg> {
        self.per_strategy.lock().clone()
    }

    /// Materialize the stats as a result table (`metric`, `value`), the
    /// shape `SHOW SERVER STATS` returns over the wire. Gauges the server
    /// owns (connections, queue) are passed in.
    pub fn snapshot_table(&self, gauges: &[(String, u64)]) -> QueryResult {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut push = |k: &str, v: u64| {
            rows.push(vec![Value::from(k), Value::Int(v as i64)]);
        };
        for (k, v) in gauges {
            push(k, *v);
        }
        push("queries_total", self.queries_total.get());
        push("queries_failed", self.queries_failed.get());
        push("queries_cancelled", self.queries_cancelled.get());
        push("queries_timed_out", self.queries_timed_out.get());
        push("connections_total", self.connections_total.get());
        push("connections_rejected", self.connections_rejected.get());
        push(
            "connections_reaped_idle",
            self.connections_reaped_idle.get(),
        );
        push("slow_queries_total", self.slow_queries_total.get());
        push("order_switches_total", self.order_switches_total.get());
        push("warm_start_hits_total", self.warm_start_hits_total.get());
        push(
            "warm_start_visits_total",
            self.warm_start_visits_total.get(),
        );
        push(
            "warm_start_generalized_total",
            self.warm_start_generalized_total.get(),
        );
        let lat = self.query_latency_us.snapshot();
        push("query_latency_us.p50", lat.p50());
        push("query_latency_us.p99", lat.p99());
        push("query_latency_us.max", lat.max);
        let adm = self.admission_wait_us.snapshot();
        push("admission_wait_us.p50", adm.p50());
        push("admission_wait_us.p99", adm.p99());
        for (name, agg) in self.strategy_aggregates() {
            let mean_reward_milli = (agg.result_tuples * 1000)
                .checked_div(agg.episodes)
                .unwrap_or(0);
            push(&format!("strategy.{name}.queries"), agg.queries);
            push(&format!("strategy.{name}.episodes"), agg.episodes);
            push(&format!("strategy.{name}.result_tuples"), agg.result_tuples);
            push(&format!("strategy.{name}.work_units"), agg.work_units);
            push(&format!("strategy.{name}.wall_micros"), agg.wall_micros);
            push(&format!("strategy.{name}.pages_read"), agg.pages_read);
            push(&format!("strategy.{name}.pages_skipped"), agg.pages_skipped);
            push(
                &format!("strategy.{name}.mean_reward_milli"),
                mean_reward_milli,
            );
            // Hybrid/planner columns appear only where they carry signal,
            // keeping the wire table compact for non-hybrid strategies.
            if agg.optimizer_slices > 0 || agg.learned_slices > 0 {
                push(
                    &format!("strategy.{name}.optimizer_slices"),
                    agg.optimizer_slices,
                );
                push(
                    &format!("strategy.{name}.learned_slices"),
                    agg.learned_slices,
                );
                push(
                    &format!("strategy.{name}.hybrid_switchovers"),
                    agg.hybrid_switchovers,
                );
            }
            if agg.plan_cost_est > 0 {
                push(&format!("strategy.{name}.plan_cost_est"), agg.plan_cost_est);
            }
        }
        QueryResult {
            columns: vec!["metric".into(), "value".into()],
            rows,
        }
    }
}

/// Normalize a SQL text to a template key for the slow-query log:
/// literals become `?`, whitespace collapses, keywords are uppercased by
/// leaving identifiers as written. Matches the spirit of the cross-query
/// learning cache's template keying without depending on a successful
/// bind (slow queries should still log a usable key if re-parsing is
/// undesirable).
pub fn template_key(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len().min(200));
    let mut chars = sql.chars().peekable();
    let mut last_space = true;
    while let Some(c) = chars.next() {
        match c {
            '\'' | '"' => {
                // Skip the quoted literal (doubled quotes escape).
                while let Some(q) = chars.next() {
                    if q == c {
                        if chars.peek() == Some(&c) {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                out.push('?');
                last_space = false;
            }
            '0'..='9' => {
                // Identifiers like `t12` keep their digits; only bare
                // numeric literals collapse to `?`.
                let in_ident = out
                    .chars()
                    .last()
                    .is_some_and(|p| p.is_alphanumeric() || p == '_');
                let mut run = String::new();
                run.push(c);
                while matches!(chars.peek(), Some('0'..='9'))
                    || (!in_ident && matches!(chars.peek(), Some('.') | Some('e') | Some('E')))
                {
                    run.push(chars.next().unwrap());
                }
                if in_ident {
                    out.push_str(&run);
                } else {
                    out.push('?');
                }
                last_space = false;
            }
            c if c.is_whitespace() => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
            c => {
                out.push(c);
                last_space = false;
            }
        }
    }
    let trimmed = out.trim().to_string();
    if trimmed.len() > 200 {
        let mut cut = 200;
        let mut t = trimmed;
        while cut > 0 && !t.is_char_boundary(cut) {
            cut -= 1;
        }
        t.truncate(cut);
        t
    } else {
        trimmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_fold_per_strategy() {
        let stats = ServerStats::new();
        let m1 = ExecMetrics {
            slices: 10,
            result_tuples: 40,
            ..ExecMetrics::default()
        };
        let m2 = ExecMetrics {
            slices: 5,
            result_tuples: 10,
            ..ExecMetrics::default()
        };
        stats.record_query("Skinner-C", &[&m1, &m2], 500, Duration::from_micros(90));
        stats.record_query("Skinner-C", &[&m1], 100, Duration::from_micros(10));
        stats.record_query("Traditional", &[], 7, Duration::ZERO);
        let aggs = stats.strategy_aggregates();
        assert_eq!(aggs["Skinner-C"].queries, 2);
        assert_eq!(aggs["Skinner-C"].episodes, 25);
        assert_eq!(aggs["Skinner-C"].result_tuples, 90);
        assert_eq!(aggs["Skinner-C"].work_units, 600);
        assert_eq!(aggs["Skinner-C"].wall_micros, 100);
        assert_eq!(aggs["Traditional"].queries, 1);
    }

    #[test]
    fn snapshot_is_a_metric_value_table() {
        let stats = ServerStats::new();
        stats.queries_total.inc();
        let m = ExecMetrics {
            slices: 4,
            result_tuples: 8,
            pages_read: 3,
            pages_skipped: 5,
            ..ExecMetrics::default()
        };
        stats.record_query("Skinner-C", &[&m], 1, Duration::ZERO);
        let t = stats.snapshot_table(&[
            ("active_connections".to_string(), 3),
            ("queued".to_string(), 0),
        ]);
        assert_eq!(t.columns, vec!["metric".to_string(), "value".to_string()]);
        let find = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0].as_str() == Some(k))
                .unwrap_or_else(|| panic!("metric {k} missing"))[1]
                .as_i64()
                .unwrap()
        };
        assert_eq!(find("active_connections"), 3);
        assert_eq!(find("queries_total"), 1);
        assert_eq!(find("strategy.Skinner-C.episodes"), 4);
        assert_eq!(find("strategy.Skinner-C.mean_reward_milli"), 2000);
        assert_eq!(find("strategy.Skinner-C.pages_read"), 3);
        assert_eq!(find("strategy.Skinner-C.pages_skipped"), 5);
        // Registry-backed additions ride in the same table.
        assert_eq!(find("slow_queries_total"), 0);
        assert_eq!(find("order_switches_total"), 0);
    }

    #[test]
    fn regret_counters_fold_from_exec_metrics() {
        let stats = ServerStats::new();
        let m = ExecMetrics {
            slices: 30,
            ..ExecMetrics::default()
        }
        .with_counter("order_switches", 4)
        .with_counter("cache_hit", 1)
        .with_counter("last_order_switch", 12);
        stats.record_query("Skinner-C", &[&m], 10, Duration::from_micros(50));
        assert_eq!(stats.order_switches_total.get(), 4);
        assert_eq!(stats.warm_start_hits_total.get(), 1);
        let conv = stats.last_order_switch_slices.snapshot();
        assert_eq!(conv.count, 1);
        assert_eq!(conv.sum, 12);
        // The query landed in the latency histogram and the prometheus
        // rendering carries the per-strategy mirror.
        assert_eq!(stats.query_latency_us.snapshot().count, 1);
        let text = stats.registry().render_prometheus();
        assert!(text.contains("skinner_order_switches_total 4"), "{text}");
        assert!(
            text.contains("skinner_strategy_episodes_total{strategy=\"Skinner-C\"} 30"),
            "{text}"
        );
    }

    #[test]
    fn hybrid_counters_fold_into_rows_and_registry() {
        let stats = ServerStats::new();
        let switched = ExecMetrics::default()
            .with_counter("optimizer_slices", 3)
            .with_counter("learned_slices", 4)
            .with_counter("switched_at_episode", 9)
            .with_counter("plan_cost_est", 1234);
        let raced_through = ExecMetrics::default()
            .with_counter("optimizer_slices", 2)
            .with_counter("learned_slices", 2)
            .with_counter("switched_at_episode", 0)
            .with_counter("plan_cost_est", 77);
        stats.record_query("skinner_h", &[&switched], 10, Duration::from_micros(5));
        stats.record_query("skinner_h", &[&raced_through], 10, Duration::from_micros(5));
        let aggs = stats.strategy_aggregates();
        assert_eq!(aggs["skinner_h"].optimizer_slices, 5);
        assert_eq!(aggs["skinner_h"].learned_slices, 6);
        assert_eq!(aggs["skinner_h"].hybrid_switchovers, 1, "0 = no switch");
        assert_eq!(aggs["skinner_h"].plan_cost_est, 77, "last estimate wins");
        let hist = stats.hybrid_switchover_episode.snapshot();
        assert_eq!((hist.count, hist.sum), (1, 9));
        let t = stats.snapshot_table(&[]);
        let find = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0].as_str() == Some(k))
                .unwrap_or_else(|| panic!("metric {k} missing"))[1]
                .as_i64()
                .unwrap()
        };
        assert_eq!(find("strategy.skinner_h.optimizer_slices"), 5);
        assert_eq!(find("strategy.skinner_h.learned_slices"), 6);
        assert_eq!(find("strategy.skinner_h.hybrid_switchovers"), 1);
        assert_eq!(find("strategy.skinner_h.plan_cost_est"), 77);
        let text = stats.registry().render_prometheus();
        assert!(
            text.contains("skinner_strategy_optimizer_slices_total{strategy=\"skinner_h\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("skinner_strategy_hybrid_switchovers_total{strategy=\"skinner_h\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn template_keys_normalize_literals_and_whitespace() {
        assert_eq!(
            template_key("SELECT  t.x FROM t WHERE t.x = 42"),
            "SELECT t.x FROM t WHERE t.x = ?"
        );
        assert_eq!(
            template_key("SELECT t.x FROM t WHERE t.name = 'bob'  AND t.y < 3.5e2"),
            "SELECT t.x FROM t WHERE t.name = ? AND t.y < ?"
        );
        // Identifiers keep their digits; only standalone numbers collapse.
        assert_eq!(
            template_key("SELECT t1.x FROM t1 WHERE t1.x = 7"),
            "SELECT t1.x FROM t1 WHERE t1.x = ?"
        );
        assert_eq!(
            template_key("SELECT a.x FROM a WHERE a.x = 1"),
            template_key("SELECT a.x\nFROM a WHERE a.x = 999")
        );
    }
}
