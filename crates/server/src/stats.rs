//! The observable server state behind `SHOW SERVER STATS`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use skinnerdb::{ExecMetrics, QueryResult, Value};

/// Per-strategy execution aggregates: how many queries each strategy
/// served, how many learning episodes (time slices) they ran, and the
/// cumulative reward proxy (deduplicated result tuples — per-episode
/// reward in the paper is per-slice progress, so tuples/episodes is the
/// mean reward).
#[derive(Debug, Default, Clone)]
pub struct StrategyAgg {
    pub queries: u64,
    pub episodes: u64,
    pub result_tuples: u64,
    pub work_units: u64,
    pub wall_micros: u64,
    /// Zone-mapped pages evaluated / skipped during pre-processing (only
    /// disk-backed tables carry zone maps; in-memory scans report zero).
    pub pages_read: u64,
    pub pages_skipped: u64,
}

/// Counters the server maintains; everything is monotonic except the
/// gauges (`active_*`, `queued`) sampled from live structures.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections_total: AtomicU64,
    pub connections_rejected: AtomicU64,
    pub queries_total: AtomicU64,
    pub queries_failed: AtomicU64,
    pub queries_cancelled: AtomicU64,
    pub queries_timed_out: AtomicU64,
    pub connections_reaped_idle: AtomicU64,
    per_strategy: Mutex<BTreeMap<String, StrategyAgg>>,
}

impl ServerStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one finished query into the per-strategy aggregates.
    pub fn record_query(
        &self,
        strategy: &str,
        metrics_per_statement: &[&ExecMetrics],
        work_units: u64,
        wall: Duration,
    ) {
        let mut map = self.per_strategy.lock();
        let agg = map.entry(strategy.to_string()).or_default();
        agg.queries += 1;
        agg.work_units += work_units;
        agg.wall_micros += wall.as_micros() as u64;
        for m in metrics_per_statement {
            agg.episodes += m.slices;
            agg.result_tuples += m.result_tuples;
            agg.pages_read += m.pages_read;
            agg.pages_skipped += m.pages_skipped;
        }
    }

    pub fn strategy_aggregates(&self) -> BTreeMap<String, StrategyAgg> {
        self.per_strategy.lock().clone()
    }

    /// Materialize the stats as a result table (`metric`, `value`), the
    /// shape `SHOW SERVER STATS` returns over the wire. Gauges the server
    /// owns (connections, queue) are passed in.
    pub fn snapshot_table(&self, gauges: &[(String, u64)]) -> QueryResult {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut push = |k: &str, v: u64| {
            rows.push(vec![Value::from(k), Value::Int(v as i64)]);
        };
        for (k, v) in gauges {
            push(k, *v);
        }
        push("queries_total", self.queries_total.load(Ordering::Relaxed));
        push(
            "queries_failed",
            self.queries_failed.load(Ordering::Relaxed),
        );
        push(
            "queries_cancelled",
            self.queries_cancelled.load(Ordering::Relaxed),
        );
        push(
            "queries_timed_out",
            self.queries_timed_out.load(Ordering::Relaxed),
        );
        push(
            "connections_total",
            self.connections_total.load(Ordering::Relaxed),
        );
        push(
            "connections_rejected",
            self.connections_rejected.load(Ordering::Relaxed),
        );
        push(
            "connections_reaped_idle",
            self.connections_reaped_idle.load(Ordering::Relaxed),
        );
        for (name, agg) in self.strategy_aggregates() {
            let mean_reward_milli = (agg.result_tuples * 1000)
                .checked_div(agg.episodes)
                .unwrap_or(0);
            push(&format!("strategy.{name}.queries"), agg.queries);
            push(&format!("strategy.{name}.episodes"), agg.episodes);
            push(&format!("strategy.{name}.result_tuples"), agg.result_tuples);
            push(&format!("strategy.{name}.work_units"), agg.work_units);
            push(&format!("strategy.{name}.wall_micros"), agg.wall_micros);
            push(&format!("strategy.{name}.pages_read"), agg.pages_read);
            push(&format!("strategy.{name}.pages_skipped"), agg.pages_skipped);
            push(
                &format!("strategy.{name}.mean_reward_milli"),
                mean_reward_milli,
            );
        }
        QueryResult {
            columns: vec!["metric".into(), "value".into()],
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_fold_per_strategy() {
        let stats = ServerStats::new();
        let m1 = ExecMetrics {
            slices: 10,
            result_tuples: 40,
            ..ExecMetrics::default()
        };
        let m2 = ExecMetrics {
            slices: 5,
            result_tuples: 10,
            ..ExecMetrics::default()
        };
        stats.record_query("Skinner-C", &[&m1, &m2], 500, Duration::from_micros(90));
        stats.record_query("Skinner-C", &[&m1], 100, Duration::from_micros(10));
        stats.record_query("Traditional", &[], 7, Duration::ZERO);
        let aggs = stats.strategy_aggregates();
        assert_eq!(aggs["Skinner-C"].queries, 2);
        assert_eq!(aggs["Skinner-C"].episodes, 25);
        assert_eq!(aggs["Skinner-C"].result_tuples, 90);
        assert_eq!(aggs["Skinner-C"].work_units, 600);
        assert_eq!(aggs["Skinner-C"].wall_micros, 100);
        assert_eq!(aggs["Traditional"].queries, 1);
    }

    #[test]
    fn snapshot_is_a_metric_value_table() {
        let stats = ServerStats::new();
        ServerStats::bump(&stats.queries_total);
        let m = ExecMetrics {
            slices: 4,
            result_tuples: 8,
            pages_read: 3,
            pages_skipped: 5,
            ..ExecMetrics::default()
        };
        stats.record_query("Skinner-C", &[&m], 1, Duration::ZERO);
        let t = stats.snapshot_table(&[
            ("active_connections".to_string(), 3),
            ("queued".to_string(), 0),
        ]);
        assert_eq!(t.columns, vec!["metric".to_string(), "value".to_string()]);
        let find = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0].as_str() == Some(k))
                .unwrap_or_else(|| panic!("metric {k} missing"))[1]
                .as_i64()
                .unwrap()
        };
        assert_eq!(find("active_connections"), 3);
        assert_eq!(find("queries_total"), 1);
        assert_eq!(find("strategy.Skinner-C.episodes"), 4);
        assert_eq!(find("strategy.Skinner-C.mean_reward_milli"), 2000);
        assert_eq!(find("strategy.Skinner-C.pages_read"), 3);
        assert_eq!(find("strategy.Skinner-C.pages_skipped"), 5);
    }
}
