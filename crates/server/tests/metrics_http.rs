//! Integration test for the Prometheus exporter: a real `Server` with
//! `metrics_addr` enabled, real queries over the wire protocol, and raw
//! HTTP scrapes of `/metrics` validated against the text exposition
//! format (0.0.4): HELP/TYPE preambles, histogram bucket structure,
//! monotone counters across scrapes, per-tenant labels.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use skinner_server::protocol::{Request, Response, PROTOCOL_VERSION};
use skinner_server::{Server, ServerConfig};
use skinnerdb::{DataType, Database, Value};

fn fixture_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        &[("id", DataType::Int), ("g", DataType::Int)],
        (0..60)
            .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "u",
        &[("tid", DataType::Int), ("w", DataType::Float)],
        (0..90)
            .map(|i| vec![Value::Int(i % 60), Value::Float(i as f64 / 2.0)])
            .collect(),
    )
    .unwrap();
    db
}

/// Minimal wire client: handshake, then run a script to completion.
fn run_query(addr: &str, sql: &str) {
    run_query_as(addr, "", sql)
}

fn run_query_as(addr: &str, tenant: &str, sql: &str) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    Request::Hello {
        version: PROTOCOL_VERSION,
        tenant: tenant.to_string(),
    }
    .write(&mut &stream)
    .unwrap();
    match Response::read(&mut &stream).unwrap() {
        Response::HelloOk { .. } => {}
        other => panic!("handshake failed: {other:?}"),
    }
    Request::Query {
        sql: sql.to_string(),
    }
    .write(&mut &stream)
    .unwrap();
    loop {
        match Response::read(&mut &stream).unwrap() {
            Response::RowHeader { .. } | Response::RowBatch { .. } | Response::Text { .. } => {}
            Response::Done { .. } => break,
            Response::Error { code, message } => panic!("query failed: {code:?} {message}"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// One raw HTTP GET against the exporter; returns (status line, headers,
/// body).
fn scrape(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Parse `name{labels} value` sample lines into a map (HELP/TYPE skipped).
fn samples(body: &str) -> HashMap<String, f64> {
    body.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let (name, value) = l
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("bad line {l:?}"));
            (name.to_string(), value.parse::<f64>().unwrap())
        })
        .collect()
}

/// Every sample family must have exactly one HELP and one TYPE line, in
/// that order, before its first sample.
fn check_exposition_format(body: &str) {
    let mut seen_help: HashMap<String, usize> = HashMap::new();
    let mut seen_type: HashMap<String, usize> = HashMap::new();
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split(' ').next().unwrap().to_string();
            assert!(!seen_help.contains_key(&fam), "duplicate HELP for {fam}");
            assert!(!seen_type.contains_key(&fam), "HELP must precede TYPE");
            seen_help.insert(fam, 1);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let fam = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE {kind:?} for {fam}"
            );
            assert!(seen_help.contains_key(&fam), "TYPE without HELP for {fam}");
            seen_type.insert(fam, 1);
        } else if !line.starts_with('#') {
            let name = line
                .split([' ', '{'])
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                seen_type.contains_key(name),
                "sample {line:?} has no TYPE preamble (family {name})"
            );
        }
    }
}

#[test]
fn metrics_endpoint_serves_valid_exposition_and_counters_are_monotone() {
    let mut server = Server::bind(
        fixture_db(),
        "127.0.0.1:0",
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let maddr = server.metrics_addr().expect("exporter bound");

    run_query(
        &addr,
        "SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g",
    );
    let (status, headers, body1) = scrape(maddr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        headers.to_ascii_lowercase().contains("text/plain") && headers.contains("version=0.0.4"),
        "exposition content type missing: {headers}"
    );
    check_exposition_format(&body1);
    let s1 = samples(&body1);
    assert!(s1["skinner_queries_total"] >= 1.0, "{body1}");
    assert!(s1["skinner_connections_total"] >= 1.0);
    assert!(s1["skinner_admitted_total"] >= 1.0);
    assert!(s1["skinner_metrics_scrapes_total"] >= 1.0);
    // The latency histogram exposes cumulative buckets, +Inf, sum, count.
    assert!(
        body1.contains("skinner_query_latency_us_bucket{le=\"+Inf\"}"),
        "{body1}"
    );
    assert_eq!(
        s1["skinner_query_latency_us_bucket{le=\"+Inf\"}"],
        s1["skinner_query_latency_us_count"]
    );
    assert!(s1["skinner_query_latency_us_sum"] > 0.0);
    // Admission wait is traced for every admitted query.
    assert!(s1["skinner_admission_wait_us_count"] >= 1.0);
    // Regret proxies from the learning engine.
    assert!(s1.contains_key("skinner_order_switches_total"), "{body1}");
    assert!(s1.contains_key("skinner_warm_start_hits_total"));
    // Per-strategy aggregates carry labels.
    assert!(
        body1.contains("skinner_strategy_queries_total{strategy="),
        "{body1}"
    );

    run_query(
        &addr,
        "SELECT t.id FROM t, u WHERE t.id = u.tid AND t.g = 1",
    );
    let (_, _, body2) = scrape(maddr, "/metrics");
    check_exposition_format(&body2);
    let s2 = samples(&body2);
    assert!(s2["skinner_queries_total"] >= s1["skinner_queries_total"] + 1.0);
    for monotone in [
        "skinner_connections_total",
        "skinner_admitted_total",
        "skinner_metrics_scrapes_total",
        "skinner_query_latency_us_count",
    ] {
        assert!(
            s2[monotone] >= s1[monotone],
            "{monotone} went backwards: {} -> {}",
            s1[monotone],
            s2[monotone]
        );
    }
    assert!(s2["skinner_metrics_scrapes_total"] >= 2.0);

    // Non-metrics paths and methods answer with proper HTTP errors.
    let (status, _, _) = scrape(maddr, "/nope");
    assert!(status.contains("404"), "{status}");

    server.shutdown();
}

#[test]
fn tenant_and_reap_gauges_appear_with_labels() {
    let mut server = Server::bind(
        fixture_db(),
        "127.0.0.1:0",
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            idle_timeout: Some(Duration::from_millis(100)),
            admission: skinner_server::AdmissionConfig {
                tenants: vec![skinner_server::TenantClass {
                    name: "gold".into(),
                    weight: 2,
                }],
                ..Default::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let maddr = server.metrics_addr().unwrap();

    // A query under the declared tenant activates its admission entry.
    run_query_as(
        &addr,
        "gold",
        "SELECT t.id FROM t, u WHERE t.id = u.tid AND t.g = 1",
    );

    // An idle wire connection that the sweeper will reap.
    let idle = TcpStream::connect(&addr).unwrap();
    Request::Hello {
        version: PROTOCOL_VERSION,
        tenant: "gold".into(),
    }
    .write(&mut &idle)
    .unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match Response::read(&mut &idle).unwrap() {
        Response::HelloOk { .. } => {}
        other => panic!("handshake failed: {other:?}"),
    }
    // Sweep cadence is ~1s; wait past deadline + sweep.
    std::thread::sleep(Duration::from_millis(2500));

    let (_, _, body) = scrape(maddr, "/metrics");
    check_exposition_format(&body);
    let s = samples(&body);
    assert!(
        s["skinner_connections_reaped_idle"] >= 1.0,
        "idle reap gauge missing: {body}"
    );
    assert!(
        body.contains("skinner_tenant_weight{tenant=\"gold\"} 2"),
        "per-tenant gauges must be labelled: {body}"
    );
    assert!(
        s["skinner_tenant_admitted_total{tenant=\"gold\"}"] >= 1.0,
        "{body}"
    );
    server.shutdown();
}
