//! Property tests for the v2 wire protocol: tagged request/response
//! envelopes must round-trip through encode/decode for arbitrary
//! payloads, and the incremental [`FrameBuffer`] must reassemble frames
//! identically no matter how the byte stream is chopped up.

use proptest::prelude::*;

use skinner_server::protocol::{ErrorCode, FrameBuffer, QuerySummary, Request, Response};
use skinner_server::Value;

fn arb_inner_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (Just(()), "[a-z]{0,8}").prop_map(|(_, tenant)| Request::Hello { version: 2, tenant }),
        "\\PC{0,200}".prop_map(|sql| Request::Query { sql }),
        "\\PC{0,100}".prop_map(|sql| Request::Prepare { sql }),
        (0u32..1000).prop_map(|id| Request::Execute { id }),
        (0u32..1000).prop_map(|id| Request::Close { id }),
        ("[a-z_]{1,12}", "\\PC{0,40}").prop_map(|(key, value)| Request::Set { key, value }),
        (0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(conn_id, key)| Request::Cancel { conn_id, key }),
        Just(Request::Shutdown),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|x| Value::Float(x as f64 / 8.0)),
        "\\PC{0,24}".prop_map(|s| Value::from(s.as_str())),
    ]
}

fn arb_inner_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        // v2 only: a v1 HelloOk intentionally drops max_inflight on the
        // wire (decoded as 1), so it does not round-trip arbitrary caps.
        (0u64..1000, 0u64..u64::MAX, 1u32..64).prop_map(|(conn_id, cancel_key, max_inflight)| {
            Response::HelloOk {
                version: 2,
                conn_id,
                cancel_key,
                max_inflight,
            }
        }),
        proptest::collection::vec("[a-z]{1,8}", 0..5)
            .prop_map(|columns| Response::RowHeader { columns }),
        proptest::collection::vec(proptest::collection::vec(arb_value(), 0..4), 0..6)
            .prop_map(|rows| Response::RowBatch { rows }),
        "\\PC{0,120}".prop_map(|text| Response::Text { text }),
        Just(Response::Done {
            summary: QuerySummary::default(),
        }),
        ("\\PC{0,80}").prop_map(|message| Response::Error {
            code: ErrorCode::Sql,
            message,
        }),
        (0u32..100, proptest::collection::vec("[a-z]{1,6}", 0..4))
            .prop_map(|(id, columns)| Response::PrepareOk { id, columns }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    /// Tagged requests round-trip for any tag (including 0 and u32::MAX)
    /// and any inner request.
    fn tagged_requests_roundtrip(tag in proptest::prelude::any::<u32>(), req in arb_inner_request()) {
        let wrapped = Request::Tagged { tag, req: Box::new(req) };
        let bytes = wrapped.encode().expect("encode");
        let back = Request::decode(&bytes).expect("decode");
        prop_assert_eq!(back, wrapped);
    }

    #[test]
    /// Tagged responses round-trip likewise.
    fn tagged_responses_roundtrip(tag in proptest::prelude::any::<u32>(), resp in arb_inner_response()) {
        let wrapped = Response::Tagged { tag, resp: Box::new(resp) };
        let bytes = wrapped.encode().expect("encode");
        let back = Response::decode(&bytes).expect("decode");
        prop_assert_eq!(back, wrapped);
    }

    #[test]
    /// A pipelined stream of tagged frames survives arbitrary TCP
    /// segmentation: chop the concatenated frames at random boundaries,
    /// feed the chunks through the event loop's FrameBuffer, and the
    /// reassembled frames must decode to the original sequence in order.
    fn frame_buffer_reassembles_any_segmentation(
        reqs in proptest::collection::vec((proptest::prelude::any::<u32>(), arb_inner_request()), 1..6),
        cuts in proptest::collection::vec(1usize..64, 0..12),
    ) {
        let originals: Vec<Request> = reqs
            .into_iter()
            .map(|(tag, req)| Request::Tagged { tag, req: Box::new(req) })
            .collect();
        let mut stream = Vec::new();
        for r in &originals {
            let payload = r.encode().expect("encode");
            stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            stream.extend_from_slice(&payload);
        }
        let mut buf = FrameBuffer::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut cut_ix = 0usize;
        while pos < stream.len() {
            let step = if cut_ix < cuts.len() { cuts[cut_ix] } else { stream.len() };
            cut_ix += 1;
            let end = (pos + step).min(stream.len());
            buf.ingest(&stream[pos..end]);
            pos = end;
            while let Some(payload) = buf.try_frame().expect("well-formed stream") {
                decoded.push(Request::decode(&payload).expect("decode"));
            }
        }
        prop_assert_eq!(decoded, originals);
    }
}
