//! System-R-style cardinality estimation under independence assumptions.
//!
//! These estimates drive the traditional-optimizer baseline and Skinner-H's
//! optimizer half. They are *deliberately* classic: correlated predicates
//! multiply as if independent, UDFs get a fixed default selectivity (like
//! Postgres's 1/3 for opaque boolean functions), `LIKE` gets a magic
//! constant. The paper's torture benchmarks exist precisely to break these
//! assumptions.
//!
//! The [`Estimator`] additionally supports *calibration*: the sampling-based
//! re-optimizer baseline (Wu et al., compared against in the appendix) feeds
//! observed cardinalities back, overriding estimates for the sub-plans it has
//! already measured.

use std::collections::HashMap;
use std::sync::Arc;

use skinner_query::expr::{CmpOp, Expr};
use skinner_query::{EquiPred, JoinQuery, TableSet};
use skinner_storage::DataType;

use crate::table_stats::{StatsCache, TableStats};

/// Default selectivity for UDF predicates (opaque to the optimizer).
/// Matches Postgres's default for boolean functions.
pub const DEFAULT_UDF_SELECTIVITY: f64 = 1.0 / 3.0;

/// Default selectivity for non-equality join predicates.
pub const DEFAULT_GENERIC_JOIN_SELECTIVITY: f64 = 1.0 / 3.0;

/// Default selectivity for `LIKE` patterns.
pub const DEFAULT_LIKE_SELECTIVITY: f64 = 0.05;

/// Default selectivity for unrecognized predicate shapes.
pub const DEFAULT_PRED_SELECTIVITY: f64 = 1.0 / 3.0;

/// Cardinality estimator for one bound query.
pub struct Estimator<'q> {
    query: &'q JoinQuery,
    stats: Vec<Arc<TableStats>>,
    /// Observed per-table filtered cardinalities (overrides estimates).
    calibrated_filtered: HashMap<usize, f64>,
    /// Observed cardinalities of joined table sets (overrides estimates).
    calibrated_sets: HashMap<u64, f64>,
}

impl<'q> Estimator<'q> {
    /// Build an estimator, computing (or fetching cached) base-table stats.
    pub fn new(query: &'q JoinQuery, cache: &StatsCache) -> Self {
        let stats = query.tables.iter().map(|t| cache.stats_for(t)).collect();
        Estimator {
            query,
            stats,
            calibrated_filtered: HashMap::new(),
            calibrated_sets: HashMap::new(),
        }
    }

    /// Record the *observed* filtered cardinality of table `t` (re-optimizer
    /// feedback after pre-processing).
    pub fn calibrate_filtered(&mut self, t: usize, rows: f64) {
        self.calibrated_filtered.insert(t, rows);
    }

    /// Record the observed cardinality of a joined set (re-optimizer
    /// feedback after materializing an intermediate result).
    pub fn calibrate_set(&mut self, set: TableSet, rows: f64) {
        self.calibrated_sets.insert(set.mask(), rows);
    }

    /// Unfiltered base cardinality of table `t`.
    pub fn base_cardinality(&self, t: usize) -> f64 {
        self.stats[t].rows as f64
    }

    /// Estimated selectivity of all unary predicates on table `t`.
    pub fn unary_selectivity(&self, t: usize) -> f64 {
        self.query.unary[t]
            .iter()
            .map(|e| self.expr_selectivity(t, e))
            .product()
    }

    /// Estimated cardinality of table `t` after unary filtering.
    pub fn filtered_cardinality(&self, t: usize) -> f64 {
        if let Some(&c) = self.calibrated_filtered.get(&t) {
            return c;
        }
        self.base_cardinality(t) * self.unary_selectivity(t)
    }

    /// Estimated selectivity of an equality join predicate: `1/max(d₁,d₂)`.
    pub fn equi_selectivity(&self, p: &EquiPred) -> f64 {
        let dl = self.stats[p.left.table].column(p.left.col).distinct as f64;
        let dr = self.stats[p.right.table].column(p.right.col).distinct as f64;
        1.0 / dl.max(dr).max(1.0)
    }

    /// Estimated cardinality of joining the tables in `set`, applying every
    /// predicate fully contained in `set`. Calibrated values win.
    pub fn join_cardinality(&self, set: TableSet) -> f64 {
        if let Some(&c) = self.calibrated_sets.get(&set.mask()) {
            return c;
        }
        let mut card: f64 = set.iter().map(|t| self.filtered_cardinality(t)).product();
        for p in &self.query.equi_preds {
            if p.table_set().is_subset_of(&set) {
                card *= self.equi_selectivity(p);
            }
        }
        for p in &self.query.generic_preds {
            if p.tables.is_subset_of(&set) {
                card *= generic_pred_selectivity(&p.expr);
            }
        }
        card.max(0.0)
    }

    /// Estimated selectivity of a (unary) predicate on table `t`.
    pub fn expr_selectivity(&self, t: usize, e: &Expr) -> f64 {
        let stats = &self.stats[t];
        sel(stats, e).clamp(0.0, 1.0)
    }
}

fn sel(stats: &TableStats, e: &Expr) -> f64 {
    match e {
        Expr::And(es) => es.iter().map(|x| sel(stats, x)).product(),
        Expr::Or(es) => 1.0 - es.iter().map(|x| 1.0 - sel(stats, x)).product::<f64>(),
        Expr::Not(inner) => 1.0 - sel(stats, inner),
        Expr::Cmp { op, left, right } => cmp_sel(stats, *op, left, right),
        Expr::InSet { set, arg, negated } => {
            let s = match arg.as_ref() {
                Expr::Col(c, _) => {
                    (set.len() as f64 / stats.column(c.col).distinct as f64).min(1.0)
                }
                _ => DEFAULT_PRED_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::LikeSet { negated, .. } => {
            if *negated {
                1.0 - DEFAULT_LIKE_SELECTIVITY
            } else {
                DEFAULT_LIKE_SELECTIVITY
            }
        }
        Expr::Udf { .. } => DEFAULT_UDF_SELECTIVITY,
        Expr::Col(_, DataType::Int) => 0.5, // boolean column used as predicate
        _ => DEFAULT_PRED_SELECTIVITY,
    }
}

fn cmp_sel(stats: &TableStats, op: CmpOp, left: &Expr, right: &Expr) -> f64 {
    // Normalize to (column ⋄ literal) when possible.
    let (col, lit, op) = match (left, right) {
        (Expr::Col(c, _), l) if literal_value(l).is_some() => (c, literal_value(l), op),
        (l, Expr::Col(c, _)) if literal_value(l).is_some() => (c, literal_value(l), flip(op)),
        (Expr::Col(a, _), Expr::Col(b, _)) => {
            // Same-table column comparison.
            let da = stats.column(a.col).distinct as f64;
            let db = stats.column(b.col).distinct as f64;
            return match op {
                CmpOp::Eq => 1.0 / da.max(db).max(1.0),
                CmpOp::Neq => 1.0 - 1.0 / da.max(db).max(1.0),
                _ => DEFAULT_PRED_SELECTIVITY,
            };
        }
        _ => return DEFAULT_PRED_SELECTIVITY,
    };
    let cs = stats.column(col.col);
    match op {
        CmpOp::Eq => 1.0 / cs.distinct as f64,
        CmpOp::Neq => 1.0 - 1.0 / cs.distinct as f64,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let v = match lit {
                Some(v) => v,
                None => return DEFAULT_PRED_SELECTIVITY,
            };
            if cs.dtype == DataType::Str || cs.max <= cs.min {
                return DEFAULT_PRED_SELECTIVITY;
            }
            let frac = ((v - cs.min) / (cs.max - cs.min)).clamp(0.0, 1.0);
            match op {
                CmpOp::Lt | CmpOp::Le => frac,
                CmpOp::Gt | CmpOp::Ge => 1.0 - frac,
                _ => unreachable!(),
            }
        }
    }
}

fn literal_value(e: &Expr) -> Option<f64> {
    match e {
        Expr::LitInt(i) => Some(*i as f64),
        Expr::LitFloat(x) => Some(*x),
        Expr::LitStr { .. } => Some(0.0), // equality handled via distinct only
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// Selectivity of a generic (non-equality) join predicate.
pub fn generic_pred_selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Udf { .. } => DEFAULT_UDF_SELECTIVITY,
        Expr::Cmp { op: CmpOp::Eq, .. } => 0.01,
        Expr::And(es) => es.iter().map(generic_pred_selectivity).product(),
        _ => DEFAULT_GENERIC_JOIN_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("grp", Int)]);
        for i in 0..1000 {
            a.push_row(&[Value::Int(i), Value::Int(i % 10)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("v", Int)]);
        for i in 0..500 {
            b.push_row(&[Value::Int(i % 1000), Value::Int(i % 50)]);
        }
        cat.register(b.finish());
        let udfs = UdfRegistry::new();
        udfs.register("opaque", |_| Value::from(true));
        (cat, udfs)
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> JoinQuery {
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, udfs).unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn equality_selectivity_uses_distinct() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a WHERE a.grp = 3", &cat, &udfs);
        let cache = StatsCache::new();
        let est = Estimator::new(&q, &cache);
        // grp has 10 distinct values → selectivity 0.1 → 100 rows.
        let c = est.filtered_cardinality(0);
        assert!((c - 100.0).abs() < 1.0, "{c}");
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a WHERE a.id < 250", &cat, &udfs);
        let cache = StatsCache::new();
        let est = Estimator::new(&q, &cache);
        let c = est.filtered_cardinality(0);
        assert!((c - 250.0).abs() < 10.0, "{c}");
    }

    #[test]
    fn independence_multiplies() {
        let (cat, udfs) = setup();
        // Perfectly correlated predicates (id < 100 implies grp = id % 10 …)
        // still multiply: 0.1 * 0.1 = 0.01 → 10 rows (truth would differ).
        let q = bind(
            "SELECT a.id FROM a WHERE a.id < 100 AND a.grp = 5",
            &cat,
            &udfs,
        );
        let cache = StatsCache::new();
        let est = Estimator::new(&q, &cache);
        let c = est.filtered_cardinality(0);
        assert!((c - 10.0).abs() < 2.0, "{c}");
    }

    #[test]
    fn udf_gets_default() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a WHERE opaque(a.id)", &cat, &udfs);
        let cache = StatsCache::new();
        let est = Estimator::new(&q, &cache);
        let s = est.unary_selectivity(0);
        assert!((s - DEFAULT_UDF_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn join_cardinality_combines() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let cache = StatsCache::new();
        let est = Estimator::new(&q, &cache);
        let both = TableSet::from_iter([0, 1]);
        // 1000 * 500 / max(1000, 500) = 500.
        let c = est.join_cardinality(both);
        assert!((c - 500.0).abs() < 5.0, "{c}");
    }

    #[test]
    fn calibration_overrides() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let cache = StatsCache::new();
        let mut est = Estimator::new(&q, &cache);
        est.calibrate_filtered(0, 7.0);
        assert_eq!(est.filtered_cardinality(0), 7.0);
        let both = TableSet::from_iter([0, 1]);
        est.calibrate_set(both, 42.0);
        assert_eq!(est.join_cardinality(both), 42.0);
    }

    #[test]
    fn or_and_not_combinators() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a WHERE a.grp = 1 OR a.grp = 2",
            &cat,
            &udfs,
        );
        let cache = StatsCache::new();
        let est = Estimator::new(&q, &cache);
        let s = est.unary_selectivity(0);
        // 1 - 0.9^2 = 0.19.
        assert!((s - 0.19).abs() < 0.01, "{s}");
    }
}
