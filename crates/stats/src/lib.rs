//! Data statistics and cardinality estimation.
//!
//! This crate is the substrate for the *traditional optimizer* baseline that
//! SkinnerDB is compared against. The paper's premise (Section 1) is that
//! optimizers "predict cost based on coarse-grained data statistics and under
//! simplifying assumptions (e.g., independent predicates)" and therefore
//! "may pick plans whose execution cost is sub-optimal by orders of
//! magnitude". We implement exactly those classic System-R-style estimates —
//! per-column distinct counts and min/max, attribute-value independence,
//! uniformity — so the baseline mis-estimates on correlated data and UDFs in
//! the same way real systems do.
//!
//! SkinnerDB itself uses **none of this** (it maintains no statistics); only
//! the baselines and Skinner-H's traditional-optimizer half do.

pub mod estimator;
pub mod sampling;
pub mod table_stats;

pub use estimator::{Estimator, DEFAULT_GENERIC_JOIN_SELECTIVITY, DEFAULT_UDF_SELECTIVITY};
pub use sampling::sample_selectivity;
pub use table_stats::{ColumnStats, StatsCache, TableStats};

/// Logarithmic cardinality bucket of a row count: 0 for an empty table,
/// otherwise `floor(log2(rows)) + 1` (so 1 row → 1, 2–3 rows → 2, …).
/// One exception to "SkinnerDB uses no statistics": the cross-query
/// learning cache buckets table sizes with this when ranking
/// nearest-neighbor templates for warm-start generalization — a property
/// of the *cache*, not of the regret-bounded execution, whose results
/// never depend on it.
pub fn card_bucket(rows: u64) -> u8 {
    match rows {
        0 => 0,
        n => (64 - n.leading_zeros()) as u8,
    }
}

#[cfg(test)]
mod bucket_tests {
    use super::card_bucket;

    #[test]
    fn buckets_are_logarithmic_and_monotone() {
        assert_eq!(card_bucket(0), 0);
        assert_eq!(card_bucket(1), 1);
        assert_eq!(card_bucket(2), 2);
        assert_eq!(card_bucket(3), 2);
        assert_eq!(card_bucket(4), 3);
        assert_eq!(card_bucket(1023), 10);
        assert_eq!(card_bucket(1024), 11);
        assert_eq!(card_bucket(u64::MAX), 64);
        let mut prev = 0;
        for r in 0..4096u64 {
            let b = card_bucket(r);
            assert!(b >= prev);
            prev = b;
        }
    }
}
