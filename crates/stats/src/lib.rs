//! Data statistics and cardinality estimation.
//!
//! This crate is the substrate for the *traditional optimizer* baseline that
//! SkinnerDB is compared against. The paper's premise (Section 1) is that
//! optimizers "predict cost based on coarse-grained data statistics and under
//! simplifying assumptions (e.g., independent predicates)" and therefore
//! "may pick plans whose execution cost is sub-optimal by orders of
//! magnitude". We implement exactly those classic System-R-style estimates —
//! per-column distinct counts and min/max, attribute-value independence,
//! uniformity — so the baseline mis-estimates on correlated data and UDFs in
//! the same way real systems do.
//!
//! SkinnerDB itself uses **none of this** (it maintains no statistics); only
//! the baselines and Skinner-H's traditional-optimizer half do.

pub mod estimator;
pub mod sampling;
pub mod table_stats;

pub use estimator::{Estimator, DEFAULT_GENERIC_JOIN_SELECTIVITY, DEFAULT_UDF_SELECTIVITY};
pub use sampling::sample_selectivity;
pub use table_stats::{ColumnStats, StatsCache, TableStats};
