//! Sampling-based selectivity measurement.
//!
//! Used by the re-optimizer baseline (Wu et al., "Sampling-based query
//! re-optimization", compared against in the paper's appendix): instead of
//! trusting formula-based estimates, it evaluates predicates on a random
//! sample of rows and extrapolates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skinner_query::expr::{EvalCtx, Expr};
use skinner_storage::{RowId, Table};
use std::sync::Arc;

/// Estimate the fraction of rows of `tables[t]` satisfying all `preds` by
/// evaluating them on `sample_size` uniformly drawn rows. Deterministic for a
/// fixed `seed`. Returns 1.0 for empty predicate lists and an unbiased 0.0
/// for empty tables.
pub fn sample_selectivity(
    tables: &[Arc<Table>],
    t: usize,
    preds: &[Expr],
    sample_size: usize,
    seed: u64,
) -> f64 {
    if preds.is_empty() {
        return 1.0;
    }
    let n = tables[t].num_rows();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let interner = tables[t].interner().clone();
    let mut rows: Vec<RowId> = vec![0; tables.len()];
    let mut hits = 0usize;
    let k = sample_size.max(1);
    for _ in 0..k {
        let row = rng.gen_range(0..n) as RowId;
        rows[t] = row;
        let ctx = EvalCtx::new(tables, &rows, &interner);
        if preds.iter().all(|p| p.eval_bool(&ctx)) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::expr::{CmpOp, ColRef};
    use skinner_storage::{schema, Catalog, DataType, Value};

    fn table() -> (Catalog, Arc<Table>) {
        let cat = Catalog::new();
        let mut b = cat.builder("t", schema![("x", Int)]);
        for i in 0..1000 {
            b.push_row(&[Value::Int(i)]);
        }
        let t = cat.register(b.finish());
        (cat, t)
    }

    fn lt(threshold: i64) -> Expr {
        Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(Expr::Col(ColRef { table: 0, col: 0 }, DataType::Int)),
            right: Box::new(Expr::LitInt(threshold)),
        }
    }

    #[test]
    fn sample_approximates_truth() {
        let (_cat, t) = table();
        let tables = vec![t];
        let s = sample_selectivity(&tables, 0, &[lt(250)], 2000, 42);
        assert!((s - 0.25).abs() < 0.05, "{s}");
    }

    #[test]
    fn deterministic_for_seed() {
        let (_cat, t) = table();
        let tables = vec![t];
        let a = sample_selectivity(&tables, 0, &[lt(500)], 500, 7);
        let b = sample_selectivity(&tables, 0, &[lt(500)], 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_preds_and_empty_table() {
        let (_cat, t) = table();
        let tables = vec![t];
        assert_eq!(sample_selectivity(&tables, 0, &[], 100, 0), 1.0);
        let cat = Catalog::new();
        let b = cat.builder("e", schema![("x", Int)]);
        let e = cat.register(b.finish());
        let tables = vec![e];
        assert_eq!(sample_selectivity(&tables, 0, &[lt(1)], 100, 0), 0.0);
    }
}
