//! Per-table statistics: row counts, per-column distinct counts and ranges.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use skinner_storage::{Column, DataType, Table};

/// Statistics of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub dtype: DataType,
    /// Number of distinct values.
    pub distinct: usize,
    /// Numeric minimum (strings: 0).
    pub min: f64,
    /// Numeric maximum (strings: 0).
    pub max: f64,
}

/// Statistics of one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Scan `table` and compute statistics (one pass per column).
    pub fn compute(table: &Table) -> Self {
        let rows = table.num_rows();
        let columns = table.columns().iter().map(compute_column).collect();
        TableStats { rows, columns }
    }

    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }
}

fn compute_column(c: &Column) -> ColumnStats {
    let mut distinct: HashSet<u64> = HashSet::new();
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let n = c.len() as u32;
    for row in 0..n {
        distinct.insert(c.key_at(row));
        match c.dtype() {
            DataType::Str => {}
            _ => {
                let v = c.float_at(row);
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    if !min.is_finite() {
        min = 0.0;
        max = 0.0;
    }
    ColumnStats {
        dtype: c.dtype(),
        distinct: distinct.len().max(1),
        min,
        max,
    }
}

/// Cache of computed statistics keyed by table identity (`Arc` pointer).
/// Computing distinct counts scans the data, so the traditional optimizer
/// amortizes it across queries — real systems do the same via `ANALYZE`.
#[derive(Default)]
pub struct StatsCache {
    map: Mutex<HashMap<usize, Arc<TableStats>>>,
}

impl StatsCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats for `table`, computing on first access.
    pub fn stats_for(&self, table: &Arc<Table>) -> Arc<TableStats> {
        let key = Arc::as_ptr(table) as usize;
        if let Some(s) = self.map.lock().get(&key) {
            return s.clone();
        }
        let stats = Arc::new(TableStats::compute(table));
        self.map.lock().insert(key, stats.clone());
        stats
    }

    /// Drop all cached entries (tests / reloads).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{schema, Catalog, Value};

    fn table() -> (Catalog, Arc<Table>) {
        let cat = Catalog::new();
        let mut b = cat.builder("t", schema![("k", Int), ("s", Str), ("f", Float)]);
        for i in 0..100 {
            b.push_row(&[
                Value::Int(i % 10),
                Value::from(if i % 2 == 0 { "even" } else { "odd" }),
                Value::Float(i as f64 / 2.0),
            ]);
        }
        let t = cat.register(b.finish());
        (cat, t)
    }

    #[test]
    fn distinct_counts_and_ranges() {
        let (_cat, t) = table();
        let s = TableStats::compute(&t);
        assert_eq!(s.rows, 100);
        assert_eq!(s.column(0).distinct, 10);
        assert_eq!(s.column(1).distinct, 2);
        assert_eq!(s.column(2).distinct, 100);
        assert_eq!(s.column(0).min, 0.0);
        assert_eq!(s.column(0).max, 9.0);
        assert_eq!(s.column(2).max, 49.5);
    }

    #[test]
    fn empty_table_stats() {
        let cat = Catalog::new();
        let b = cat.builder("e", schema![("x", Int)]);
        let t = cat.register(b.finish());
        let s = TableStats::compute(&t);
        assert_eq!(s.rows, 0);
        assert_eq!(s.column(0).distinct, 1); // clamped to avoid div-by-zero
        assert_eq!(s.column(0).min, 0.0);
    }

    #[test]
    fn cache_reuses_computation() {
        let (_cat, t) = table();
        let cache = StatsCache::new();
        let a = cache.stats_for(&t);
        let b = cache.stats_for(&t);
        assert!(Arc::ptr_eq(&a, &b));
        cache.clear();
        let c = cache.stats_for(&t);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
