//! Per-table statistics: row counts, per-column distinct counts and ranges.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use skinner_storage::{Column, DataType, Table};

/// Statistics of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub dtype: DataType,
    /// Number of distinct values.
    pub distinct: usize,
    /// Numeric minimum (strings: 0).
    pub min: f64,
    /// Numeric maximum (strings: 0).
    pub max: f64,
}

/// Statistics of one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Scan `table` and compute statistics (one pass per column).
    pub fn compute(table: &Table) -> Self {
        let rows = table.num_rows();
        let columns = table.columns().iter().map(compute_column).collect();
        TableStats { rows, columns }
    }

    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }
}

fn compute_column(c: &Column) -> ColumnStats {
    let mut distinct: HashSet<u64> = HashSet::new();
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let n = c.len() as u32;
    for row in 0..n {
        distinct.insert(c.key_at(row));
        match c.dtype() {
            DataType::Str => {}
            _ => {
                let v = c.float_at(row);
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    if !min.is_finite() {
        min = 0.0;
        max = 0.0;
    }
    ColumnStats {
        dtype: c.dtype(),
        distinct: distinct.len().max(1),
        min,
        max,
    }
}

/// Cache of computed statistics keyed by table identity
/// ([`Table::uid`] — never the `Arc` address, which the allocator can
/// reuse for a different table after a temp table drops).
/// Computing distinct counts scans the data, so the traditional optimizer
/// amortizes it across queries — real systems do the same via `ANALYZE`.
///
/// Entries also hold a `Weak` handle to their table; once a table is
/// dropped (temp-table churn in decomposed-query scripts) its entry is
/// garbage and gets pruned on the next cache miss, so the cache stays
/// bounded by the number of *live* tables.
/// One cache slot: the owning table (weak, for liveness-based pruning)
/// and its computed statistics.
type CacheEntry = (Weak<Table>, Arc<TableStats>);

#[derive(Default)]
pub struct StatsCache {
    map: Mutex<HashMap<u64, CacheEntry>>,
}

impl StatsCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats for `table`, computing on first access.
    pub fn stats_for(&self, table: &Arc<Table>) -> Arc<TableStats> {
        let key = table.uid();
        if let Some((_, s)) = self.map.lock().get(&key) {
            return s.clone();
        }
        let stats = Arc::new(TableStats::compute(table));
        let mut map = self.map.lock();
        map.retain(|_, (t, _)| t.strong_count() > 0);
        map.insert(key, (Arc::downgrade(table), stats.clone()));
        stats
    }

    /// Number of cached entries (live and not-yet-pruned).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Drop all cached entries (tests / reloads).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{schema, Catalog, Value};

    fn table() -> (Catalog, Arc<Table>) {
        let cat = Catalog::new();
        let mut b = cat.builder("t", schema![("k", Int), ("s", Str), ("f", Float)]);
        for i in 0..100 {
            b.push_row(&[
                Value::Int(i % 10),
                Value::from(if i % 2 == 0 { "even" } else { "odd" }),
                Value::Float(i as f64 / 2.0),
            ]);
        }
        let t = cat.register(b.finish());
        (cat, t)
    }

    #[test]
    fn distinct_counts_and_ranges() {
        let (_cat, t) = table();
        let s = TableStats::compute(&t);
        assert_eq!(s.rows, 100);
        assert_eq!(s.column(0).distinct, 10);
        assert_eq!(s.column(1).distinct, 2);
        assert_eq!(s.column(2).distinct, 100);
        assert_eq!(s.column(0).min, 0.0);
        assert_eq!(s.column(0).max, 9.0);
        assert_eq!(s.column(2).max, 49.5);
    }

    #[test]
    fn cache_is_keyed_by_table_uid_not_address() {
        // Regression: temp-table churn used to poison the cache when the
        // allocator reused a dropped table's address for a new table with a
        // different schema (index-out-of-bounds in the estimator).
        let cache = StatsCache::new();
        for round in 0..50 {
            let cat = Catalog::new();
            let ncols = 1 + round % 3;
            let mut fields = Vec::new();
            for c in 0..ncols {
                fields.push(skinner_storage::Field::new(
                    format!("c{c}"),
                    skinner_storage::DataType::Int,
                ));
            }
            let mut b = cat.builder("t", skinner_storage::Schema::new(fields));
            for i in 0..4 {
                b.push_row(&vec![Value::Int(i); ncols]);
            }
            let t = cat.register(b.finish());
            let s = cache.stats_for(&t);
            assert_eq!(
                s.columns.len(),
                ncols,
                "stale stats served in round {round}"
            );
            drop(t);
            cat.drop_table("t");
        }
        // Dead temp tables are pruned on cache misses, so churn cannot
        // grow the cache without bound: only entries inserted since the
        // last miss-triggered prune may linger.
        assert!(
            cache.len() <= 2,
            "cache grew with dropped tables: {} entries",
            cache.len()
        );
    }

    #[test]
    fn table_uids_are_unique() {
        let (_cat, t) = table();
        let filtered = Arc::new(t.gather(&[0, 1], "t_f"));
        assert_ne!(t.uid(), filtered.uid());
    }

    #[test]
    fn empty_table_stats() {
        let cat = Catalog::new();
        let b = cat.builder("e", schema![("x", Int)]);
        let t = cat.register(b.finish());
        let s = TableStats::compute(&t);
        assert_eq!(s.rows, 0);
        assert_eq!(s.column(0).distinct, 1); // clamped to avoid div-by-zero
        assert_eq!(s.column(0).min, 0.0);
    }

    #[test]
    fn cache_reuses_computation() {
        let (_cat, t) = table();
        let cache = StatsCache::new();
        let a = cache.stats_for(&t);
        let b = cache.stats_for(&t);
        assert!(Arc::ptr_eq(&a, &b));
        cache.clear();
        let c = cache.stats_for(&t);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
