//! Named table collections sharing one string interner.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::disk::{DiskError, DiskStore, PAGE_ROWS};
use crate::interner::Interner;
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};

/// Callback invoked with a table's [`uid`](Table::uid) and lowercased name
/// when it leaves the catalog (dropped, or replaced by a same-named
/// registration). Caches keyed by table identity register one to purge
/// eagerly; the name lets caches that also track *persisted* state (whose
/// entries predate this process and carry no live uid) purge by name.
/// Returns whether the observer is still alive; `false` deregisters it —
/// observers that capture weak references outlive their owners by at most
/// one drop.
type DropObserver = Box<dyn Fn(u64, &str) -> bool + Send + Sync>;

/// A catalog of tables. All tables in a catalog share one [`Interner`], which
/// makes string comparisons across tables code comparisons.
#[derive(Default)]
pub struct Catalog {
    interner: Arc<Interner>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    drop_observers: RwLock<Vec<DropObserver>>,
    /// Attached persistent store, if any (see [`Catalog::attach_disk`]).
    disk: RwLock<Option<Arc<DiskStore>>>,
    /// uid → persistent name for every catalog table whose current
    /// incarnation is backed by a committed segment. The disk drop
    /// observer consults this to decide whether leaving the catalog means
    /// deleting files; persist/replace flows edit it *before* registering
    /// so a fresh segment is never mistaken for a stale one.
    persistent: Arc<RwLock<HashMap<u64, String>>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("drop_observers", &self.drop_observers.read().len())
            .finish()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a callback run (outside the table-map lock) with the uid
    /// and lowercased name of every table that leaves the catalog — via
    /// [`Catalog::drop_table`] or by being replaced under its name in
    /// [`Catalog::register`]. This is the one choke point for uid-keyed
    /// caches to purge through, so no drop path can bypass them.
    ///
    /// The callback returns whether it is still alive: return `false`
    /// (e.g. when a captured `Weak` no longer upgrades) and it is removed
    /// — long-lived catalogs shared by many short-lived owners do not
    /// accumulate dead observers. Callbacks run under the observer-list
    /// lock and must not register/drop tables themselves.
    pub fn on_table_drop(&self, observer: impl Fn(u64, &str) -> bool + Send + Sync + 'static) {
        self.drop_observers.write().push(Box::new(observer));
    }

    fn notify_dropped(&self, uid: u64, name: &str) {
        self.drop_observers
            .write()
            .retain(|observer| observer(uid, name));
    }

    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Start building a table registered under `name` when finished via
    /// [`Catalog::register`].
    pub fn builder(&self, name: impl Into<String>, schema: Schema) -> TableBuilder {
        TableBuilder::new(name, schema, self.interner.clone())
    }

    /// Register (or replace) a table. Names are case-insensitive. A
    /// replaced table counts as dropped for [`Catalog::on_table_drop`]
    /// observers.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        let key = arc.name().to_ascii_lowercase();
        let replaced = self.tables.write().insert(key.clone(), arc.clone());
        if let Some(old) = replaced {
            self.notify_dropped(old.uid(), &key);
        }
        arc
    }

    /// Fetch a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Remove a table (used for temp tables of decomposed queries).
    /// Notifies [`Catalog::on_table_drop`] observers.
    pub fn drop_table(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        let removed = self.tables.write().remove(&key);
        match removed {
            Some(t) => {
                self.notify_dropped(t.uid(), &key);
                true
            }
            None => false,
        }
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Attach a persistent data directory: open (or create) the
    /// [`DiskStore`] at `dir`, decode every committed table into the
    /// catalog, and install the drop observer that deletes a persistent
    /// table's segment and manifest entry when it leaves the catalog —
    /// whether via [`Catalog::drop_table`] or by being replaced under its
    /// name. Returns the names of the tables loaded, sorted.
    ///
    /// At most one directory can be attached per catalog.
    pub fn attach_disk(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Vec<String>, DiskError> {
        let store = DiskStore::open(dir)?;
        {
            let mut slot = self.disk.write();
            if let Some(old) = slot.as_ref() {
                return Err(DiskError::AlreadyAttached(old.dir().display().to_string()));
            }
            *slot = Some(store.clone());
        }
        // The observer holds only weak handles: when the catalog (and with
        // it the store and uid map) goes away, it reports itself dead.
        let store_weak = Arc::downgrade(&store);
        let persistent_weak = Arc::downgrade(&self.persistent);
        self.on_table_drop(move |uid, _name| {
            let (Some(store), Some(persistent)) = (store_weak.upgrade(), persistent_weak.upgrade())
            else {
                return false;
            };
            if let Some(name) = persistent.write().remove(&uid) {
                // Best effort: a failed delete leaves an orphan that the
                // next open cleans up; it must not poison the drop path.
                let _ = store.remove_table(&name);
            }
            true
        });
        let names = store.table_names();
        for name in &names {
            let opened = store.load_table(name, &self.interner)?;
            self.persistent
                .write()
                .insert(opened.table.uid(), name.clone());
            self.register(opened.table);
        }
        Ok(names)
    }

    /// The attached persistent store, if any.
    pub fn disk_store(&self) -> Option<Arc<DiskStore>> {
        self.disk.read().clone()
    }

    /// Whether the current incarnation of `name` is backed by a committed
    /// segment.
    pub fn is_persistent(&self, name: &str) -> bool {
        match self.get(name) {
            Some(t) => self.persistent.read().contains_key(&t.uid()),
            None => false,
        }
    }

    /// Write the in-memory table `name` to the attached data directory and
    /// swap in the decoded, zone-mapped copy. Returns the committed row
    /// count.
    pub fn persist_table(&self, name: &str) -> Result<u64, DiskError> {
        let store = self.disk_store().ok_or(DiskError::NoDataDir)?;
        let table = self
            .get(name)
            .ok_or_else(|| DiskError::NotFound(name.to_string()))?;
        let rows = store.save_table(&table)?;
        let opened = store.load_table(table.name(), &self.interner)?;
        self.swap_in_persistent(opened.table);
        Ok(rows)
    }

    /// Bulk-load a CSV straight into the attached data directory as table
    /// `name` (see [`crate::disk::bulk_load_csv`]) and open it in the
    /// catalog. Returns the registered table.
    pub fn bulk_load_csv(
        &self,
        name: &str,
        reader: impl std::io::BufRead,
        schema: Option<Schema>,
    ) -> Result<Arc<Table>, DiskError> {
        let store = self.disk_store().ok_or(DiskError::NoDataDir)?;
        crate::disk::loader::bulk_load_csv(&store, name, reader, schema, PAGE_ROWS)?;
        let opened = store.load_table(name, &self.interner)?;
        Ok(self.swap_in_persistent(opened.table))
    }

    /// Register a freshly decoded persistent table, retiring any previous
    /// uid recorded under its name. The map edit happens before
    /// [`Catalog::register`] so the replacement notification for the old
    /// incarnation cannot delete the segment that now backs the new one.
    fn swap_in_persistent(&self, table: Table) -> Arc<Table> {
        let key = table.name().to_ascii_lowercase();
        {
            let mut persistent = self.persistent.write();
            persistent.retain(|_, n| *n != key);
            persistent.insert(table.uid(), key);
        }
        self.register(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::value::Value;

    #[test]
    fn register_and_lookup_case_insensitive() {
        let cat = Catalog::new();
        let mut b = cat.builder("Users", schema![("id", Int)]);
        b.push_row(&[Value::Int(1)]);
        cat.register(b.finish());
        assert!(cat.get("users").is_some());
        assert!(cat.get("USERS").is_some());
        assert!(cat.get("nope").is_none());
    }

    #[test]
    fn tables_share_interner() {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("s", Str)]);
        a.push_row(&[Value::from("shared")]);
        let a = cat.register(a.finish());
        let mut b = cat.builder("b", schema![("s", Str)]);
        b.push_row(&[Value::from("shared")]);
        let b = cat.register(b.finish());
        assert_eq!(a.column(0).code_at(0), b.column(0).code_at(0));
    }

    #[test]
    fn drop_table_removes() {
        let cat = Catalog::new();
        let b = cat.builder("tmp", schema![("id", Int)]);
        cat.register(b.finish());
        assert!(cat.drop_table("TMP"));
        assert!(cat.get("tmp").is_none());
        assert!(!cat.drop_table("tmp"));
    }

    #[test]
    fn drop_observers_see_drops_and_replacements() {
        use parking_lot::Mutex;
        use std::sync::atomic::{AtomicU64, Ordering};
        let cat = Catalog::new();
        let dropped = Arc::new(AtomicU64::new(u64::MAX));
        let named = Arc::new(Mutex::new(String::new()));
        let count = Arc::new(AtomicU64::new(0));
        {
            let (dropped, named, count) = (dropped.clone(), named.clone(), count.clone());
            cat.on_table_drop(move |uid, name| {
                dropped.store(uid, Ordering::Relaxed);
                *named.lock() = name.to_string();
                count.fetch_add(1, Ordering::Relaxed);
                true
            });
        }
        let t = cat.register(cat.builder("T", schema![("id", Int)]).finish());
        assert_eq!(count.load(Ordering::Relaxed), 0, "fresh register is silent");
        // Replacement under the same name notifies with the OLD uid and
        // the lowercased name.
        let old_uid = t.uid();
        cat.register(cat.builder("t", schema![("id", Int)]).finish());
        assert_eq!(dropped.load(Ordering::Relaxed), old_uid);
        assert_eq!(*named.lock(), "t");
        // Explicit drop notifies with the current uid.
        let cur = cat.get("t").unwrap().uid();
        assert!(cat.drop_table("t"));
        assert_eq!(dropped.load(Ordering::Relaxed), cur);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        // Dropping a missing table stays silent.
        assert!(!cat.drop_table("t"));
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dead_observers_self_deregister() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cat = Catalog::new();
        // An owner that goes away: the observer holds only a Weak and
        // asks to be removed once its owner is gone.
        let owner = Arc::new(AtomicU64::new(u64::MAX));
        {
            let weak = Arc::downgrade(&owner);
            cat.on_table_drop(move |uid, _name| match weak.upgrade() {
                Some(o) => {
                    o.store(uid, Ordering::Relaxed);
                    true
                }
                None => false,
            });
        }
        let t = cat.register(cat.builder("t", schema![("id", Int)]).finish());
        let uid = t.uid();
        assert!(cat.drop_table("t"));
        assert_eq!(owner.load(Ordering::Relaxed), uid, "live observer fired");
        drop(owner);
        assert_eq!(cat.drop_observers.read().len(), 1);
        cat.register(cat.builder("t", schema![("id", Int)]).finish());
        assert!(cat.drop_table("t"));
        assert_eq!(
            cat.drop_observers.read().len(),
            0,
            "dead observer removed on the next drop"
        );
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("skinner_cat_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn seg_files(dir: &std::path::Path) -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().to_str().unwrap().to_string();
                n.ends_with(".seg").then_some(n)
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn persist_reload_drop_cycle() {
        let dir = tmp_dir("cycle");
        {
            let cat = Catalog::new();
            cat.attach_disk(&dir).unwrap();
            let mut b = cat.builder("t", schema![("id", Int), ("tag", Str)]);
            b.push_row(&[Value::Int(1), Value::from("x")]);
            b.push_row(&[Value::Int(2), Value::from("y")]);
            cat.register(b.finish());
            assert!(!cat.is_persistent("t"));
            assert_eq!(cat.persist_table("t").unwrap(), 2);
            assert!(cat.is_persistent("t"));
            // The swapped-in copy is the decoded segment: zones attached.
            assert!(cat.get("t").unwrap().zones().is_some());
        }
        // Fresh catalog, same dir: table comes back with identical data.
        let cat = Catalog::new();
        assert_eq!(cat.attach_disk(&dir).unwrap(), vec!["t"]);
        let t = cat.get("t").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, 1).as_str(), Some("y"));
        // Dropping the persistent table removes its files + manifest entry.
        assert_eq!(seg_files(&dir).len(), 1);
        assert!(cat.drop_table("t"));
        assert!(seg_files(&dir).is_empty(), "segment file must be deleted");
        assert!(cat.disk_store().unwrap().table_names().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn churn_leaves_no_orphan_segments() {
        let dir = tmp_dir("churn");
        let cat = Catalog::new();
        cat.attach_disk(&dir).unwrap();
        // Create/persist/replace/drop the same name repeatedly; at every
        // point at most one segment file may exist for it.
        for round in 0..5 {
            let mut b = cat.builder("churny", schema![("id", Int)]);
            for i in 0..=round {
                b.push_row(&[Value::Int(i)]);
            }
            cat.register(b.finish());
            cat.persist_table("churny").unwrap();
            assert_eq!(seg_files(&dir).len(), 1, "round {round}");
        }
        // Replacing a persistent table with a plain in-memory one must
        // delete the on-disk incarnation (it left the catalog).
        let b = cat.builder("churny", schema![("id", Int)]);
        cat.register(b.finish());
        assert!(seg_files(&dir).is_empty(), "replace must delete segments");
        assert!(!cat.is_persistent("churny"));
        assert!(cat.disk_store().unwrap().table_names().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bulk_load_registers_zoned_table() {
        let dir = tmp_dir("bulk");
        let cat = Catalog::new();
        cat.attach_disk(&dir).unwrap();
        let t = cat
            .bulk_load_csv(
                "m",
                std::io::BufReader::new("id,tag\n1,a\n2,b\n3,a\n".as_bytes()),
                None,
            )
            .unwrap();
        assert_eq!(t.num_rows(), 3);
        assert!(t.zones().is_some());
        assert!(cat.is_persistent("m"));
        // Strings went through the catalog interner.
        assert_eq!(cat.interner().lookup("a"), Some(t.column(1).code_at(0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistence_errors() {
        let cat = Catalog::new();
        assert!(matches!(cat.persist_table("t"), Err(DiskError::NoDataDir)));
        let dir = tmp_dir("errs");
        cat.attach_disk(&dir).unwrap();
        assert!(matches!(
            cat.attach_disk(&dir),
            Err(DiskError::AlreadyAttached(_))
        ));
        assert!(matches!(
            cat.persist_table("missing"),
            Err(DiskError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            let b = cat.builder(n, schema![("id", Int)]);
            cat.register(b.finish());
        }
        assert_eq!(cat.table_names(), vec!["alpha", "mid", "zeta"]);
    }
}
