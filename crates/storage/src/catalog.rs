//! Named table collections sharing one string interner.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::interner::Interner;
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};

/// Callback invoked with a table's [`uid`](Table::uid) when it leaves the
/// catalog (dropped, or replaced by a same-named registration). Caches
/// keyed by table identity register one to purge eagerly. Returns whether
/// the observer is still alive; `false` deregisters it — observers that
/// capture weak references outlive their owners by at most one drop.
type DropObserver = Box<dyn Fn(u64) -> bool + Send + Sync>;

/// A catalog of tables. All tables in a catalog share one [`Interner`], which
/// makes string comparisons across tables code comparisons.
#[derive(Default)]
pub struct Catalog {
    interner: Arc<Interner>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    drop_observers: RwLock<Vec<DropObserver>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("drop_observers", &self.drop_observers.read().len())
            .finish()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a callback run (outside the table-map lock) with the uid
    /// of every table that leaves the catalog — via
    /// [`Catalog::drop_table`] or by being replaced under its name in
    /// [`Catalog::register`]. This is the one choke point for uid-keyed
    /// caches to purge through, so no drop path can bypass them.
    ///
    /// The callback returns whether it is still alive: return `false`
    /// (e.g. when a captured `Weak` no longer upgrades) and it is removed
    /// — long-lived catalogs shared by many short-lived owners do not
    /// accumulate dead observers. Callbacks run under the observer-list
    /// lock and must not register/drop tables themselves.
    pub fn on_table_drop(&self, observer: impl Fn(u64) -> bool + Send + Sync + 'static) {
        self.drop_observers.write().push(Box::new(observer));
    }

    fn notify_dropped(&self, uid: u64) {
        self.drop_observers.write().retain(|observer| observer(uid));
    }

    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Start building a table registered under `name` when finished via
    /// [`Catalog::register`].
    pub fn builder(&self, name: impl Into<String>, schema: Schema) -> TableBuilder {
        TableBuilder::new(name, schema, self.interner.clone())
    }

    /// Register (or replace) a table. Names are case-insensitive. A
    /// replaced table counts as dropped for [`Catalog::on_table_drop`]
    /// observers.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        let replaced = self
            .tables
            .write()
            .insert(arc.name().to_ascii_lowercase(), arc.clone());
        if let Some(old) = replaced {
            self.notify_dropped(old.uid());
        }
        arc
    }

    /// Fetch a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Remove a table (used for temp tables of decomposed queries).
    /// Notifies [`Catalog::on_table_drop`] observers.
    pub fn drop_table(&self, name: &str) -> bool {
        let removed = self.tables.write().remove(&name.to_ascii_lowercase());
        match removed {
            Some(t) => {
                self.notify_dropped(t.uid());
                true
            }
            None => false,
        }
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::value::Value;

    #[test]
    fn register_and_lookup_case_insensitive() {
        let cat = Catalog::new();
        let mut b = cat.builder("Users", schema![("id", Int)]);
        b.push_row(&[Value::Int(1)]);
        cat.register(b.finish());
        assert!(cat.get("users").is_some());
        assert!(cat.get("USERS").is_some());
        assert!(cat.get("nope").is_none());
    }

    #[test]
    fn tables_share_interner() {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("s", Str)]);
        a.push_row(&[Value::from("shared")]);
        let a = cat.register(a.finish());
        let mut b = cat.builder("b", schema![("s", Str)]);
        b.push_row(&[Value::from("shared")]);
        let b = cat.register(b.finish());
        assert_eq!(a.column(0).code_at(0), b.column(0).code_at(0));
    }

    #[test]
    fn drop_table_removes() {
        let cat = Catalog::new();
        let b = cat.builder("tmp", schema![("id", Int)]);
        cat.register(b.finish());
        assert!(cat.drop_table("TMP"));
        assert!(cat.get("tmp").is_none());
        assert!(!cat.drop_table("tmp"));
    }

    #[test]
    fn drop_observers_see_drops_and_replacements() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cat = Catalog::new();
        let dropped = Arc::new(AtomicU64::new(u64::MAX));
        let count = Arc::new(AtomicU64::new(0));
        {
            let (dropped, count) = (dropped.clone(), count.clone());
            cat.on_table_drop(move |uid| {
                dropped.store(uid, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
                true
            });
        }
        let t = cat.register(cat.builder("t", schema![("id", Int)]).finish());
        assert_eq!(count.load(Ordering::Relaxed), 0, "fresh register is silent");
        // Replacement under the same name notifies with the OLD uid.
        let old_uid = t.uid();
        cat.register(cat.builder("t", schema![("id", Int)]).finish());
        assert_eq!(dropped.load(Ordering::Relaxed), old_uid);
        // Explicit drop notifies with the current uid.
        let cur = cat.get("t").unwrap().uid();
        assert!(cat.drop_table("t"));
        assert_eq!(dropped.load(Ordering::Relaxed), cur);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        // Dropping a missing table stays silent.
        assert!(!cat.drop_table("t"));
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dead_observers_self_deregister() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cat = Catalog::new();
        // An owner that goes away: the observer holds only a Weak and
        // asks to be removed once its owner is gone.
        let owner = Arc::new(AtomicU64::new(u64::MAX));
        {
            let weak = Arc::downgrade(&owner);
            cat.on_table_drop(move |uid| match weak.upgrade() {
                Some(o) => {
                    o.store(uid, Ordering::Relaxed);
                    true
                }
                None => false,
            });
        }
        let t = cat.register(cat.builder("t", schema![("id", Int)]).finish());
        let uid = t.uid();
        assert!(cat.drop_table("t"));
        assert_eq!(owner.load(Ordering::Relaxed), uid, "live observer fired");
        drop(owner);
        assert_eq!(cat.drop_observers.read().len(), 1);
        cat.register(cat.builder("t", schema![("id", Int)]).finish());
        assert!(cat.drop_table("t"));
        assert_eq!(
            cat.drop_observers.read().len(),
            0,
            "dead observer removed on the next drop"
        );
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            let b = cat.builder(n, schema![("id", Int)]);
            cat.register(b.finish());
        }
        assert_eq!(cat.table_names(), vec!["alpha", "mid", "zeta"]);
    }
}
