//! Named table collections sharing one string interner.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::interner::Interner;
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};

/// A catalog of tables. All tables in a catalog share one [`Interner`], which
/// makes string comparisons across tables code comparisons.
#[derive(Debug, Default)]
pub struct Catalog {
    interner: Arc<Interner>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            interner: Arc::new(Interner::new()),
            tables: RwLock::new(HashMap::new()),
        }
    }

    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Start building a table registered under `name` when finished via
    /// [`Catalog::register`].
    pub fn builder(&self, name: impl Into<String>, schema: Schema) -> TableBuilder {
        TableBuilder::new(name, schema, self.interner.clone())
    }

    /// Register (or replace) a table. Names are case-insensitive.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        self.tables
            .write()
            .insert(arc.name().to_ascii_lowercase(), arc.clone());
        arc
    }

    /// Fetch a table by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Remove a table (used for temp tables of decomposed queries).
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some()
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::value::Value;

    #[test]
    fn register_and_lookup_case_insensitive() {
        let cat = Catalog::new();
        let mut b = cat.builder("Users", schema![("id", Int)]);
        b.push_row(&[Value::Int(1)]);
        cat.register(b.finish());
        assert!(cat.get("users").is_some());
        assert!(cat.get("USERS").is_some());
        assert!(cat.get("nope").is_none());
    }

    #[test]
    fn tables_share_interner() {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("s", Str)]);
        a.push_row(&[Value::from("shared")]);
        let a = cat.register(a.finish());
        let mut b = cat.builder("b", schema![("s", Str)]);
        b.push_row(&[Value::from("shared")]);
        let b = cat.register(b.finish());
        assert_eq!(a.column(0).code_at(0), b.column(0).code_at(0));
    }

    #[test]
    fn drop_table_removes() {
        let cat = Catalog::new();
        let b = cat.builder("tmp", schema![("id", Int)]);
        cat.register(b.finish());
        assert!(cat.drop_table("TMP"));
        assert!(cat.get("tmp").is_none());
        assert!(!cat.drop_table("tmp"));
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            let b = cat.builder(n, schema![("id", Int)]);
            cat.register(b.finish());
        }
        assert_eq!(cat.table_names(), vec!["alpha", "mid", "zeta"]);
    }
}
