//! Typed columns.
//!
//! Columns own plain `Vec`s of primitive data; string columns hold `u32`
//! interner codes. All engines read column data through these accessors, and
//! the hot paths (`int_at`, `code_at`, `key_at`) are trivial loads.

use crate::interner::Interner;
use crate::value::{DataType, Value};
use crate::RowId;

/// A typed column of `len` rows.
#[derive(Debug, Clone)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Interner codes; the owning [`crate::Table`] knows the interner.
    Str(Vec<u32>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Integer at `row`; panics if the column is not `Int` (engine bug).
    #[inline]
    pub fn int_at(&self, row: RowId) -> i64 {
        match self {
            Column::Int(v) => v[row as usize],
            _ => panic!("int_at on non-int column"),
        }
    }

    /// Float at `row` with int widening; panics on string columns.
    #[inline]
    pub fn float_at(&self, row: RowId) -> f64 {
        match self {
            Column::Float(v) => v[row as usize],
            Column::Int(v) => v[row as usize] as f64,
            Column::Str(_) => panic!("float_at on string column"),
        }
    }

    /// Interner code at `row`; panics if the column is not `Str`.
    #[inline]
    pub fn code_at(&self, row: RowId) -> u32 {
        match self {
            Column::Str(v) => v[row as usize],
            _ => panic!("code_at on non-string column"),
        }
    }

    /// Canonical 64-bit equality key for hash indexes and equi-joins.
    ///
    /// Two rows of *same-typed* columns of the same catalog have equal keys
    /// iff the values are SQL-equal. (-0.0 normalizes to 0.0; the binder
    /// requires matching types on the two sides of an equality join.)
    #[inline]
    pub fn key_at(&self, row: RowId) -> u64 {
        match self {
            Column::Int(v) => v[row as usize] as u64,
            Column::Float(v) => {
                let f = v[row as usize];
                let f = if f == 0.0 { 0.0 } else { f };
                f.to_bits()
            }
            Column::Str(v) => v[row as usize] as u64,
        }
    }

    /// Materialize the value at `row`.
    pub fn value_at(&self, row: RowId, interner: &Interner) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row as usize]),
            Column::Float(v) => Value::Float(v[row as usize]),
            Column::Str(v) => Value::Str(interner.resolve(v[row as usize])),
        }
    }

    /// New column containing `rows` of `self`, in order. Used to materialize
    /// the filtered base tables produced by pre-processing.
    pub fn gather(&self, rows: &[RowId]) -> Column {
        match self {
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Str(v) => Column::Str(rows.iter().map(|&r| v[r as usize]).collect()),
        }
    }

    /// Approximate heap size in bytes (for the Figure 8 memory experiment).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Str(v) => v.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_access() {
        let c = Column::Int(vec![5, 6, 7]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.int_at(1), 6);
        assert_eq!(c.float_at(2), 7.0);
        assert_eq!(c.dtype(), DataType::Int);
    }

    #[test]
    fn keys_match_equality() {
        let c = Column::Float(vec![0.0, -0.0, 1.5]);
        assert_eq!(c.key_at(0), c.key_at(1)); // -0.0 == 0.0
        assert_ne!(c.key_at(0), c.key_at(2));
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let c = Column::Int(vec![10, 20, 30]);
        let g = c.gather(&[2, 0, 2]);
        match g {
            Column::Int(v) => assert_eq!(v, vec![30, 10, 30]),
            _ => panic!(),
        }
    }

    #[test]
    fn value_materialization_resolves_strings() {
        let interner = Interner::new();
        let a = interner.intern("x");
        let c = Column::Str(vec![a]);
        let v = c.value_at(0, &interner);
        assert_eq!(v.as_str(), Some("x"));
    }

    #[test]
    #[should_panic]
    fn int_at_wrong_type_panics() {
        Column::Str(vec![0]).int_at(0);
    }
}
