//! Minimal CSV ingestion (dependency-free).
//!
//! Enough to load external data sets into a [`crate::Catalog`]: a header
//! line, comma separation, double-quote escaping (`""` inside quoted
//! fields), optional type inference. Not a general CSV implementation —
//! embedded newlines inside quoted fields are supported, `\r\n` is
//! normalized, but exotic dialects are out of scope.

use std::fmt;
use std::io::BufRead;
use std::sync::Arc;

use crate::schema::{Field, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::DataType;
use crate::Interner;

/// CSV ingestion errors.
#[derive(Debug)]
pub enum CsvError {
    Io(std::io::Error),
    /// Row has a different arity than the header.
    Ragged {
        line: usize,
        expected: usize,
        found: usize,
    },
    /// A cell failed to parse under the (given or inferred) column type.
    BadCell {
        line: usize,
        column: String,
        value: String,
        expected: DataType,
    },
    /// Input had no header line.
    Empty,
    /// Unterminated quoted field.
    UnterminatedQuote {
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Ragged {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            CsvError::BadCell {
                line,
                column,
                value,
                expected,
            } => write!(
                f,
                "line {line}, column {column:?}: {value:?} is not a valid {expected}"
            ),
            CsvError::Empty => write!(f, "empty csv input (missing header)"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse one CSV record (handles quotes; `start_line` is for errors only).
/// Shared with the disk bulk loader.
pub(crate) fn split_record(line: &str, start_line: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: start_line });
    }
    fields.push(cur);
    Ok(fields)
}

/// Infer the narrowest type that parses every sample: Int ⊂ Float ⊂ Str.
/// Shared with the disk bulk loader.
pub(crate) fn infer_type(samples: &[&str]) -> DataType {
    let mut ty = DataType::Int;
    for s in samples {
        match ty {
            DataType::Int => {
                if s.parse::<i64>().is_err() {
                    ty = if s.parse::<f64>().is_ok() {
                        DataType::Float
                    } else {
                        DataType::Str
                    };
                }
            }
            DataType::Float => {
                if s.parse::<f64>().is_err() {
                    ty = DataType::Str;
                }
            }
            DataType::Str => return DataType::Str,
        }
    }
    ty
}

fn bad_cell(raw: &str, dt: DataType, line: usize, column: &str) -> CsvError {
    CsvError::BadCell {
        line,
        column: column.to_string(),
        value: raw.to_string(),
        expected: dt,
    }
}

/// Read a CSV (header required) into a [`Table`].
///
/// With `schema: None`, column types are inferred from the data (narrowest
/// of Int/Float/Str that parses every cell — two passes over the input,
/// which is therefore buffered).
pub fn read_csv(
    name: &str,
    reader: impl BufRead,
    schema: Option<Schema>,
    interner: Arc<Interner>,
) -> Result<Table, CsvError> {
    let mut lines = Vec::new();
    for l in reader.lines() {
        lines.push(l?);
    }
    let mut it = lines.iter().enumerate();
    let (_, header_line) = it.next().ok_or(CsvError::Empty)?;
    let header = split_record(header_line, 1)?;
    let ncols = header.len();

    // Collect raw records first (needed for inference anyway).
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    for (i, l) in it {
        if l.trim().is_empty() {
            continue;
        }
        let rec = split_record(l, i + 1)?;
        if rec.len() != ncols {
            return Err(CsvError::Ragged {
                line: i + 1,
                expected: ncols,
                found: rec.len(),
            });
        }
        records.push((i + 1, rec));
    }

    let schema = match schema {
        Some(s) => {
            assert_eq!(s.len(), ncols, "schema arity must match the header");
            s
        }
        None => {
            let fields: Vec<Field> = header
                .iter()
                .enumerate()
                .map(|(c, name)| {
                    let samples: Vec<&str> = records.iter().map(|(_, r)| r[c].as_str()).collect();
                    Field::new(name.trim(), infer_type(&samples))
                })
                .collect();
            Schema::new(fields)
        }
    };

    // Fill the builder column-major through its typed fast paths: one tight
    // parse loop per column, no per-cell `Value` boxing (string cells went
    // through an `Arc<str>` allocation each in the old row-at-a-time path).
    let mut b = TableBuilder::new(name, schema.clone(), interner);
    for (c, f) in schema.fields().iter().enumerate() {
        match f.dtype {
            DataType::Int => {
                for (line, rec) in &records {
                    let raw = &rec[c];
                    let v = raw
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| bad_cell(raw, f.dtype, *line, &f.name))?;
                    b.push_int(c, v);
                }
            }
            DataType::Float => {
                for (line, rec) in &records {
                    let raw = &rec[c];
                    let v = raw
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad_cell(raw, f.dtype, *line, &f.name))?;
                    b.push_float(c, v);
                }
            }
            DataType::Str => {
                for (_, rec) in &records {
                    b.push_str(c, &rec[c]);
                }
            }
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn load(csv: &str) -> Result<Table, CsvError> {
        read_csv(
            "t",
            std::io::BufReader::new(csv.as_bytes()),
            None,
            Arc::new(Interner::new()),
        )
    }

    #[test]
    fn inference_picks_narrowest_types() {
        let t = load("id,score,name\n1,2.5,ann\n2,3,bob\n").unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Int);
        assert_eq!(t.schema().field(1).dtype, DataType::Float);
        assert_eq!(t.schema().field(2).dtype, DataType::Str);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, 1), Value::Float(3.0));
    }

    #[test]
    fn quotes_and_escapes() {
        let t = load("a,b\n\"hello, world\",\"she said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.value(0, 0).as_str(), Some("hello, world"));
        assert_eq!(t.value(0, 1).as_str(), Some("she said \"hi\""));
    }

    #[test]
    fn explicit_schema_enforced() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let r = read_csv(
            "t",
            std::io::BufReader::new("id,v\n1,notanumber\n".as_bytes()),
            Some(schema),
            Arc::new(Interner::new()),
        );
        assert!(matches!(r, Err(CsvError::BadCell { line: 2, .. })));
    }

    #[test]
    fn ragged_rows_rejected() {
        let r = load("a,b\n1\n");
        assert!(matches!(
            r,
            Err(CsvError::Ragged {
                line: 2,
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn empty_input_and_blank_lines() {
        assert!(matches!(load(""), Err(CsvError::Empty)));
        let t = load("a\n1\n\n2\n").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(
            load("a\n\"oops\n"),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn all_string_column_with_numeric_lookalikes() {
        let t = load("code\n007\nabc\n").unwrap();
        // "007" parses as Int but "abc" forces Str for the whole column.
        assert_eq!(t.schema().field(0).dtype, DataType::Str);
        assert_eq!(t.value(0, 0).as_str(), Some("007"));
    }
}
