//! Streaming bulk CSV ingestion into a [`DiskStore`].
//!
//! Unlike [`crate::read_csv`], which materializes a full in-memory table,
//! the bulk loader parses each record straight into the [`SegmentWriter`]'s
//! typed page buffers — no per-cell [`crate::Value`] allocation, and with
//! an explicit schema no buffering of the input at all: memory stays
//! bounded by one page per column regardless of file size. With
//! `schema: None` the records are buffered once for type inference (the
//! same Int ⊂ Float ⊂ Str lattice as the in-memory path) and then streamed
//! out of the buffer.

use std::io::BufRead;

use crate::csv::{infer_type, split_record, CsvError};
use crate::disk::manifest::DiskStore;
use crate::disk::segment::SegmentWriter;
use crate::disk::DiskError;
use crate::schema::{Field, Schema};
use crate::value::DataType;

fn bad_cell(raw: &str, dt: DataType, line: usize, column: &str) -> DiskError {
    DiskError::Csv(CsvError::BadCell {
        line,
        column: column.to_string(),
        value: raw.to_string(),
        expected: dt,
    })
}

/// Parse one cell directly into the writer's typed buffer for column `col`.
fn push_cell(
    w: &mut SegmentWriter,
    col: usize,
    raw: &str,
    dt: DataType,
    line: usize,
    column: &str,
) -> Result<(), DiskError> {
    match dt {
        DataType::Int => {
            let v = raw
                .trim()
                .parse::<i64>()
                .map_err(|_| bad_cell(raw, dt, line, column))?;
            w.push_int(col, v);
        }
        DataType::Float => {
            let v = raw
                .trim()
                .parse::<f64>()
                .map_err(|_| bad_cell(raw, dt, line, column))?;
            w.push_float(col, v);
        }
        DataType::Str => w.push_str(col, raw),
    }
    Ok(())
}

/// Bulk-load a CSV (header required) as the persistent table `name` in
/// `store`, committing atomically. Returns the committed row count.
///
/// `page_rows` sets the segment page size (use
/// [`crate::disk::PAGE_ROWS`] unless testing page boundaries).
pub fn bulk_load_csv(
    store: &DiskStore,
    name: &str,
    reader: impl BufRead,
    schema: Option<Schema>,
    page_rows: usize,
) -> Result<u64, DiskError> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, line)) => split_record(&line?, 1).map_err(DiskError::Csv)?,
        None => return Err(DiskError::Csv(CsvError::Empty)),
    };
    let ncols = header.len();

    match schema {
        Some(schema) => {
            assert_eq!(schema.len(), ncols, "schema arity must match the header");
            // True streaming: each record goes straight to page buffers.
            store.create_table_with(name, schema.clone(), page_rows, move |w| {
                for (i, line) in lines {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    let lineno = i + 1;
                    let rec = split_record(&line, lineno).map_err(DiskError::Csv)?;
                    if rec.len() != ncols {
                        return Err(DiskError::Csv(CsvError::Ragged {
                            line: lineno,
                            expected: ncols,
                            found: rec.len(),
                        }));
                    }
                    for (c, raw) in rec.iter().enumerate() {
                        let f = schema.field(c);
                        push_cell(w, c, raw, f.dtype, lineno, &f.name)?;
                    }
                    w.end_row()?;
                }
                Ok(())
            })
        }
        None => {
            // Inference needs every cell once; buffer records, then stream.
            let mut records: Vec<(usize, Vec<String>)> = Vec::new();
            for (i, line) in lines {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let lineno = i + 1;
                let rec = split_record(&line, lineno).map_err(DiskError::Csv)?;
                if rec.len() != ncols {
                    return Err(DiskError::Csv(CsvError::Ragged {
                        line: lineno,
                        expected: ncols,
                        found: rec.len(),
                    }));
                }
                records.push((lineno, rec));
            }
            let fields: Vec<Field> = header
                .iter()
                .enumerate()
                .map(|(c, name)| {
                    let samples: Vec<&str> = records.iter().map(|(_, r)| r[c].as_str()).collect();
                    Field::new(name.trim(), infer_type(&samples))
                })
                .collect();
            let schema = Schema::new(fields);
            store.create_table_with(name, schema.clone(), page_rows, move |w| {
                for (lineno, rec) in &records {
                    for (c, raw) in rec.iter().enumerate() {
                        let f = schema.field(c);
                        push_cell(w, c, raw, f.dtype, *lineno, &f.name)?;
                    }
                    w.end_row()?;
                }
                Ok(())
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::schema;
    use crate::value::Value;
    use std::sync::Arc;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("skinner_loader_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn streams_with_explicit_schema() {
        let dir = tmp_dir("explicit");
        let store = DiskStore::open(&dir).unwrap();
        let mut csv = String::from("id,score,tag\n");
        for i in 0..100 {
            csv.push_str(&format!("{i},{}.5,t{}\n", i, i % 3));
        }
        let rows = bulk_load_csv(
            &store,
            "m",
            std::io::BufReader::new(csv.as_bytes()),
            Some(schema![("id", Int), ("score", Float), ("tag", Str)]),
            16,
        )
        .unwrap();
        assert_eq!(rows, 100);
        let interner = Arc::new(Interner::new());
        let t = store.load_table("m", &interner).unwrap().table;
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.value(42, 0), Value::Int(42));
        assert_eq!(t.value(42, 1), Value::Float(42.5));
        assert_eq!(t.value(42, 2).as_str(), Some("t0"));
        assert_eq!(t.zones().unwrap().npages(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn infers_schema_like_the_memory_path() {
        let dir = tmp_dir("infer");
        let store = DiskStore::open(&dir).unwrap();
        bulk_load_csv(
            &store,
            "n",
            std::io::BufReader::new("a,b,c\n1,2.5,x\n2,3,y\n".as_bytes()),
            None,
            8,
        )
        .unwrap();
        let interner = Arc::new(Interner::new());
        let t = store.load_table("n", &interner).unwrap().table;
        assert_eq!(t.schema().field(0).dtype, DataType::Int);
        assert_eq!(t.schema().field(1).dtype, DataType::Float);
        assert_eq!(t.schema().field(2).dtype, DataType::Str);
        assert_eq!(t.value(1, 1), Value::Float(3.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_cell_aborts_without_commit() {
        let dir = tmp_dir("badcell");
        let store = DiskStore::open(&dir).unwrap();
        let r = bulk_load_csv(
            &store,
            "t",
            std::io::BufReader::new("id\n1\nnope\n".as_bytes()),
            Some(schema![("id", Int)]),
            8,
        );
        assert!(matches!(
            r,
            Err(DiskError::Csv(CsvError::BadCell { line: 3, .. }))
        ));
        assert!(
            store.table_names().is_empty(),
            "failed load must not commit"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
