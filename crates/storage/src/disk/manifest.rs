//! The data directory: committed segments and the manifest protocol.
//!
//! A data directory contains one `MANIFEST` file plus one segment file per
//! committed table. A segment becomes visible in exactly one way:
//!
//! 1. the segment is written to `<name>.<seq>.seg.tmp` and fsync'd,
//! 2. atomically renamed to `<name>.<seq>.seg` and the directory fsync'd,
//! 3. the manifest is rewritten (same tmp→fsync→rename→fsync-dir dance)
//!    to reference it.
//!
//! The manifest rename is the commit point. A crash anywhere before it
//! leaves the old manifest in force and at worst an unreferenced segment
//! or `.tmp` file, both removed on the next [`DiskStore::open`]. A crash
//! after it leaves the *previous* segment file unreferenced — same
//! cleanup. Committed segments additionally carry a whole-file checksum
//! (see [`super::segment`]), so even a torn committed write surfaces as a
//! [`DiskError::Corrupt`] rather than wrong query results.
//!
//! Manifest format (text, one entry per line):
//!
//! ```text
//! skinner-manifest 1
//! seq 7
//! table lineitem lineitem.3.seg 6001215
//! table orders orders.6.seg 1500000
//! ```

use std::collections::HashMap;
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::segment::{read_segment, OpenedSegment, SegmentWriter, PAGE_ROWS};
use crate::disk::DiskError;
use crate::interner::Interner;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::DataType;

const MANIFEST: &str = "MANIFEST";

#[derive(Debug, Clone)]
struct Entry {
    file: String,
    rows: u64,
}

#[derive(Debug, Default)]
struct State {
    /// Monotonic counter baked into segment filenames so a replacement
    /// never reuses the name of the file it replaces.
    seq: u64,
    /// Lowercased table name → committed segment.
    tables: HashMap<String, Entry>,
}

/// A persistent table store rooted at one directory.
///
/// All mutation goes through one mutex: writes are serialized, which is the
/// right trade for bulk loads and DDL (queries never touch the store — they
/// read the in-memory tables the catalog decoded at attach time).
pub struct DiskStore {
    dir: PathBuf,
    state: Mutex<State>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("dir", &self.dir)
            .field("tables", &self.table_names())
            .finish()
    }
}

/// Best-effort directory fsync: required on Linux for rename durability;
/// a no-op error elsewhere is acceptable (the data fsync already happened).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

pub(crate) fn valid_table_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl DiskStore {
    /// Open (or create) a data directory. Reads the manifest, removes
    /// leftover `.tmp` files and unreferenced `.seg` files from interrupted
    /// writes, and returns the store.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Arc<DiskStore>, DiskError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let state = Self::read_manifest(&dir)?;
        let store = DiskStore {
            dir,
            state: Mutex::new(state),
        };
        store.clean_orphans()?;
        Ok(Arc::new(store))
    }

    fn read_manifest(dir: &Path) -> Result<State, DiskError> {
        let path = dir.join(MANIFEST);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(State::default()),
            Err(e) => return Err(e.into()),
        };
        let corrupt = |what: &str| DiskError::Corrupt(format!("{}: {what}", path.display()));
        let mut lines = text.lines();
        match lines.next() {
            Some("skinner-manifest 1") => {}
            _ => return Err(corrupt("bad header")),
        }
        let mut state = State::default();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("seq") => {
                    state.seq = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| corrupt("bad seq line"))?;
                }
                Some("table") => {
                    let (name, file, rows) = match (parts.next(), parts.next(), parts.next()) {
                        (Some(n), Some(f), Some(r)) => (n, f, r),
                        _ => return Err(corrupt("bad table line")),
                    };
                    let rows = rows.parse().map_err(|_| corrupt("bad row count"))?;
                    state.tables.insert(
                        name.to_string(),
                        Entry {
                            file: file.to_string(),
                            rows,
                        },
                    );
                }
                _ => return Err(corrupt("unknown directive")),
            }
        }
        Ok(state)
    }

    /// Rewrite the manifest atomically. Caller holds the state lock.
    fn commit_manifest(&self, state: &State) -> Result<(), DiskError> {
        let mut text = String::from("skinner-manifest 1\n");
        text.push_str(&format!("seq {}\n", state.seq));
        let mut names: Vec<&String> = state.tables.keys().collect();
        names.sort();
        for name in names {
            let e = &state.tables[name];
            text.push_str(&format!("table {name} {} {}\n", e.file, e.rows));
        }
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            use std::io::Write;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST))?;
        sync_dir(&self.dir);
        Ok(())
    }

    /// Remove `.tmp` leftovers and segment files the manifest doesn't
    /// reference (debris of interrupted writes/replacements/drops).
    fn clean_orphans(&self) -> Result<(), DiskError> {
        let state = self.state.lock();
        let referenced: std::collections::HashSet<&str> =
            state.tables.values().map(|e| e.file.as_str()).collect();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let fname = entry.file_name();
            let Some(fname) = fname.to_str() else {
                continue;
            };
            let orphan =
                fname.ends_with(".tmp") || (fname.ends_with(".seg") && !referenced.contains(fname));
            if orphan {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.lock().tables.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn contains(&self, name: &str) -> bool {
        self.state
            .lock()
            .tables
            .contains_key(&name.to_ascii_lowercase())
    }

    /// Committed row count for `name`, if present.
    pub fn rows_of(&self, name: &str) -> Option<u64> {
        self.state
            .lock()
            .tables
            .get(&name.to_ascii_lowercase())
            .map(|e| e.rows)
    }

    /// Decode a committed table into memory (strings remapped into
    /// `interner`, zone map attached).
    pub fn load_table(
        &self,
        name: &str,
        interner: &Arc<Interner>,
    ) -> Result<OpenedSegment, DiskError> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .state
            .lock()
            .tables
            .get(&key)
            .cloned()
            .ok_or_else(|| DiskError::NotFound(name.to_string()))?;
        let opened = read_segment(&self.dir.join(&entry.file), &key, interner)?;
        if opened.table.num_rows() as u64 != entry.rows {
            return Err(DiskError::Corrupt(format!(
                "{}: segment has {} rows, manifest says {}",
                entry.file,
                opened.table.num_rows(),
                entry.rows
            )));
        }
        Ok(opened)
    }

    /// Create (or replace) the persistent table `name` by streaming rows
    /// into a [`SegmentWriter`]. The write is crash-safe: the table
    /// commits — old contents intact until then — only when this returns
    /// `Ok`. Returns the committed row count.
    pub fn create_table_with(
        &self,
        name: &str,
        schema: Schema,
        page_rows: usize,
        fill: impl FnOnce(&mut SegmentWriter) -> Result<(), DiskError>,
    ) -> Result<u64, DiskError> {
        let key = name.to_ascii_lowercase();
        if !valid_table_name(&key) {
            return Err(DiskError::InvalidName(name.to_string()));
        }
        let mut state = self.state.lock();
        state.seq += 1;
        let final_name = format!("{key}.{}.seg", state.seq);
        let tmp = self.dir.join(format!("{final_name}.tmp"));
        let mut w = SegmentWriter::create(&tmp, schema, page_rows)?;
        if let Err(e) = fill(&mut w).and(Ok(())) {
            drop(w);
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        let rows = match w.finish() {
            Ok(r) => r,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        };
        fs::rename(&tmp, self.dir.join(&final_name))?;
        sync_dir(&self.dir);
        let old = state.tables.insert(
            key,
            Entry {
                file: final_name,
                rows,
            },
        );
        self.commit_manifest(&state)?;
        // Only after the commit point is the replaced file dead.
        if let Some(old) = old {
            let _ = fs::remove_file(self.dir.join(&old.file));
        }
        Ok(rows)
    }

    /// Persist an in-memory table under its own name (default page size).
    pub fn save_table(&self, table: &Table) -> Result<u64, DiskError> {
        let interner = table.interner().clone();
        self.create_table_with(table.name(), table.schema().clone(), PAGE_ROWS, |w| {
            for row in 0..table.cardinality() {
                for (c, field) in table.schema().fields().iter().enumerate() {
                    match field.dtype {
                        DataType::Int => w.push_int(c, table.column(c).int_at(row)),
                        DataType::Float => w.push_float(c, table.column(c).float_at(row)),
                        DataType::Str => {
                            let s = interner.resolve(table.column(c).code_at(row));
                            w.push_str(c, &s);
                        }
                    }
                }
                w.end_row()?;
            }
            Ok(())
        })
    }

    /// Drop a committed table: the manifest entry goes first (the commit
    /// point), the segment file after. Returns whether the table existed.
    pub fn remove_table(&self, name: &str) -> Result<bool, DiskError> {
        let key = name.to_ascii_lowercase();
        let mut state = self.state.lock();
        let Some(old) = state.tables.remove(&key) else {
            return Ok(false);
        };
        self.commit_manifest(&state)?;
        let _ = fs::remove_file(self.dir.join(&old.file));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::value::Value;

    fn tmp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("skinner_store_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn fill_ints(w: &mut SegmentWriter, n: i64) -> Result<(), DiskError> {
        for i in 0..n {
            w.push_row(&[Value::Int(i)])?;
        }
        Ok(())
    }

    #[test]
    fn create_load_replace_drop() {
        let dir = tmp_dir("crud");
        let store = DiskStore::open(&dir).unwrap();
        store
            .create_table_with("t", schema![("x", Int)], 4, |w| fill_ints(w, 10))
            .unwrap();
        assert_eq!(store.table_names(), vec!["t"]);
        assert_eq!(store.rows_of("T"), Some(10));
        let interner = Arc::new(Interner::new());
        assert_eq!(
            store.load_table("t", &interner).unwrap().table.num_rows(),
            10
        );
        // Replace: new contents visible, exactly one segment file remains.
        store
            .create_table_with("T", schema![("x", Int)], 4, |w| fill_ints(w, 3))
            .unwrap();
        assert_eq!(
            store.load_table("t", &interner).unwrap().table.num_rows(),
            3
        );
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_str()
                    .unwrap()
                    .ends_with(".seg")
            })
            .count();
        assert_eq!(segs, 1, "replaced segment file must be deleted");
        assert!(store.remove_table("t").unwrap());
        assert!(!store.remove_table("t").unwrap());
        assert!(matches!(
            store.load_table("t", &interner),
            Err(DiskError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_sees_committed_tables() {
        let dir = tmp_dir("reopen");
        {
            let store = DiskStore::open(&dir).unwrap();
            store
                .create_table_with("a", schema![("x", Int)], 8, |w| fill_ints(w, 20))
                .unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.table_names(), vec!["a"]);
        let interner = Arc::new(Interner::new());
        let t = store.load_table("a", &interner).unwrap().table;
        assert_eq!(t.num_rows(), 20);
        assert_eq!(t.value(19, 0), Value::Int(19));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphans_cleaned_on_open() {
        let dir = tmp_dir("orphans");
        {
            let store = DiskStore::open(&dir).unwrap();
            store
                .create_table_with("keep", schema![("x", Int)], 8, |w| fill_ints(w, 5))
                .unwrap();
        }
        // Simulate an interrupted write: a stray tmp and an unreferenced seg.
        fs::write(dir.join("stray.9.seg.tmp"), b"partial").unwrap();
        fs::write(dir.join("ghost.2.seg"), b"uncommitted").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.table_names(), vec!["keep"]);
        assert!(!dir.join("stray.9.seg.tmp").exists());
        assert!(!dir.join("ghost.2.seg").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fill_leaves_no_trace() {
        let dir = tmp_dir("failfill");
        let store = DiskStore::open(&dir).unwrap();
        store
            .create_table_with("t", schema![("x", Int)], 4, |w| fill_ints(w, 7))
            .unwrap();
        let r = store.create_table_with("t", schema![("x", Int)], 4, |w| {
            fill_ints(w, 2)?;
            Err(DiskError::Corrupt("simulated loader failure".into()))
        });
        assert!(r.is_err());
        // Old contents still committed; no tmp debris.
        let interner = Arc::new(Interner::new());
        assert_eq!(
            store.load_table("t", &interner).unwrap().table.num_rows(),
            7
        );
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_str()
            .unwrap()
            .ends_with(".tmp")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_names_rejected() {
        let dir = tmp_dir("names");
        let store = DiskStore::open(&dir).unwrap();
        for bad in ["", "a/b", "a b", "../evil", "dot.dot"] {
            assert!(matches!(
                store.create_table_with(bad, schema![("x", Int)], 4, |_| Ok(())),
                Err(DiskError::InvalidName(_))
            ));
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
