//! Read-only memory mapping with a portable fallback.
//!
//! Segments are opened for reading by mapping the whole file; the build
//! environment has no `libc`/`memmap2` crate, so on Linux the two syscalls
//! we need are declared directly against the platform C library every Rust
//! binary already links. Anywhere the mapping is unavailable (non-Unix
//! targets, empty files, or an `mmap` failure) the file is read into an
//! owned buffer instead — callers only ever see a `&[u8]`.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only view over a whole file: a real `mmap` where possible, an
/// owned in-memory copy otherwise.
pub enum Mmap {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) for the whole
// lifetime of the value, so sharing the raw pointer across threads is a
// shared read of immutable memory.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only. Falls back to reading the file when mapping is
    /// unavailable; an empty file maps to an empty slice.
    pub fn map_readonly(file: &mut File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "segment exceeds usize"))?;
        if len == 0 {
            return Ok(Mmap::Owned(Vec::new()));
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Mmap::Mapped {
                    ptr: ptr as *const u8,
                    len,
                });
            }
            // fall through to the owned-read path
        }
        let mut buf = Vec::with_capacity(len);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        Ok(Mmap::Owned(buf))
    }

    /// True when the bytes are a live kernel mapping (diagnostics only).
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self, Mmap::Mapped { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Mmap::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Mmap::Owned(v) => v,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mmap::Mapped { ptr, len } = self {
            unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("skinner_mmap_{}_{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("basic", b"hello segment");
        let mut f = File::open(&p).unwrap();
        let m = Mmap::map_readonly(&mut f).unwrap();
        assert_eq!(&*m, b"hello segment");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let p = tmp("empty", b"");
        let mut f = File::open(&p).unwrap();
        let m = Mmap::map_readonly(&mut f).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped());
        std::fs::remove_file(p).unwrap();
    }
}
