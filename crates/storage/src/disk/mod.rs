//! Persistent paged columnar storage.
//!
//! This module is the durable layer under the in-memory catalog:
//!
//! - [`segment`] — the on-disk format: fixed-row pages per column with
//!   lightweight compression ([`page`]) and per-page min/max zone bounds
//!   ([`zonemap`]), a self-describing footer, and a whole-file checksum.
//!   Reads go through [`mmap`]; a segment opens into an ordinary
//!   in-memory [`crate::Table`] with a [`ZoneMap`] attached.
//! - [`manifest`] — the data directory: [`DiskStore`] with the
//!   write-temp → fsync → rename → manifest-commit protocol that makes
//!   every create/replace/drop crash-safe.
//! - [`loader`] — streaming bulk CSV ingestion straight into page buffers.
//! - [`sidecar`] — small checksummed auxiliary files (e.g. the learning
//!   cache's persisted priors) written with the same tmp → fsync → rename
//!   discipline.
//!
//! The catalog integration (attach a directory, persist tables, delete
//! segments when a persistent table is dropped) lives in
//! [`crate::Catalog`]; the zone-map scan integration lives in
//! `skinner_exec::zonescan`.

pub mod loader;
pub mod manifest;
pub mod mmap;
pub mod page;
pub mod segment;
pub mod sidecar;
pub mod zonemap;

pub use loader::bulk_load_csv;
pub use manifest::DiskStore;
pub use segment::{read_segment, OpenedSegment, SegmentWriter, PAGE_ROWS};
pub use zonemap::{ZoneCol, ZoneMap};

use crate::csv::CsvError;
use std::fmt;

/// Errors from the persistent storage layer.
#[derive(Debug)]
pub enum DiskError {
    Io(std::io::Error),
    /// The file exists but its bytes are not a valid committed segment or
    /// manifest (truncation, bit rot, torn write, format violation).
    Corrupt(String),
    /// No committed table under that name.
    NotFound(String),
    /// Persistent table names are restricted to `[A-Za-z0-9_]+` because
    /// they become file names.
    InvalidName(String),
    /// CSV parse failure during bulk load.
    Csv(CsvError),
    /// A persistence operation needs a data directory, but none is attached.
    NoDataDir,
    /// The catalog already has a data directory attached.
    AlreadyAttached(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "storage io error: {e}"),
            DiskError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            DiskError::NotFound(name) => write!(f, "no persistent table {name:?}"),
            DiskError::InvalidName(name) => write!(
                f,
                "invalid persistent table name {name:?} (use letters, digits, underscores)"
            ),
            DiskError::Csv(e) => write!(f, "bulk load: {e}"),
            DiskError::NoDataDir => {
                write!(f, "no data directory attached (open one with --data-dir)")
            }
            DiskError::AlreadyAttached(dir) => {
                write!(f, "a data directory is already attached ({dir})")
            }
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

impl From<CsvError> for DiskError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Io(io) => DiskError::Io(io),
            e => DiskError::Csv(e),
        }
    }
}
