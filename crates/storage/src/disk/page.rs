//! Per-page lightweight compression.
//!
//! A page holds up to `page_rows` consecutive rows of one column. Integer
//! and dictionary-code pages use frame-of-reference coding (store the page
//! minimum, then per-row deltas in the narrowest of u8/u16/u32 that fits);
//! constant pages collapse to the single repeated value; float pages are
//! stored raw (IEEE bits, so roundtrips are bit-exact — NaN payloads and
//! `-0.0` included). Every encoding is self-describing via a one-byte tag;
//! the row count comes from the segment's page directory.

use crate::disk::DiskError;

/// Decoded page payload. Strings appear as per-segment dictionary codes;
/// the segment reader remaps them to catalog interner codes.
#[derive(Debug, Clone, PartialEq)]
pub enum PageData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Per-segment dense dictionary codes.
    Codes(Vec<u32>),
}

impl PageData {
    pub fn len(&self) -> usize {
        match self {
            PageData::Int(v) => v.len(),
            PageData::Float(v) => v.len(),
            PageData::Codes(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// Encoding tags. Shared across page kinds: the kind is fixed by the column
// dtype, the tag only selects the width.
const TAG_CONST: u8 = 0;
const TAG_FOR_U8: u8 = 1;
const TAG_FOR_U16: u8 = 2;
const TAG_FOR_U32: u8 = 3;
const TAG_RAW: u8 = 4;

fn corrupt(what: &str) -> DiskError {
    DiskError::Corrupt(format!("page payload: {what}"))
}

/// Encode one page into `out`. Returns the number of bytes appended.
pub fn encode_page(data: &PageData, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match data {
        PageData::Int(v) => encode_int(v, out),
        PageData::Codes(v) => encode_codes(v, out),
        PageData::Float(v) => encode_float(v, out),
    }
    out.len() - start
}

fn encode_int(v: &[i64], out: &mut Vec<u8>) {
    let (min, max) = match v.iter().copied().fold(None, |acc, x| match acc {
        None => Some((x, x)),
        Some((lo, hi)) => Some((lo.min(x), hi.max(x))),
    }) {
        Some(b) => b,
        None => {
            out.push(TAG_RAW);
            return;
        }
    };
    if min == max {
        out.push(TAG_CONST);
        out.extend_from_slice(&min.to_le_bytes());
        return;
    }
    // Range in i128 so i64::MIN..=i64::MAX cannot overflow.
    let range = (max as i128 - min as i128) as u128;
    let delta = |x: i64| (x as i128 - min as i128) as u128;
    if range <= u8::MAX as u128 {
        out.push(TAG_FOR_U8);
        out.extend_from_slice(&min.to_le_bytes());
        out.extend(v.iter().map(|&x| delta(x) as u8));
    } else if range <= u16::MAX as u128 {
        out.push(TAG_FOR_U16);
        out.extend_from_slice(&min.to_le_bytes());
        for &x in v {
            out.extend_from_slice(&(delta(x) as u16).to_le_bytes());
        }
    } else if range <= u32::MAX as u128 {
        out.push(TAG_FOR_U32);
        out.extend_from_slice(&min.to_le_bytes());
        for &x in v {
            out.extend_from_slice(&(delta(x) as u32).to_le_bytes());
        }
    } else {
        out.push(TAG_RAW);
        for &x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

fn encode_codes(v: &[u32], out: &mut Vec<u8>) {
    let (min, max) = match v.iter().copied().fold(None, |acc, x| match acc {
        None => Some((x, x)),
        Some((lo, hi)) => Some((lo.min(x), hi.max(x))),
    }) {
        Some(b) => b,
        None => {
            out.push(TAG_RAW);
            return;
        }
    };
    if min == max {
        out.push(TAG_CONST);
        out.extend_from_slice(&min.to_le_bytes());
        return;
    }
    let range = max - min;
    if range <= u8::MAX as u32 {
        out.push(TAG_FOR_U8);
        out.extend_from_slice(&min.to_le_bytes());
        out.extend(v.iter().map(|&x| (x - min) as u8));
    } else if range <= u16::MAX as u32 {
        out.push(TAG_FOR_U16);
        out.extend_from_slice(&min.to_le_bytes());
        for &x in v {
            out.extend_from_slice(&((x - min) as u16).to_le_bytes());
        }
    } else {
        out.push(TAG_RAW);
        for &x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

fn encode_float(v: &[f64], out: &mut Vec<u8>) {
    // Constant detection compares bit patterns, not values, so a page of
    // identical NaNs (or of -0.0) still roundtrips bit-exactly.
    if let Some(&first) = v.first() {
        if v.iter().all(|x| x.to_bits() == first.to_bits()) {
            out.push(TAG_CONST);
            out.extend_from_slice(&first.to_le_bytes());
            return;
        }
    }
    out.push(TAG_RAW);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], DiskError> {
    if bytes.len() < n {
        return Err(corrupt("truncated"));
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Ok(head)
}

fn read_i64(bytes: &mut &[u8]) -> Result<i64, DiskError> {
    Ok(i64::from_le_bytes(take(bytes, 8)?.try_into().unwrap()))
}

fn read_u32(bytes: &mut &[u8]) -> Result<u32, DiskError> {
    Ok(u32::from_le_bytes(take(bytes, 4)?.try_into().unwrap()))
}

/// Decode an int page of `rows` rows.
pub fn decode_int(mut bytes: &[u8], rows: usize) -> Result<Vec<i64>, DiskError> {
    let tag = *take(&mut bytes, 1)?.first().unwrap();
    let out = match tag {
        TAG_CONST => {
            let v = read_i64(&mut bytes)?;
            vec![v; rows]
        }
        TAG_FOR_U8 => {
            let base = read_i64(&mut bytes)? as i128;
            take(&mut bytes, rows)?
                .iter()
                .map(|&d| (base + d as i128) as i64)
                .collect()
        }
        TAG_FOR_U16 => {
            let base = read_i64(&mut bytes)? as i128;
            take(&mut bytes, rows * 2)?
                .chunks_exact(2)
                .map(|c| (base + u16::from_le_bytes(c.try_into().unwrap()) as i128) as i64)
                .collect()
        }
        TAG_FOR_U32 => {
            let base = read_i64(&mut bytes)? as i128;
            take(&mut bytes, rows * 4)?
                .chunks_exact(4)
                .map(|c| (base + u32::from_le_bytes(c.try_into().unwrap()) as i128) as i64)
                .collect()
        }
        TAG_RAW => take(&mut bytes, rows * 8)?
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
        t => return Err(corrupt(&format!("unknown int tag {t}"))),
    };
    finish(bytes, out)
}

/// Decode a dictionary-code page of `rows` rows.
pub fn decode_codes(mut bytes: &[u8], rows: usize) -> Result<Vec<u32>, DiskError> {
    let tag = *take(&mut bytes, 1)?.first().unwrap();
    let out = match tag {
        TAG_CONST => {
            let v = read_u32(&mut bytes)?;
            vec![v; rows]
        }
        TAG_FOR_U8 => {
            let base = read_u32(&mut bytes)?;
            take(&mut bytes, rows)?
                .iter()
                .map(|&d| base + d as u32)
                .collect()
        }
        TAG_FOR_U16 => {
            let base = read_u32(&mut bytes)?;
            take(&mut bytes, rows * 2)?
                .chunks_exact(2)
                .map(|c| base + u16::from_le_bytes(c.try_into().unwrap()) as u32)
                .collect()
        }
        TAG_RAW => take(&mut bytes, rows * 4)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
        t => return Err(corrupt(&format!("unknown code tag {t}"))),
    };
    finish(bytes, out)
}

/// Decode a float page of `rows` rows.
pub fn decode_float(mut bytes: &[u8], rows: usize) -> Result<Vec<f64>, DiskError> {
    let tag = *take(&mut bytes, 1)?.first().unwrap();
    let out = match tag {
        TAG_CONST => {
            let v = f64::from_le_bytes(take(&mut bytes, 8)?.try_into().unwrap());
            vec![v; rows]
        }
        TAG_RAW => take(&mut bytes, rows * 8)?
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
        t => return Err(corrupt(&format!("unknown float tag {t}"))),
    };
    finish(bytes, out)
}

fn finish<T>(rest: &[u8], out: Vec<T>) -> Result<Vec<T>, DiskError> {
    if !rest.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_int(v: Vec<i64>) {
        let mut buf = Vec::new();
        encode_page(&PageData::Int(v.clone()), &mut buf);
        assert_eq!(decode_int(&buf, v.len()).unwrap(), v);
    }

    #[test]
    fn int_roundtrips_across_widths() {
        roundtrip_int(vec![]);
        roundtrip_int(vec![7; 100]); // const
        roundtrip_int((0..200).collect()); // u8 deltas
        roundtrip_int((0..200).map(|i| i * 300).collect()); // u16
        roundtrip_int((0..200).map(|i| i * 1_000_000).collect()); // u32
        roundtrip_int(vec![i64::MIN, i64::MAX, 0, -1, 1]); // raw, extreme range
        roundtrip_int(vec![i64::MIN, i64::MIN + 255]); // u8 at the bottom edge
    }

    #[test]
    fn codes_roundtrip() {
        for v in [
            vec![],
            vec![3; 50],
            (0..100u32).collect(),
            vec![0, u32::MAX],
            (0..100u32).map(|i| i * 700).collect(),
        ] {
            let mut buf = Vec::new();
            encode_page(&PageData::Codes(v.clone()), &mut buf);
            assert_eq!(decode_codes(&buf, v.len()).unwrap(), v);
        }
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        let v = vec![0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE];
        let mut buf = Vec::new();
        encode_page(&PageData::Float(v.clone()), &mut buf);
        let back = decode_float(&buf, v.len()).unwrap();
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&v));
        // Constant NaN page stays bit-exact through the const encoding.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut buf = Vec::new();
        encode_page(&PageData::Float(vec![nan; 8]), &mut buf);
        assert_eq!(buf[0], TAG_CONST);
        let back = decode_float(&buf, 8).unwrap();
        assert!(back.iter().all(|x| x.to_bits() == nan.to_bits()));
    }

    #[test]
    fn compression_actually_compresses() {
        let mut buf = Vec::new();
        encode_page(&PageData::Int((1000..2000).collect()), &mut buf);
        // 1000 rows of u16 deltas + tag + base ≪ 8000 raw bytes.
        assert!(buf.len() < 2100, "got {}", buf.len());
    }

    #[test]
    fn corrupt_payloads_are_errors_not_panics() {
        assert!(decode_int(&[], 4).is_err());
        assert!(decode_int(&[9], 4).is_err()); // unknown tag
        assert!(decode_int(&[TAG_RAW, 1, 2], 4).is_err()); // truncated
        let mut buf = Vec::new();
        encode_page(&PageData::Int(vec![1, 2, 3]), &mut buf);
        buf.push(0xFF); // trailing garbage
        assert!(decode_int(&buf, 3).is_err());
    }
}
