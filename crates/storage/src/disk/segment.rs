//! On-disk segment format: one file per table.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +-----------+------------------------------+----------+-------------+----------+
//! | "SKSEG01\n" | page payloads (interleaved) | footer   | footer_off  | checksum |
//! | 8 bytes   |                              |          | u64         | u64      |
//! +-----------+------------------------------+----------+-------------+----------+
//! ```
//!
//! Pages are flushed in row-chunk order — every `page_rows` rows the writer
//! emits one page per column back to back — so bulk loading streams without
//! buffering the table. The footer records the schema, the per-segment
//! string dictionary, and for every column a page directory
//! (`offset, len, rows` per page) plus per-page min/max zone bounds.
//! The checksum is FNV-1a 64 over every byte before it; a torn or truncated
//! write is detected before any page is decoded.
//!
//! Readers map the file (see [`super::mmap`]), verify the checksum, then
//! decode every page into an ordinary in-memory [`Table`]: engines keep
//! their random-access scan code, and the attached [`ZoneMap`] lets the
//! pre-processing scan skip per-page predicate evaluation.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::column::Column;
use crate::disk::mmap::Mmap;
use crate::disk::page::{self, PageData};
use crate::disk::zonemap::{ZoneCol, ZoneMap};
use crate::disk::DiskError;
use crate::interner::Interner;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

pub(crate) const MAGIC: &[u8; 8] = b"SKSEG01\n";

/// Default rows per page. Small enough that selective predicates skip real
/// work, large enough that per-page overhead stays negligible.
pub const PAGE_ROWS: usize = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType, DiskError> {
    match t {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        t => Err(DiskError::Corrupt(format!("unknown dtype tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// File sink that maintains the running FNV-1a checksum and byte offset.
struct HashWriter {
    inner: BufWriter<File>,
    hash: u64,
    len: u64,
}

impl HashWriter {
    fn put(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        self.inner.write_all(bytes)?;
        for &b in bytes {
            self.hash = (self.hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.len += bytes.len() as u64;
        Ok(())
    }
}

/// One column's in-flight state while writing.
enum ColBuf {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Per-segment dictionary codes.
    Str(Vec<u32>),
}

struct PageEntry {
    offset: u64,
    len: u32,
    rows: u32,
}

/// Streaming segment writer. Push rows; every [`page_rows`] rows one page
/// per column is encoded and written out, so memory stays bounded by the
/// page size (plus the string dictionary).
///
/// [`page_rows`]: SegmentWriter::page_rows
pub struct SegmentWriter {
    out: HashWriter,
    schema: Schema,
    page_rows: usize,
    bufs: Vec<ColBuf>,
    buffered: usize,
    nrows: u64,
    dict: Vec<String>,
    dict_map: std::collections::HashMap<String, u32>,
    directory: Vec<Vec<PageEntry>>,
    zones: Vec<ZoneCol>,
    scratch: Vec<u8>,
}

impl SegmentWriter {
    /// Start writing a segment at `path` (the caller passes a temp path and
    /// renames after [`SegmentWriter::finish`] for crash safety).
    pub fn create(
        path: &Path,
        schema: Schema,
        page_rows: usize,
    ) -> Result<SegmentWriter, DiskError> {
        assert!(page_rows > 0, "page_rows must be positive");
        let file = File::create(path)?;
        let mut out = HashWriter {
            inner: BufWriter::new(file),
            hash: FNV_OFFSET,
            len: 0,
        };
        out.put(MAGIC)?;
        let bufs = schema
            .fields()
            .iter()
            .map(|f| match f.dtype {
                DataType::Int => ColBuf::Int(Vec::with_capacity(page_rows)),
                DataType::Float => ColBuf::Float(Vec::with_capacity(page_rows)),
                DataType::Str => ColBuf::Str(Vec::with_capacity(page_rows)),
            })
            .collect::<Vec<_>>();
        let ncols = bufs.len();
        let zones = schema
            .fields()
            .iter()
            .map(|f| match f.dtype {
                DataType::Int => ZoneCol::Int(vec![]),
                DataType::Float => ZoneCol::Float(vec![]),
                DataType::Str => ZoneCol::Str(vec![]),
            })
            .collect();
        Ok(SegmentWriter {
            out,
            schema,
            page_rows,
            bufs,
            buffered: 0,
            nrows: 0,
            dict: vec![],
            dict_map: std::collections::HashMap::new(),
            directory: (0..ncols).map(|_| vec![]).collect(),
            zones,
            scratch: vec![],
        })
    }

    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    pub fn rows_written(&self) -> u64 {
        self.nrows + self.buffered as u64
    }

    fn dict_code(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.dict_map.get(s) {
            return c;
        }
        let c = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.dict_map.insert(s.to_string(), c);
        c
    }

    /// Append one row. Ints widen into float columns, matching
    /// [`crate::TableBuilder::push_row`]. Panics on arity/type mismatch.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), DiskError> {
        assert_eq!(row.len(), self.bufs.len(), "row arity mismatch");
        for (i, v) in row.iter().enumerate() {
            match (&mut self.bufs[i], v) {
                (ColBuf::Int(b), Value::Int(x)) => b.push(*x),
                (ColBuf::Float(b), Value::Float(x)) => b.push(*x),
                (ColBuf::Float(b), Value::Int(x)) => b.push(*x as f64),
                (ColBuf::Str(_), Value::Str(s)) => {
                    let s = s.clone();
                    let code = self.dict_code(&s);
                    match &mut self.bufs[i] {
                        ColBuf::Str(b) => b.push(code),
                        _ => unreachable!(),
                    }
                }
                (_, v) => panic!(
                    "type mismatch in column {} of segment: got {v:?}",
                    self.schema.field(i).name
                ),
            }
        }
        self.buffered += 1;
        if self.buffered == self.page_rows {
            self.flush_pages()?;
        }
        Ok(())
    }

    /// Typed fast paths for the bulk loader (column-wise within a row; the
    /// caller must fill every column before [`SegmentWriter::end_row`]).
    pub fn push_int(&mut self, col: usize, v: i64) {
        match &mut self.bufs[col] {
            ColBuf::Int(b) => b.push(v),
            ColBuf::Float(b) => b.push(v as f64),
            ColBuf::Str(_) => panic!("push_int on string column"),
        }
    }

    pub fn push_float(&mut self, col: usize, v: f64) {
        match &mut self.bufs[col] {
            ColBuf::Float(b) => b.push(v),
            _ => panic!("push_float on non-float column"),
        }
    }

    pub fn push_str(&mut self, col: usize, v: &str) {
        let code = self.dict_code(v);
        match &mut self.bufs[col] {
            ColBuf::Str(b) => b.push(code),
            _ => panic!("push_str on non-string column"),
        }
    }

    /// Finish the current row after typed pushes; flushes a full page.
    pub fn end_row(&mut self) -> Result<(), DiskError> {
        self.buffered += 1;
        debug_assert!(self.bufs.iter().all(|b| match b {
            ColBuf::Int(v) => v.len(),
            ColBuf::Float(v) => v.len(),
            ColBuf::Str(v) => v.len(),
        } == self.buffered));
        if self.buffered == self.page_rows {
            self.flush_pages()?;
        }
        Ok(())
    }

    fn flush_pages(&mut self) -> Result<(), DiskError> {
        if self.buffered == 0 {
            return Ok(());
        }
        let rows = self.buffered as u32;
        for col in 0..self.bufs.len() {
            let data = match &mut self.bufs[col] {
                ColBuf::Int(b) => PageData::Int(std::mem::take(b)),
                ColBuf::Float(b) => PageData::Float(std::mem::take(b)),
                ColBuf::Str(b) => PageData::Codes(std::mem::take(b)),
            };
            match (&data, &mut self.zones[col]) {
                (PageData::Int(v), ZoneCol::Int(z)) => z.push(
                    v.iter()
                        .fold((i64::MAX, i64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x))),
                ),
                (PageData::Float(v), ZoneCol::Float(z)) => z.push(
                    v.iter()
                        .filter(|x| !x.is_nan())
                        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                            (lo.min(x), hi.max(x))
                        }),
                ),
                (PageData::Codes(v), ZoneCol::Str(z)) => z.push(
                    v.iter()
                        .fold((u32::MAX, u32::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x))),
                ),
                _ => unreachable!("buffer/zone kind mismatch"),
            }
            self.scratch.clear();
            page::encode_page(&data, &mut self.scratch);
            let entry = PageEntry {
                offset: self.out.len,
                len: self.scratch.len() as u32,
                rows,
            };
            let payload = std::mem::take(&mut self.scratch);
            self.out.put(&payload)?;
            self.scratch = payload;
            self.directory[col].push(entry);
        }
        self.nrows += self.buffered as u64;
        self.buffered = 0;
        Ok(())
    }

    /// Flush the tail page, write footer + checksum, fsync. The file is
    /// complete and self-validating after this returns.
    pub fn finish(mut self) -> Result<u64, DiskError> {
        self.flush_pages()?;
        let footer_offset = self.out.len;
        // -- footer --
        let mut f = Vec::new();
        f.extend_from_slice(&self.nrows.to_le_bytes());
        f.extend_from_slice(&(self.page_rows as u32).to_le_bytes());
        f.extend_from_slice(&(self.schema.len() as u32).to_le_bytes());
        for field in self.schema.fields() {
            let name = field.name.as_bytes();
            f.extend_from_slice(&(name.len() as u16).to_le_bytes());
            f.extend_from_slice(name);
            f.push(dtype_tag(field.dtype));
        }
        f.extend_from_slice(&(self.dict.len() as u32).to_le_bytes());
        for s in &self.dict {
            f.extend_from_slice(&(s.len() as u32).to_le_bytes());
            f.extend_from_slice(s.as_bytes());
        }
        for (col, entries) in self.directory.iter().enumerate() {
            f.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for e in entries {
                f.extend_from_slice(&e.offset.to_le_bytes());
                f.extend_from_slice(&e.len.to_le_bytes());
                f.extend_from_slice(&e.rows.to_le_bytes());
            }
            match &self.zones[col] {
                ZoneCol::Int(z) => {
                    for &(lo, hi) in z {
                        f.extend_from_slice(&lo.to_le_bytes());
                        f.extend_from_slice(&hi.to_le_bytes());
                    }
                }
                ZoneCol::Float(z) => {
                    for &(lo, hi) in z {
                        f.extend_from_slice(&lo.to_le_bytes());
                        f.extend_from_slice(&hi.to_le_bytes());
                    }
                }
                ZoneCol::Str(z) => {
                    for &(lo, hi) in z {
                        f.extend_from_slice(&lo.to_le_bytes());
                        f.extend_from_slice(&hi.to_le_bytes());
                    }
                }
            }
        }
        self.out.put(&f)?;
        self.out.put(&footer_offset.to_le_bytes())?;
        // The checksum covers everything before it, including footer_offset.
        let hash = self.out.hash;
        self.out.inner.write_all(&hash.to_le_bytes())?;
        self.out.inner.flush()?;
        self.out.inner.get_ref().sync_all()?;
        Ok(self.nrows)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DiskError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| DiskError::Corrupt("footer truncated".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DiskError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DiskError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DiskError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DiskError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DiskError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DiskError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// What a segment open yields: a fully decoded, zone-mapped table plus
/// read statistics.
#[derive(Debug)]
pub struct OpenedSegment {
    pub table: Table,
    /// True when the file bytes came from a live `mmap` (not a buffered read).
    pub mapped: bool,
    /// Total pages decoded across all columns.
    pub pages_decoded: usize,
}

/// Open a segment file and decode it into a `Table` named `table_name`,
/// remapping dictionary strings into the catalog `interner` and attaching
/// the zone map. Any truncation, bit-flip or format violation is a
/// [`DiskError::Corrupt`] — never a panic.
pub fn read_segment(
    path: &Path,
    table_name: &str,
    interner: &Arc<Interner>,
) -> Result<OpenedSegment, DiskError> {
    let mut file = File::open(path)?;
    let map = Mmap::map_readonly(&mut file)?;
    let bytes: &[u8] = &map;
    if bytes.len() < MAGIC.len() + 16 {
        return Err(DiskError::Corrupt(format!(
            "{}: too small ({} bytes)",
            path.display(),
            bytes.len()
        )));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(DiskError::Corrupt(format!("{}: bad magic", path.display())));
    }
    let stored_hash = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a64(&bytes[..bytes.len() - 8]) != stored_hash {
        return Err(DiskError::Corrupt(format!(
            "{}: checksum mismatch (torn or truncated write)",
            path.display()
        )));
    }
    let footer_offset =
        u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap()) as usize;
    if footer_offset < MAGIC.len() || footer_offset > bytes.len() - 16 {
        return Err(DiskError::Corrupt(format!(
            "{}: footer offset out of range",
            path.display()
        )));
    }
    let mut cur = Cursor {
        bytes: &bytes[..bytes.len() - 16],
        pos: footer_offset,
    };
    let nrows = usize::try_from(cur.u64()?)
        .map_err(|_| DiskError::Corrupt("row count exceeds usize".into()))?;
    let page_rows = cur.u32()? as usize;
    if page_rows == 0 {
        return Err(DiskError::Corrupt("page_rows is zero".into()));
    }
    let ncols = cur.u32()? as usize;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = cur.u16()? as usize;
        let name = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| DiskError::Corrupt("column name not utf-8".into()))?
            .to_string();
        let dtype = dtype_from_tag(cur.u8()?)?;
        fields.push(Field { name, dtype });
    }
    // Per-segment dictionary → catalog interner codes.
    let dict_count = cur.u32()? as usize;
    let mut remap = Vec::with_capacity(dict_count);
    for _ in 0..dict_count {
        let len = cur.u32()? as usize;
        let s = std::str::from_utf8(cur.take(len)?)
            .map_err(|_| DiskError::Corrupt("dictionary entry not utf-8".into()))?;
        remap.push(interner.intern(s));
    }
    let expected_pages = nrows.div_ceil(page_rows);
    let mut columns = Vec::with_capacity(ncols);
    let mut zone_cols = Vec::with_capacity(ncols);
    let mut pages_decoded = 0usize;
    for field in &fields {
        let npages = cur.u32()? as usize;
        if npages != expected_pages {
            return Err(DiskError::Corrupt(format!(
                "column {:?}: {npages} pages, expected {expected_pages}",
                field.name
            )));
        }
        let mut entries = Vec::with_capacity(npages);
        for _ in 0..npages {
            let offset = cur.u64()? as usize;
            let len = cur.u32()? as usize;
            let rows = cur.u32()? as usize;
            if offset < MAGIC.len() || offset.saturating_add(len) > footer_offset {
                return Err(DiskError::Corrupt(format!(
                    "column {:?}: page extent out of range",
                    field.name
                )));
            }
            entries.push((offset, len, rows));
        }
        let total_rows: usize = entries.iter().map(|e| e.2).sum();
        if total_rows != nrows {
            return Err(DiskError::Corrupt(format!(
                "column {:?}: directory rows {total_rows} != {nrows}",
                field.name
            )));
        }
        let zones = match field.dtype {
            DataType::Int => ZoneCol::Int(
                (0..npages)
                    .map(|_| Ok((cur.i64()?, cur.i64()?)))
                    .collect::<Result<_, DiskError>>()?,
            ),
            DataType::Float => ZoneCol::Float(
                (0..npages)
                    .map(|_| Ok((cur.f64()?, cur.f64()?)))
                    .collect::<Result<_, DiskError>>()?,
            ),
            DataType::Str => ZoneCol::Str(
                (0..npages)
                    .map(|_| Ok((cur.u32()?, cur.u32()?)))
                    .collect::<Result<_, DiskError>>()?,
            ),
        };
        // Decode every page into one contiguous in-memory column.
        let column = match field.dtype {
            DataType::Int => {
                let mut v = Vec::with_capacity(nrows);
                for &(off, len, rows) in &entries {
                    v.extend(page::decode_int(&bytes[off..off + len], rows)?);
                }
                Column::Int(v)
            }
            DataType::Float => {
                let mut v = Vec::with_capacity(nrows);
                for &(off, len, rows) in &entries {
                    v.extend(page::decode_float(&bytes[off..off + len], rows)?);
                }
                Column::Float(v)
            }
            DataType::Str => {
                let mut v = Vec::with_capacity(nrows);
                for &(off, len, rows) in &entries {
                    for code in page::decode_codes(&bytes[off..off + len], rows)? {
                        let cat = *remap.get(code as usize).ok_or_else(|| {
                            DiskError::Corrupt(format!(
                                "column {:?}: dictionary code {code} out of range",
                                field.name
                            ))
                        })?;
                        v.push(cat);
                    }
                }
                Column::Str(v)
            }
        };
        pages_decoded += npages;
        columns.push(column);
        zone_cols.push(zones);
    }
    // String zone bounds stored in the file are per-segment codes; after
    // remapping into the catalog interner they are stale, so recompute them
    // over the remapped column. Int/float bounds survive remap-free.
    for (zc, col) in zone_cols.iter_mut().zip(&columns) {
        if let (ZoneCol::Str(z), Column::Str(codes)) = (zc, col) {
            *z = codes
                .chunks(page_rows)
                .map(|pagev| {
                    pagev
                        .iter()
                        .fold((u32::MAX, u32::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)))
                })
                .collect();
        }
    }
    let zones = ZoneMap::from_cols(zone_cols, nrows, page_rows);
    let table = Table::from_columns(table_name, Schema::new(fields), columns, interner.clone())
        .with_zones(Arc::new(zones));
    Ok(OpenedSegment {
        table,
        mapped: map.is_mapped(),
        pages_decoded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("skinner_seg_{}_{name}.seg", std::process::id()))
    }

    fn write_sample(path: &Path, rows: usize, page_rows: usize) {
        let mut w = SegmentWriter::create(
            path,
            schema![("id", Int), ("v", Float), ("tag", Str)],
            page_rows,
        )
        .unwrap();
        for i in 0..rows {
            w.push_row(&[
                Value::Int(i as i64),
                Value::Float(i as f64 * 0.5),
                Value::from(if i % 3 == 0 { "alpha" } else { "beta" }),
            ])
            .unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn roundtrip_with_partial_tail_page() {
        let p = tmp_path("roundtrip");
        write_sample(&p, 10, 4);
        let interner = Arc::new(Interner::new());
        let opened = read_segment(&p, "t", &interner).unwrap();
        let t = &opened.table;
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.value(7, 0), Value::Int(7));
        assert_eq!(t.value(7, 1), Value::Float(3.5));
        assert_eq!(t.value(9, 2).as_str(), Some("alpha"));
        let zm = t.zones().unwrap();
        assert_eq!(zm.npages(), 3);
        assert_eq!(zm.page_range(2), (8, 10));
        match zm.col(0) {
            ZoneCol::Int(z) => assert_eq!(z, &vec![(0, 3), (4, 7), (8, 9)]),
            _ => panic!(),
        }
        assert_eq!(opened.pages_decoded, 9);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn dictionary_remaps_into_shared_interner() {
        let p = tmp_path("dict");
        write_sample(&p, 6, 4);
        let interner = Arc::new(Interner::new());
        // Pre-intern something so segment codes can't accidentally line up.
        interner.intern("unrelated");
        let opened = read_segment(&p, "t", &interner).unwrap();
        let codes: Vec<u32> = (0..6).map(|r| opened.table.column(2).code_at(r)).collect();
        assert_eq!(interner.lookup("alpha"), Some(codes[0]));
        assert_eq!(interner.lookup("beta"), Some(codes[1]));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let p = tmp_path("trunc");
        write_sample(&p, 100, 8);
        let full = std::fs::read(&p).unwrap();
        for keep in [full.len() - 1, full.len() / 2, 10, 0] {
            std::fs::write(&p, &full[..keep]).unwrap();
            let interner = Arc::new(Interner::new());
            assert!(
                read_segment(&p, "t", &interner).is_err(),
                "truncation to {keep} bytes not detected"
            );
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn bit_flip_is_detected() {
        let p = tmp_path("flip");
        write_sample(&p, 50, 8);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let interner = Arc::new(Interner::new());
        match read_segment(&p, "t", &interner) {
            Err(DiskError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_table_roundtrips() {
        let p = tmp_path("empty");
        let w = SegmentWriter::create(&p, schema![("x", Int)], 4).unwrap();
        w.finish().unwrap();
        let interner = Arc::new(Interner::new());
        let opened = read_segment(&p, "t", &interner).unwrap();
        assert_eq!(opened.table.num_rows(), 0);
        assert_eq!(opened.table.zones().unwrap().npages(), 0);
        std::fs::remove_file(p).unwrap();
    }
}
