//! Checksummed sidecar files in the data directory.
//!
//! A *sidecar* is a small auxiliary file that lives next to the manifest
//! and segments — currently the learning cache's persisted tree priors —
//! written with the same crash-safety discipline as everything else in the
//! data directory: tmp → fsync → atomic rename → directory fsync. The file
//! carries its own magic, version and whole-file FNV-1a checksum, so a
//! torn, truncated, corrupted or future-versioned sidecar is *refused*
//! (`DiskError::Corrupt`), never silently served.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! offset 0   8 bytes   magic  "SKSIDE1\n"
//! offset 8   4 bytes   version (application-chosen payload version)
//! offset 12  8 bytes   payload length
//! offset 20  n bytes   payload (opaque to this layer)
//! offset 20+n 8 bytes  FNV-1a64 over bytes [0, 20+n)
//! ```
//!
//! Sidecar filenames use a `.side` extension the orphan sweep never
//! touches (it only removes `.tmp` and unreferenced `.seg` files), so a
//! sidecar survives `DiskStore::open` even though the manifest does not
//! reference it; an interrupted sidecar write leaves only a `.side.tmp`
//! that the sweep removes.

use std::fs::{self, File};
use std::io::Write;

use crate::disk::manifest::{sync_dir, valid_table_name};
use crate::disk::segment::fnv1a64;
use crate::disk::{DiskError, DiskStore};

const MAGIC: &[u8; 8] = b"SKSIDE1\n";
const HEADER: usize = 8 + 4 + 8;
const TRAILER: usize = 8;

impl DiskStore {
    /// Atomically write (or replace) the sidecar `name` with `payload`.
    /// `version` is an application-level payload format version checked on
    /// read. `name` follows table-name rules (`[A-Za-z0-9_]+`).
    pub fn write_sidecar(&self, name: &str, version: u32, payload: &[u8]) -> Result<(), DiskError> {
        if !valid_table_name(name) {
            return Err(DiskError::InvalidName(name.to_string()));
        }
        let mut bytes = Vec::with_capacity(HEADER + payload.len() + TRAILER);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());

        let final_path = self.dir().join(format!("{name}.side"));
        let tmp = self.dir().join(format!("{name}.side.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        sync_dir(self.dir());
        Ok(())
    }

    /// Read the sidecar `name`. Returns `Ok(None)` if it does not exist,
    /// the payload if it verifies, and `DiskError::Corrupt` on a bad
    /// magic, a version other than `expect_version`, a truncated file, a
    /// length mismatch or a checksum mismatch.
    pub fn read_sidecar(
        &self,
        name: &str,
        expect_version: u32,
    ) -> Result<Option<Vec<u8>>, DiskError> {
        if !valid_table_name(name) {
            return Err(DiskError::InvalidName(name.to_string()));
        }
        let path = self.dir().join(format!("{name}.side"));
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let corrupt = |what: &str| DiskError::Corrupt(format!("{}: {what}", path.display()));
        if bytes.len() < HEADER + TRAILER {
            return Err(corrupt("truncated (shorter than header + checksum)"));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != expect_version {
            return Err(corrupt(&format!(
                "version {version}, expected {expect_version}"
            )));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        if bytes.len() != HEADER + len + TRAILER {
            return Err(corrupt("payload length mismatch"));
        }
        let stored = u64::from_le_bytes(bytes[HEADER + len..].try_into().unwrap());
        if fnv1a64(&bytes[..HEADER + len]) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        Ok(Some(bytes[HEADER..HEADER + len].to_vec()))
    }

    /// Remove the sidecar `name` if present. Returns whether it existed.
    pub fn remove_sidecar(&self, name: &str) -> Result<bool, DiskError> {
        if !valid_table_name(name) {
            return Err(DiskError::InvalidName(name.to_string()));
        }
        let path = self.dir().join(format!("{name}.side"));
        match fs::remove_file(&path) {
            Ok(()) => {
                sync_dir(self.dir());
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("skinner_side_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn roundtrip_replace_and_remove() {
        let dir = tmp_dir("rt");
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read_sidecar("priors", 1).unwrap(), None);
        store.write_sidecar("priors", 1, b"hello").unwrap();
        assert_eq!(
            store.read_sidecar("priors", 1).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        store.write_sidecar("priors", 1, b"").unwrap();
        assert_eq!(
            store.read_sidecar("priors", 1).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert!(store.remove_sidecar("priors").unwrap());
        assert!(!store.remove_sidecar("priors").unwrap());
        assert_eq!(store.read_sidecar("priors", 1).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_refused() {
        let dir = tmp_dir("ver");
        let store = DiskStore::open(&dir).unwrap();
        store.write_sidecar("priors", 2, b"payload").unwrap();
        assert!(matches!(
            store.read_sidecar("priors", 1),
            Err(DiskError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_and_corruption_refused() {
        let dir = tmp_dir("hostile");
        let store = DiskStore::open(&dir).unwrap();
        store
            .write_sidecar("priors", 1, b"some payload bytes")
            .unwrap();
        let path = dir.join("priors.side");
        let good = fs::read(&path).unwrap();

        // Truncate at every length short of the full file: all refused.
        for cut in [0, 1, 7, 8, 19, 20, good.len() - 1] {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(
                matches!(store.read_sidecar("priors", 1), Err(DiskError::Corrupt(_))),
                "truncation to {cut} bytes must be refused"
            );
        }
        // Flip one payload bit: checksum catches it.
        let mut bad = good.clone();
        bad[25] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            store.read_sidecar("priors", 1),
            Err(DiskError::Corrupt(_))
        ));
        // Restore: verifies again.
        fs::write(&path, &good).unwrap();
        assert!(store.read_sidecar("priors", 1).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_reopen_but_tmp_is_swept() {
        let dir = tmp_dir("reopen");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.write_sidecar("priors", 1, b"persisted").unwrap();
        }
        fs::write(dir.join("priors.side.tmp"), b"interrupted").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert!(!dir.join("priors.side.tmp").exists(), "tmp debris swept");
        assert_eq!(
            store.read_sidecar("priors", 1).unwrap().as_deref(),
            Some(&b"persisted"[..])
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_sidecar_names_rejected() {
        let dir = tmp_dir("names");
        let store = DiskStore::open(&dir).unwrap();
        for bad in ["", "a/b", "../evil", "dot.dot"] {
            assert!(matches!(
                store.write_sidecar(bad, 1, b""),
                Err(DiskError::InvalidName(_))
            ));
            assert!(matches!(
                store.read_sidecar(bad, 1),
                Err(DiskError::InvalidName(_))
            ));
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
