//! Per-page min/max zone maps.
//!
//! A zone map carries, for every column and every fixed-size page of rows,
//! the minimum and maximum value on that page. The scan path uses them to
//! prove a unary predicate false for a whole page without evaluating it
//! row by row (see `skinner_exec::zonescan`).
//!
//! Soundness notes baked into construction:
//!
//! - Float bounds are taken over the **non-NaN** values of a page. A NaN
//!   row can never satisfy a comparison predicate (SQL comparisons with
//!   NaN evaluate false in this engine), so excluding NaNs keeps the
//!   bounds usable: if the bounds refute the predicate, the non-NaN rows
//!   fail it by the bounds and the NaN rows fail it by NaN semantics.
//!   A page that is *all* NaN gets the empty-marker bounds
//!   `(INFINITY, NEG_INFINITY)`, which every comparison refutes.
//! - String pages store min/max **interner codes**. Codes are assigned in
//!   interning order, not lexicographic order, so string zones support
//!   equality/membership pruning only — never range pruning.

use crate::column::Column;

/// Zone bounds for one column, one `(min, max)` pair per page.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneCol {
    Int(Vec<(i64, i64)>),
    Float(Vec<(f64, f64)>),
    /// Min/max interner codes — valid for equality pruning only.
    Str(Vec<(u32, u32)>),
}

impl ZoneCol {
    pub fn npages(&self) -> usize {
        match self {
            ZoneCol::Int(v) => v.len(),
            ZoneCol::Float(v) => v.len(),
            ZoneCol::Str(v) => v.len(),
        }
    }
}

/// Per-page min/max bounds for every column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    page_rows: usize,
    nrows: usize,
    cols: Vec<ZoneCol>,
}

impl ZoneMap {
    /// Build a zone map over fully decoded columns.
    pub fn build(columns: &[Column], nrows: usize, page_rows: usize) -> ZoneMap {
        assert!(page_rows > 0, "page_rows must be positive");
        let cols = columns
            .iter()
            .map(|c| {
                debug_assert_eq!(c.len(), nrows);
                match c {
                    Column::Int(v) => ZoneCol::Int(
                        v.chunks(page_rows)
                            .map(|page| {
                                page.iter().fold((i64::MAX, i64::MIN), |(lo, hi), &x| {
                                    (lo.min(x), hi.max(x))
                                })
                            })
                            .collect(),
                    ),
                    Column::Float(v) => ZoneCol::Float(
                        v.chunks(page_rows)
                            .map(|page| {
                                // NaNs excluded; all-NaN pages keep the
                                // (INF, -INF) empty marker.
                                page.iter()
                                    .filter(|x| !x.is_nan())
                                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                                        (lo.min(x), hi.max(x))
                                    })
                            })
                            .collect(),
                    ),
                    Column::Str(v) => ZoneCol::Str(
                        v.chunks(page_rows)
                            .map(|page| {
                                page.iter().fold((u32::MAX, u32::MIN), |(lo, hi), &x| {
                                    (lo.min(x), hi.max(x))
                                })
                            })
                            .collect(),
                    ),
                }
            })
            .collect();
        ZoneMap {
            page_rows,
            nrows,
            cols,
        }
    }

    /// Assemble from precomputed per-column zones (segment open path).
    pub fn from_cols(cols: Vec<ZoneCol>, nrows: usize, page_rows: usize) -> ZoneMap {
        assert!(page_rows > 0, "page_rows must be positive");
        let npages = nrows.div_ceil(page_rows);
        for c in &cols {
            assert_eq!(c.npages(), npages, "zone column page-count mismatch");
        }
        ZoneMap {
            page_rows,
            nrows,
            cols,
        }
    }

    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of pages (same for every column).
    pub fn npages(&self) -> usize {
        self.nrows.div_ceil(self.page_rows)
    }

    /// Zones for column `col`.
    pub fn col(&self, col: usize) -> &ZoneCol {
        &self.cols[col]
    }

    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Row range `[start, end)` covered by `page`.
    pub fn page_range(&self, page: usize) -> (usize, usize) {
        let start = page * self.page_rows;
        (start, (start + self.page_rows).min(self.nrows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_bounds_per_page() {
        let col = Column::Int((0..10).collect());
        let zm = ZoneMap::build(&[col], 10, 4);
        assert_eq!(zm.npages(), 3);
        assert_eq!(zm.col(0), &ZoneCol::Int(vec![(0, 3), (4, 7), (8, 9)]));
        assert_eq!(zm.page_range(2), (8, 10));
    }

    #[test]
    fn float_bounds_skip_nans() {
        let col = Column::Float(vec![1.0, f64::NAN, 3.0, f64::NAN, f64::NAN, f64::NAN]);
        let zm = ZoneMap::build(&[col], 6, 3);
        match zm.col(0) {
            ZoneCol::Float(pages) => {
                assert_eq!(pages[0], (1.0, 3.0));
                // all-NaN page keeps the empty marker: min > max
                assert!(pages[1].0 > pages[1].1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn str_bounds_are_code_ranges() {
        let col = Column::Str(vec![5, 2, 9, 1]);
        let zm = ZoneMap::build(&[col], 4, 2);
        assert_eq!(zm.col(0), &ZoneCol::Str(vec![(2, 5), (1, 9)]));
    }
}
