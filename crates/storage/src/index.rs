//! Equality hash indexes with sorted posting lists.
//!
//! The paper's customized engine (Section 4.5) extends the multi-way join to
//! "jump directly to the next highest tuple index that satisfies at least all
//! applicable equality predicates". That jump is exactly
//! [`HashIndex::next_match`]: posting lists are kept sorted, so finding the
//! first row `>= from` with a given key is a hash lookup plus a binary
//! search.

use std::collections::HashMap;

use crate::column::Column;
use crate::RowId;

/// Hash index over one column: canonical key (`Column::key_at`) → sorted rows.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    postings: HashMap<u64, Vec<RowId>>,
}

impl HashIndex {
    /// Build an index over all rows of `column`.
    pub fn build(column: &Column) -> Self {
        Self::build_range(column, 0, column.len() as RowId)
    }

    /// Build an index over the row range `[lo, hi)` of `column`. Chunked
    /// builds are merged by parallel pre-processing.
    pub fn build_range(column: &Column, lo: RowId, hi: RowId) -> Self {
        let mut postings: HashMap<u64, Vec<RowId>> = HashMap::new();
        for row in lo..hi {
            postings.entry(column.key_at(row)).or_default().push(row);
        }
        // Rows are inserted in increasing order, so lists are already sorted.
        HashIndex { postings }
    }

    /// Merge another index into this one. Posting lists stay sorted as long
    /// as `other` covers strictly higher row ids (the chunked-build case);
    /// otherwise they are re-sorted.
    pub fn merge(&mut self, other: HashIndex) {
        for (k, mut rows) in other.postings {
            match self.postings.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(rows);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let list = e.get_mut();
                    let needs_sort = list.last().copied() >= rows.first().copied();
                    list.append(&mut rows);
                    if needs_sort {
                        list.sort_unstable();
                    }
                }
            }
        }
    }

    /// All rows whose key equals `key`, ascending. Empty slice if none.
    #[inline]
    pub fn lookup(&self, key: u64) -> &[RowId] {
        self.postings.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Smallest row `>= from` whose key equals `key` — the paper's "jump".
    #[inline]
    pub fn next_match(&self, key: u64, from: RowId) -> Option<RowId> {
        let rows = self.postings.get(&key)?;
        let pos = rows.partition_point(|&r| r < from);
        rows.get(pos).copied()
    }

    /// Number of rows with key equal to `key`.
    #[inline]
    pub fn count(&self, key: u64) -> usize {
        self.postings.get(&key).map_or(0, Vec::len)
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.postings.len()
    }

    /// Approximate heap size in bytes (Figure 8 memory accounting).
    pub fn byte_size(&self) -> usize {
        self.postings.values().map(|v| 8 + v.len() * 4 + 16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Column {
        Column::Int(vec![7, 3, 7, 5, 3, 7])
    }

    #[test]
    fn lookup_returns_sorted_rows() {
        let idx = HashIndex::build(&col());
        assert_eq!(idx.lookup(7_u64), &[0, 2, 5]);
        assert_eq!(idx.lookup(3), &[1, 4]);
        assert_eq!(idx.lookup(99), &[] as &[RowId]);
    }

    #[test]
    fn next_match_jumps_forward() {
        let idx = HashIndex::build(&col());
        assert_eq!(idx.next_match(7, 0), Some(0));
        assert_eq!(idx.next_match(7, 1), Some(2));
        assert_eq!(idx.next_match(7, 3), Some(5));
        assert_eq!(idx.next_match(7, 6), None);
        assert_eq!(idx.next_match(42, 0), None);
    }

    #[test]
    fn range_build_plus_merge_equals_full_build() {
        let c = col();
        let mut a = HashIndex::build_range(&c, 0, 3);
        let b = HashIndex::build_range(&c, 3, 6);
        a.merge(b);
        let full = HashIndex::build(&c);
        for key in [3u64, 5, 7] {
            assert_eq!(a.lookup(key), full.lookup(key));
        }
        assert_eq!(a.num_keys(), full.num_keys());
    }

    #[test]
    fn merge_out_of_order_resorts() {
        let c = col();
        let mut hi = HashIndex::build_range(&c, 3, 6);
        let lo = HashIndex::build_range(&c, 0, 3);
        hi.merge(lo);
        assert_eq!(hi.lookup(7), &[0, 2, 5]);
    }

    #[test]
    fn count_and_num_keys() {
        let idx = HashIndex::build(&col());
        assert_eq!(idx.count(7), 3);
        assert_eq!(idx.count(5), 1);
        assert_eq!(idx.num_keys(), 3);
    }
}
