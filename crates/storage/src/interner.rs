//! Catalog-wide string interner.
//!
//! All string columns of all tables in one [`crate::Catalog`] share a single
//! interner, so string equality anywhere in the system — unary predicates,
//! equality join predicates, hash-index keys — reduces to a `u32` code
//! comparison. This is what lets the multi-way join engine canonicalize every
//! equality key into a `u64` (see `skinner-core`).
//!
//! The interner is append-only: codes, once handed out, never change, so
//! readers may cache codes freely. Interning is guarded by a `parking_lot`
//! lock; reads of already-interned strings take the read path only.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Append-only string interner. Thread-safe; cheap to share via `Arc`.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    strings: Vec<Arc<str>>,
    codes: HashMap<Arc<str>, u32>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable code. Idempotent.
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(&c) = self.inner.read().codes.get(s) {
            return c;
        }
        let mut inner = self.inner.write();
        if let Some(&c) = inner.codes.get(s) {
            return c;
        }
        let code = u32::try_from(inner.strings.len()).expect("interner overflow");
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(arc.clone());
        inner.codes.insert(arc, code);
        code
    }

    /// Look up the code for `s` without interning. `None` if never seen.
    ///
    /// Useful at bind time: a string literal that was never loaded into any
    /// table cannot match any row, so the binder can fold the predicate to
    /// a comparison against an impossible code.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.inner.read().codes.get(s).copied()
    }

    /// Resolve a code back to its string. Panics on an unknown code, which
    /// indicates a cross-catalog mixup (a bug, not a user error).
    pub fn resolve(&self, code: u32) -> Arc<str> {
        self.inner.read().strings[code as usize].clone()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// True if no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn codes_are_dense_and_resolvable() {
        let i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(&*i.resolve(a), "a");
        assert_eq!(&*i.resolve(b), "b");
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.lookup("ghost"), None);
        assert_eq!(i.len(), 0);
        i.intern("ghost");
        assert_eq!(i.lookup("ghost"), Some(0));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let i = Arc::new(Interner::new());
        let mut handles = vec![];
        for t in 0..4 {
            let i = i.clone();
            handles.push(std::thread::spawn(move || {
                let mut codes = vec![];
                for k in 0..100 {
                    codes.push(i.intern(&format!("s{}", (k + t) % 50)));
                }
                codes
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 50 distinct strings regardless of interleaving.
        assert_eq!(i.len(), 50);
        // Every code resolves back to a string that re-interns to itself.
        for c in 0..50u32 {
            let s = i.resolve(c);
            assert_eq!(i.intern(&s), c);
        }
    }
}
