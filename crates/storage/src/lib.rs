//! In-memory column store used by all SkinnerDB execution engines.
//!
//! The storage layer follows the requirements spelled out in Section 4.5 of
//! the SkinnerDB paper: a *column store architecture* (fast access to selected
//! columns) over a *main-memory resident* data set, so that tuples can be
//! represented as small vectors of tuple indices and materialized lazily.
//!
//! Main entry points:
//! * [`Table`] / [`TableBuilder`] — typed, immutable, columnar tables,
//! * [`Catalog`] — a named collection of tables sharing one [`Interner`],
//! * [`HashIndex`] — equality index with *sorted* posting lists, which is what
//!   enables the "jump to the next matching tuple index" trick of the
//!   multi-way join (paper Section 4.5),
//! * [`Value`] / [`DataType`] — the scalar type system.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod disk;
pub mod index;
pub mod interner;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::Column;
pub use csv::read_csv;
pub use disk::{bulk_load_csv, DiskError, DiskStore, ZoneCol, ZoneMap};
pub use index::HashIndex;
pub use interner::Interner;
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};

/// Row identifier within a single table. Tables are capped at `u32::MAX` rows,
/// which keeps execution-state vectors (one entry per table) compact — the
/// paper stresses that small execution state is what makes join order
/// switching cheap.
pub type RowId = u32;
