//! Table schemas: ordered, named, typed fields.

use crate::value::DataType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields. Column positions are stable and are what the
/// bound query IR refers to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column named `name` (case-insensitive, SQL-style).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }
}

/// Convenience constructor used pervasively in tests and generators:
/// `schema![("a", Int), ("b", Str)]`.
#[macro_export]
macro_rules! schema {
    ($(($name:expr, $dt:ident)),* $(,)?) => {
        $crate::Schema::new(vec![
            $($crate::Field::new($name, $crate::DataType::$dt)),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema![("Alpha", Int), ("beta", Str)];
        assert_eq!(s.index_of("alpha"), Some(0));
        assert_eq!(s.index_of("BETA"), Some(1));
        assert_eq!(s.index_of("gamma"), None);
    }

    #[test]
    fn fields_keep_order() {
        let s = schema![("a", Int), ("b", Float), ("c", Str)];
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(1).name, "b");
        assert_eq!(s.field(2).dtype, DataType::Str);
    }
}
