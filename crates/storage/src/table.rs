//! Immutable columnar tables and their builder.

use std::sync::{Arc, OnceLock};

use crate::column::Column;
use crate::disk::zonemap::ZoneMap;
use crate::interner::Interner;
use crate::schema::Schema;
use crate::value::{DataType, Value};
use crate::RowId;

/// An immutable, main-memory, columnar table.
///
/// Tables are shared via `Arc` between the catalog, query plans and engines;
/// pre-processing produces new (filtered) `Table`s rather than mutating.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    interner: Arc<Interner>,
    nrows: usize,
    /// Process-wide unique id. Caches keyed by table identity (e.g. the
    /// statistics cache) must use this, never the `Arc` address: a dropped
    /// temp table's allocation can be reused for a different table, so
    /// pointer-keyed caches serve stale entries nondeterministically.
    uid: u64,
    /// Per-page min/max bounds, present on tables decoded from disk
    /// segments. The scan path uses them to skip per-page predicate
    /// evaluation; `None` (in-memory tables, `gather` outputs) means scan
    /// every row, exactly the pre-existing behavior.
    zones: Option<Arc<ZoneMap>>,
    /// Lazily computed logical-content fingerprint; see
    /// [`Table::fingerprint`]. Unlike `uid`, two tables with identical
    /// schema and data hash identically — across processes and across a
    /// persist/reload roundtrip.
    fingerprint: OnceLock<u64>,
}

/// Source of process-wide unique table ids.
static NEXT_TABLE_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn fresh_table_uid() -> u64 {
    NEXT_TABLE_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Table {
    /// Build a table directly from columns. Panics if column lengths differ
    /// from each other or types differ from the schema (programming error).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        interner: Arc<Interner>,
    ) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let nrows = columns.first().map_or(0, Column::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            assert_eq!(c.len(), nrows, "ragged columns in table {:?}", f.name);
            assert_eq!(c.dtype(), f.dtype, "column {:?} type mismatch", f.name);
        }
        Table {
            name: name.into(),
            schema,
            columns,
            interner,
            nrows,
            uid: fresh_table_uid(),
            zones: None,
            fingerprint: OnceLock::new(),
        }
    }

    /// Attach a zone map (segment open path). Panics if the map does not
    /// cover exactly this table's rows and columns.
    pub fn with_zones(mut self, zones: Arc<ZoneMap>) -> Self {
        assert_eq!(zones.nrows(), self.nrows, "zone map row-count mismatch");
        assert_eq!(
            zones.ncols(),
            self.columns.len(),
            "zone map column-count mismatch"
        );
        self.zones = Some(zones);
        self
    }

    /// Per-page min/max bounds, if this table came from a disk segment.
    pub fn zones(&self) -> Option<&Arc<ZoneMap>> {
        self.zones.as_ref()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process-wide unique table id (stable for this table's lifetime,
    /// never reused).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Cardinality as `u32`; row ids fit by construction.
    pub fn cardinality(&self) -> RowId {
        self.nrows as RowId
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Materialize one cell.
    pub fn value(&self, row: RowId, col: usize) -> Value {
        self.columns[col].value_at(row, &self.interner)
    }

    /// Materialize a whole row (used by the post-processor and tests).
    pub fn row_values(&self, row: RowId) -> Vec<Value> {
        (0..self.columns.len())
            .map(|c| self.value(row, c))
            .collect()
    }

    /// New table with only `rows`, in order. This is how pre-processing
    /// applies unary predicates: engines afterwards work on dense row ids
    /// `0..n` of the filtered table.
    pub fn gather(&self, rows: &[RowId], name: impl Into<String>) -> Table {
        let columns = self.columns.iter().map(|c| c.gather(rows)).collect();
        // Gathered rows are no longer page-aligned, so zones do not carry over.
        Table {
            name: name.into(),
            schema: self.schema.clone(),
            columns,
            interner: self.interner.clone(),
            nrows: rows.len(),
            uid: fresh_table_uid(),
            zones: None,
            fingerprint: OnceLock::new(),
        }
    }

    /// Approximate heap size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Content-derived table identity: an FNV-1a hash over the schema
    /// (field names and types), the row count, and every column's logical
    /// values. Computed lazily, once per table incarnation.
    ///
    /// Properties the learning cache relies on:
    ///
    /// * **Process-independent.** String columns hash the *resolved* strings,
    ///   not interner codes (codes depend on interning order); floats hash
    ///   their exact bit pattern, which the disk segment format round-trips.
    ///   A table therefore keeps its fingerprint across save → restart →
    ///   load, which is what lets persisted priors survive restarts.
    /// * **Content-sensitive.** Re-creating a table with the same name but
    ///   different rows produces a different fingerprint, so stale priors
    ///   are refused rather than served.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            // FNV-1a, 64-bit; matches the checksum family used by the disk
            // segment format.
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = OFFSET;
            let mut eat = |bytes: &[u8]| {
                for &b in bytes {
                    h ^= b as u64;
                    h = h.wrapping_mul(PRIME);
                }
            };
            for f in self.schema.fields() {
                eat(f.name.as_bytes());
                eat(&[0u8, f.dtype as u8]);
            }
            eat(&(self.nrows as u64).to_le_bytes());
            for c in &self.columns {
                match c {
                    Column::Int(v) => {
                        eat(&[1u8]);
                        for x in v {
                            eat(&x.to_le_bytes());
                        }
                    }
                    Column::Float(v) => {
                        eat(&[2u8]);
                        for x in v {
                            eat(&x.to_bits().to_le_bytes());
                        }
                    }
                    Column::Str(v) => {
                        eat(&[3u8]);
                        for &code in v {
                            let s = self.interner.resolve(code);
                            eat(&(s.len() as u32).to_le_bytes());
                            eat(s.as_bytes());
                        }
                    }
                }
            }
            h
        })
    }
}

/// Row-at-a-time table builder with type checking and string interning.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    interner: Arc<Interner>,
    ints: Vec<Vec<i64>>,
    floats: Vec<Vec<f64>>,
    codes: Vec<Vec<u32>>,
    /// For each schema position: (which typed vec family, index within it).
    slots: Vec<(DataType, usize)>,
    nrows: usize,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>, schema: Schema, interner: Arc<Interner>) -> Self {
        let mut ints = vec![];
        let mut floats = vec![];
        let mut codes = vec![];
        let mut slots = vec![];
        for f in schema.fields() {
            match f.dtype {
                DataType::Int => {
                    slots.push((DataType::Int, ints.len()));
                    ints.push(vec![]);
                }
                DataType::Float => {
                    slots.push((DataType::Float, floats.len()));
                    floats.push(vec![]);
                }
                DataType::Str => {
                    slots.push((DataType::Str, codes.len()));
                    codes.push(vec![]);
                }
            }
        }
        TableBuilder {
            name: name.into(),
            schema,
            interner,
            ints,
            floats,
            codes,
            slots,
            nrows: 0,
        }
    }

    /// Append one row. Panics on arity or type mismatch (programming error;
    /// generators and tests construct rows structurally).
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.slots.len(), "row arity mismatch");
        for (i, v) in row.iter().enumerate() {
            let (dt, idx) = self.slots[i];
            match (dt, v) {
                (DataType::Int, Value::Int(x)) => self.ints[idx].push(*x),
                (DataType::Float, Value::Float(x)) => self.floats[idx].push(*x),
                (DataType::Float, Value::Int(x)) => self.floats[idx].push(*x as f64),
                (DataType::Str, Value::Str(s)) => self.codes[idx].push(self.interner.intern(s)),
                (dt, v) => panic!(
                    "type mismatch in column {} of {}: expected {dt}, got {v:?}",
                    self.schema.field(i).name,
                    self.name
                ),
            }
        }
        self.nrows += 1;
    }

    /// Fast paths for generators: append a single cell column-wise. The
    /// caller must fill every column the same number of times before
    /// [`TableBuilder::finish`]; `finish` asserts this.
    pub fn push_int(&mut self, col: usize, v: i64) {
        let (dt, idx) = self.slots[col];
        debug_assert_eq!(dt, DataType::Int);
        self.ints[idx].push(v);
    }

    pub fn push_float(&mut self, col: usize, v: f64) {
        let (dt, idx) = self.slots[col];
        debug_assert_eq!(dt, DataType::Float);
        self.floats[idx].push(v);
    }

    pub fn push_str(&mut self, col: usize, v: &str) {
        let (dt, idx) = self.slots[col];
        debug_assert_eq!(dt, DataType::Str);
        let code = self.interner.intern(v);
        self.codes[idx].push(code);
    }

    /// Number of rows pushed via [`TableBuilder::push_row`].
    pub fn len(&self) -> usize {
        self.nrows
    }

    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Finish into an immutable [`Table`].
    pub fn finish(self) -> Table {
        let mut columns = Vec::with_capacity(self.slots.len());
        let TableBuilder {
            name,
            schema,
            interner,
            mut ints,
            mut floats,
            mut codes,
            slots,
            ..
        } = self;
        for &(dt, idx) in &slots {
            columns.push(match dt {
                DataType::Int => Column::Int(std::mem::take(&mut ints[idx])),
                DataType::Float => Column::Float(std::mem::take(&mut floats[idx])),
                DataType::Str => Column::Str(std::mem::take(&mut codes[idx])),
            });
        }
        Table::from_columns(name, schema, columns, interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;

    fn sample() -> Table {
        let interner = Arc::new(Interner::new());
        let mut b = TableBuilder::new(
            "t",
            schema![("id", Int), ("score", Float), ("tag", Str)],
            interner,
        );
        b.push_row(&[Value::Int(1), Value::Float(0.5), Value::from("a")]);
        b.push_row(&[Value::Int(2), Value::Float(1.5), Value::from("b")]);
        b.push_row(&[Value::Int(3), Value::Float(2.5), Value::from("a")]);
        b.finish()
    }

    #[test]
    fn build_and_read_back() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(2, 2).as_str(), Some("a"));
        // Shared interner: rows 0 and 2 have the same code for "a".
        assert_eq!(t.column(2).code_at(0), t.column(2).code_at(2));
    }

    #[test]
    fn int_widens_to_float_column() {
        let interner = Arc::new(Interner::new());
        let mut b = TableBuilder::new("t", schema![("x", Float)], interner);
        b.push_row(&[Value::Int(4)]);
        let t = b.finish();
        assert_eq!(t.value(0, 0), Value::Float(4.0));
    }

    #[test]
    fn gather_produces_filtered_table() {
        let t = sample();
        let f = t.gather(&[2, 0], "t_f");
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, 0), Value::Int(3));
        assert_eq!(f.value(1, 0), Value::Int(1));
        assert_eq!(f.name(), "t_f");
    }

    #[test]
    fn row_values_materializes_all_columns() {
        let t = sample();
        let row = t.row_values(1);
        assert_eq!(row.len(), 3);
        assert_eq!(row[2].as_str(), Some("b"));
    }

    #[test]
    fn fingerprint_is_content_derived_not_identity_derived() {
        let a = sample();
        let b = sample();
        assert_ne!(a.uid(), b.uid(), "uids are process-unique");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same content must fingerprint identically"
        );

        // Different interners (hence different codes) for equal strings
        // must not change the fingerprint.
        let interner = Arc::new(Interner::new());
        interner.intern("zzz");
        let mut c = TableBuilder::new(
            "t",
            schema![("id", Int), ("score", Float), ("tag", Str)],
            interner,
        );
        c.push_row(&[Value::Int(1), Value::Float(0.5), Value::from("a")]);
        c.push_row(&[Value::Int(2), Value::Float(1.5), Value::from("b")]);
        c.push_row(&[Value::Int(3), Value::Float(2.5), Value::from("a")]);
        let c = c.finish();
        assert_ne!(c.column(2).code_at(0), b.column(2).code_at(0));
        assert_eq!(c.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_changes_with_content_schema_or_order() {
        let base = sample();
        let mut alt = TableBuilder::new(
            "t",
            schema![("id", Int), ("score", Float), ("tag", Str)],
            Arc::new(Interner::new()),
        );
        alt.push_row(&[Value::Int(1), Value::Float(0.5), Value::from("a")]);
        alt.push_row(&[Value::Int(2), Value::Float(1.5), Value::from("b")]);
        alt.push_row(&[Value::Int(4), Value::Float(2.5), Value::from("a")]);
        assert_ne!(alt.finish().fingerprint(), base.fingerprint());

        // Row order matters: gather in a different order is different data.
        let reordered = base.gather(&[2, 1, 0], "t");
        assert_ne!(reordered.fingerprint(), base.fingerprint());
        // But an identity gather preserves the fingerprint (fresh uid).
        let same = base.gather(&[0, 1, 2], "t");
        assert_ne!(same.uid(), base.uid());
        assert_eq!(same.fingerprint(), base.fingerprint());
    }

    #[test]
    #[should_panic]
    fn type_mismatch_panics() {
        let interner = Arc::new(Interner::new());
        let mut b = TableBuilder::new("t", schema![("x", Int)], interner);
        b.push_row(&[Value::from("not an int")]);
    }
}
