//! Scalar values and data types.
//!
//! SkinnerDB's engines mostly operate on raw column data and row indices;
//! [`Value`] only appears at the boundaries: literals in queries, arguments to
//! user-defined functions, and materialized result rows.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer. Also used for dates (days since epoch) and
    /// booleans (0/1) — the TPC-H generator uses both encodings.
    Int,
    /// 64-bit IEEE float. Used for decimals (e.g. TPC-H prices).
    Float,
    /// Interned string; the column stores `u32` codes into the catalog-wide
    /// [`crate::Interner`].
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STRING"),
        }
    }
}

/// A single scalar value.
///
/// Strings are reference-counted so that cloning values out of the interner
/// is cheap; the interner hands out `Arc<str>`.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(Arc<str>),
}

impl Value {
    /// Data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Interpret the value as a boolean: integers are true iff non-zero.
    /// Floats and strings are never treated as booleans.
    pub fn as_bool(&self) -> bool {
        matches!(self, Value::Int(i) if *i != 0)
    }

    /// Numeric view (ints widen to float); `None` for strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style comparison. Numeric types compare numerically with int→float
    /// widening; strings compare lexicographically. Comparing a string with a
    /// number returns `None` (a bound query never does this; the binder
    /// rejects it).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL-style equality (via [`Value::compare`]).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(v as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_of_values() {
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.5).data_type(), DataType::Float);
        assert_eq!(Value::from("x").data_type(), DataType::Str);
    }

    #[test]
    fn bool_semantics() {
        assert!(Value::Int(1).as_bool());
        assert!(Value::Int(-7).as_bool());
        assert!(!Value::Int(0).as_bool());
        assert!(!Value::Float(1.0).as_bool());
        assert!(!Value::from("true").as_bool());
    }

    #[test]
    fn numeric_widening_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.5).compare(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn string_comparison() {
        assert_eq!(
            Value::from("abc").compare(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert!(Value::from("x").sql_eq(&Value::from("x")));
    }

    #[test]
    fn cross_type_comparison_is_none() {
        assert_eq!(Value::from("1").compare(&Value::Int(1)), None);
        assert!(!Value::from("1").sql_eq(&Value::Int(1)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }
}
