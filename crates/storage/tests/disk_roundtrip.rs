//! Property tests for the paged segment format: random data of every
//! column type must round-trip through page encode/decode bit-identically,
//! and the zone maps attached at segment open must actually bound every
//! page's values (an unsound bound would silently drop result rows once
//! the scan planner starts pruning).

use std::sync::Arc;

use proptest::prelude::*;

use skinner_storage::disk::page::{decode_codes, decode_float, decode_int, encode_page, PageData};
use skinner_storage::disk::segment::{read_segment, SegmentWriter};
use skinner_storage::disk::ZoneCol;
use skinner_storage::{schema, Column, Interner, Value};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    #[test]
    fn int_pages_roundtrip(vals in proptest::collection::vec(any::<i64>(), 1..300)) {
        let mut buf = Vec::new();
        encode_page(&PageData::Int(vals.clone()), &mut buf);
        prop_assert_eq!(decode_int(&buf, vals.len()).unwrap(), vals);
    }

    #[test]
    fn narrow_int_pages_roundtrip_compactly(
        base in -1000i64..1000,
        deltas in proptest::collection::vec(0i64..200, 1..300),
    ) {
        // Frame-of-reference territory: values in a narrow band must
        // round-trip AND beat raw encoding in size.
        let vals: Vec<i64> = deltas.iter().map(|d| base + d).collect();
        let mut buf = Vec::new();
        encode_page(&PageData::Int(vals.clone()), &mut buf);
        prop_assert_eq!(decode_int(&buf, vals.len()).unwrap(), vals.clone());
        if vals.len() >= 16 {
            prop_assert!(buf.len() < vals.len() * 8);
        }
    }

    #[test]
    fn float_pages_roundtrip_bit_exactly(bits in proptest::collection::vec(any::<u64>(), 1..300)) {
        // Arbitrary bit patterns: NaNs (any payload), infinities, -0.0,
        // subnormals. The page codec must preserve them all exactly.
        let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = Vec::new();
        encode_page(&PageData::Float(vals.clone()), &mut buf);
        let back = decode_float(&buf, vals.len()).unwrap();
        let got: Vec<u64> = back.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(got, bits);
    }

    #[test]
    fn code_pages_roundtrip(vals in proptest::collection::vec(any::<u32>(), 1..300)) {
        let mut buf = Vec::new();
        encode_page(&PageData::Codes(vals.clone()), &mut buf);
        prop_assert_eq!(decode_codes(&buf, vals.len()).unwrap(), vals);
    }
}

/// One random row of the three-column (Int, Float, Str) test schema.
type Row = (i64, u64, u8);

fn rows_strategy() -> impl proptest::strategy::Strategy<Value = Vec<Row>> {
    proptest::collection::vec((any::<i64>(), any::<u64>(), 0u8..6), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    #[test]
    fn segments_roundtrip_every_value_type(rows in rows_strategy(), page_rows in 1usize..40) {
        let dir = std::env::temp_dir()
            .join(format!("skinner_prop_seg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("p{page_rows}_{}.seg", rows.len()));
        let sch = schema![("a", Int), ("b", Float), ("c", Str)];
        let mut w = SegmentWriter::create(&path, sch, page_rows).unwrap();
        for &(a, b, c) in &rows {
            w.push_row(&[
                Value::Int(a),
                Value::Float(f64::from_bits(b)),
                Value::from(format!("s{c}").as_str()),
            ])
            .unwrap();
        }
        w.finish().unwrap();

        let interner = Arc::new(Interner::new());
        let opened = read_segment(&path, "t", &interner).unwrap();
        let t = &opened.table;
        prop_assert_eq!(t.num_rows(), rows.len());
        for (r, &(a, b, c)) in rows.iter().enumerate() {
            let r = r as skinner_storage::RowId;
            prop_assert_eq!(t.value(r, 0), Value::Int(a));
            match t.value(r, 1) {
                Value::Float(f) => prop_assert_eq!(f.to_bits(), b),
                other => prop_assert!(false, "expected float, got {:?}", other),
            }
            prop_assert_eq!(t.value(r, 2).as_str(), Some(format!("s{c}").as_str()));
        }

        // Zone-map soundness: every page's bounds must contain every value
        // in that page (non-NaN for floats; the (∞, -∞) marker is only
        // legal when the page holds no comparable value at all).
        let zones = t.zones().expect("opened segments carry zone maps");
        prop_assert_eq!(zones.nrows(), rows.len());
        for page in 0..zones.npages() {
            let (lo_row, hi_row) = zones.page_range(page);
            match (zones.col(0), t.column(0)) {
                (ZoneCol::Int(b), Column::Int(vals)) => {
                    let (lo, hi) = b[page];
                    for &v in &vals[lo_row..hi_row] {
                        prop_assert!(lo <= v && v <= hi);
                    }
                }
                _ => prop_assert!(false, "col 0 zone/column type mismatch"),
            }
            match (zones.col(1), t.column(1)) {
                (ZoneCol::Float(b), Column::Float(vals)) => {
                    let (lo, hi) = b[page];
                    let mut comparable = 0usize;
                    for &v in &vals[lo_row..hi_row] {
                        if !v.is_nan() {
                            comparable += 1;
                            prop_assert!(lo <= v && v <= hi);
                        }
                    }
                    if comparable == 0 {
                        prop_assert!(lo > hi, "all-NaN page must keep the empty marker");
                    }
                }
                _ => prop_assert!(false, "col 1 zone/column type mismatch"),
            }
            match (zones.col(2), t.column(2)) {
                (ZoneCol::Str(b), Column::Str(codes)) => {
                    let (lo, hi) = b[page];
                    for &v in &codes[lo_row..hi_row] {
                        prop_assert!(lo <= v && v <= hi);
                    }
                }
                _ => prop_assert!(false, "col 2 zone/column type mismatch"),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
