//! Property tests for the hash index: `next_match` must agree with a naive
//! linear scan for arbitrary data and probe positions, and chunked
//! build+merge must equal a full build. The "jump" correctness of the
//! multi-way join rests on exactly these properties.

use proptest::prelude::*;

use skinner_storage::{Column, HashIndex, RowId};

fn naive_next_match(data: &[i64], key: i64, from: RowId) -> Option<RowId> {
    (from as usize..data.len())
        .find(|&i| data[i] == key)
        .map(|i| i as RowId)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn next_match_equals_linear_scan(
        data in proptest::collection::vec(-5i64..5, 0..200),
        key in -6i64..6,
        from in 0u32..220,
    ) {
        let col = Column::Int(data.clone());
        let idx = HashIndex::build(&col);
        prop_assert_eq!(
            idx.next_match(key as u64, from),
            naive_next_match(&data, key, from)
        );
    }

    #[test]
    fn chunked_build_equals_full_build(
        data in proptest::collection::vec(-4i64..4, 1..150),
        split in 0usize..150,
    ) {
        let col = Column::Int(data.clone());
        let split = (split.min(data.len())) as RowId;
        let mut a = HashIndex::build_range(&col, 0, split);
        let b = HashIndex::build_range(&col, split, data.len() as RowId);
        a.merge(b);
        let full = HashIndex::build(&col);
        for key in -4i64..4 {
            prop_assert_eq!(a.lookup(key as u64), full.lookup(key as u64), "key {}", key);
        }
    }

    #[test]
    fn lookup_rows_are_sorted_and_complete(
        data in proptest::collection::vec(0i64..3, 0..100),
    ) {
        let col = Column::Int(data.clone());
        let idx = HashIndex::build(&col);
        let mut covered = 0usize;
        for key in 0i64..3 {
            let rows = idx.lookup(key as u64);
            prop_assert!(rows.windows(2).all(|w| w[0] < w[1]), "unsorted postings");
            for &r in rows {
                prop_assert_eq!(data[r as usize], key);
            }
            covered += rows.len();
        }
        prop_assert_eq!(covered, data.len(), "postings must partition the rows");
    }
}
