//! Lock-free log-linear histogram over `u64` values.
//!
//! The bucket layout is HDR-style: each power-of-two range (octave) is
//! split into [`SUB`] linear sub-buckets, so the bucket holding a value
//! is never wider than `value / SUB`. That bounds quantile estimates to
//! one bucket width of the exact answer (≤ ~6.25% relative error) while
//! keeping the whole `u64` range in [`NUM_BUCKETS`] buckets (~7.6 KiB of
//! atomics per histogram).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (2^SUB_BITS).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover all of `u64`:
/// 16 exact buckets for values 0..16, then 16 per octave for octaves
/// 4..=63 (values 16..=u64::MAX).
pub const NUM_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// The bucket index a value lands in. Values below `SUB` get exact
/// (width-1) buckets; larger values index `(octave, sub-bucket)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (exp - SUB_BITS)) & (SUB - 1);
        (SUB as u32 + (exp - SUB_BITS) * SUB as u32 + sub as u32) as usize
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUB as usize {
        (i as u64, i as u64)
    } else {
        let g = (i - SUB as usize) as u64 / SUB; // octave - SUB_BITS
        let sub = (i as u64 - SUB) % SUB;
        let lower = (SUB + sub) << g;
        let width = 1u64 << g;
        (lower, lower + (width - 1))
    }
}

/// A concurrent log-linear histogram. Recording is one relaxed
/// `fetch_add` per atomic touched; snapshots walk the bucket array.
///
/// Snapshots are not taken atomically with respect to concurrent
/// recorders: a snapshot racing a `record` may see the bucket increment
/// but not yet the count (or vice versa), off by the in-flight samples.
/// Quiescent totals are always exact — no count is ever lost.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution (non-empty buckets only).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bounds(i).1, n));
            }
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time histogram state: total `count`/`sum`/`max` plus the
/// non-empty buckets as `(inclusive upper bound, count)` pairs in
/// ascending bound order.
#[derive(Debug, Clone, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) estimated as the upper bound of the
    /// bucket containing the rank — within one bucket width of exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        // Every bucket's lower bound is the previous bucket's upper + 1,
        // ending exactly at u64::MAX.
        let mut expect_lower = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lower, "bucket {i}");
            assert!(hi >= lo);
            expect_lower = hi.wrapping_add(1);
        }
        assert_eq!(expect_lower, 0, "last bucket must end at u64::MAX");
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_and_bounds_agree_on_edges() {
        for exp in SUB_BITS..64 {
            for v in [1u64 << exp, (1u64 << exp) + 1, (1u64 << exp) - 1] {
                let i = bucket_index(v);
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v <= hi, "v={v} i={i} bounds=({lo},{hi})");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Exact p50 is 500; bucket width there is 32.
        let p50 = s.p50();
        assert!((468..=532).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((959..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert!(s.buckets.is_empty());
    }
}
