//! Std-only telemetry for the SkinnerDB workspace.
//!
//! Three pieces, all cheap enough to stay on in production:
//!
//! * [`Histogram`] — a lock-free log-linear (HDR-style) histogram over
//!   `u64` values. Sixteen linear sub-buckets per power of two bound the
//!   relative quantile error to one part in sixteen; recording is a single
//!   relaxed `fetch_add` into an atomic bucket array.
//! * [`Registry`] — a named family store for counters, gauges and
//!   histograms. Handle types ([`Counter`], [`Gauge`], [`Histo`]) are
//!   `Arc`-backed and cloneable, so hot paths touch atomics directly and
//!   never take the registry lock; the lock is only held while *creating*
//!   a series or rendering a snapshot. [`Registry::render_prometheus`]
//!   emits the Prometheus text exposition format for a `/metrics`
//!   endpoint; [`Registry::flatten`] feeds `SHOW SERVER STATS`-style
//!   tables.
//! * [`Trace`] — a fixed-capacity per-query span ring. Stages record
//!   monotonic nanosecond timestamps ([`Span`]); recording a plain span
//!   allocates nothing (static stage name, preallocated ring), so traces
//!   ride along on every query, not just sampled ones.
//!
//! The crate deliberately depends on nothing (std only) so every layer of
//! the workspace — exec, core, server, client, bench — can use it without
//! dependency cycles.

mod hist;
mod registry;
mod trace;

pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Histo, Registry};
pub use trace::{Span, SpanTimer, Trace};
