//! Named metric families and Prometheus text exposition.
//!
//! The registry maps family names to series (one per label set). Handles
//! returned by the accessors are `Arc`-backed: once a hot path has its
//! [`Counter`]/[`Gauge`]/[`Histo`] it updates atomics directly and never
//! touches the registry lock again. The lock guards only series creation
//! and snapshot rendering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the counter to `v` if below it (for mirroring an externally
    /// maintained monotone total into the registry). Never decreases.
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (see [`Histogram`]).
#[derive(Debug, Clone)]
pub struct Histo(Arc<Histogram>);

impl Default for Histo {
    fn default() -> Self {
        Histo(Arc::new(Histogram::new()))
    }
}

impl Histo {
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    pub fn snapshot(&self) -> crate::hist::HistSnapshot {
        self.0.snapshot()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histo),
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    help: &'static str,
    /// Keyed by the rendered label set (`""` or `{k="v",...}`), so series
    /// iterate in deterministic order.
    series: BTreeMap<String, Metric>,
}

/// The metric family store. Cheap to clone (shared interior).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Render a label set as it appears in the exposition format. Label
/// values are escaped per the Prometheus text format rules.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_create(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        kind: Kind,
    ) -> Metric {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Metric::Counter(Counter::default()),
                Kind::Gauge => Metric::Gauge(Gauge::default()),
                Kind::Histogram => Metric::Histogram(Histo::default()),
            })
            .clone()
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or create a counter series with the given label set.
    pub fn counter_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_create(name, help, labels, Kind::Counter) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a gauge series with the given label set.
    pub fn gauge_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_create(name, help, labels, Kind::Gauge) {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or create an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histo {
        self.histogram_with(name, help, &[])
    }

    /// Get or create a histogram series with the given label set.
    pub fn histogram_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Histo {
        match self.get_or_create(name, help, labels, Kind::Histogram) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, then one line per
    /// series. Histograms emit cumulative `_bucket{le=...}` lines for
    /// their non-empty buckets plus `+Inf`, `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for &(upper, n) in &snap.buckets {
                            cumulative += n;
                            let le = bucket_labels(labels, upper);
                            out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
                        }
                        let inf = bucket_labels_inf(labels);
                        out.push_str(&format!("{name}_bucket{inf} {}\n", snap.count));
                        out.push_str(&format!("{name}_sum{labels} {}\n", snap.sum));
                        out.push_str(&format!("{name}_count{labels} {}\n", snap.count));
                    }
                }
            }
        }
        out
    }

    /// Flatten everything into `(metric, value)` rows for tabular display
    /// (`SHOW SERVER STATS`). Labeled series render as `name{k="v"}`;
    /// histograms contribute `_count`, `_sum`, `_p50`, `_p99` and `_max`.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let families = self.families.lock().unwrap();
        let mut rows = Vec::new();
        for (name, family) in families.iter() {
            for (labels, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => rows.push((format!("{name}{labels}"), c.get())),
                    Metric::Gauge(g) => rows.push((format!("{name}{labels}"), g.get())),
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        rows.push((format!("{name}_count{labels}"), snap.count));
                        rows.push((format!("{name}_sum{labels}"), snap.sum));
                        rows.push((format!("{name}_p50{labels}"), snap.p50()));
                        rows.push((format!("{name}_p99{labels}"), snap.p99()));
                        rows.push((format!("{name}_max{labels}"), snap.max));
                    }
                }
            }
        }
        rows
    }
}

/// Splice `le="<upper>"` into an existing (possibly empty) label set.
fn bucket_labels(labels: &str, upper: u64) -> String {
    if labels.is_empty() {
        format!("{{le=\"{upper}\"}}")
    } else {
        // labels is `{...}` — insert before the closing brace.
        format!("{},le=\"{upper}\"}}", &labels[..labels.len() - 1])
    }
}

fn bucket_labels_inf(labels: &str) -> String {
    if labels.is_empty() {
        "{le=\"+Inf\"}".to_string()
    } else {
        format!("{},le=\"+Inf\"}}", &labels[..labels.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_the_registry() {
        let reg = Registry::new();
        let c = reg.counter("skinner_queries_total", "Total queries.");
        c.inc();
        c.add(4);
        // Re-fetching the same family yields the same series.
        assert_eq!(
            reg.counter("skinner_queries_total", "Total queries.").get(),
            5
        );
        let g = reg.gauge("skinner_active", "Active now.");
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = Registry::new();
        let a = reg.counter_with("skinner_admitted_total", "Admitted.", &[("tenant", "a")]);
        let b = reg.counter_with("skinner_admitted_total", "Admitted.", &[("tenant", "b")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        let text = reg.render_prometheus();
        assert!(text.contains("skinner_admitted_total{tenant=\"a\"} 2"));
        assert!(text.contains("skinner_admitted_total{tenant=\"b\"} 1"));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("skinner_queries_total", "Total queries.")
            .add(7);
        let h = reg.histogram("skinner_query_latency_us", "Latency.");
        h.record(3);
        h.record(3);
        h.record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP skinner_queries_total Total queries.\n"));
        assert!(text.contains("# TYPE skinner_queries_total counter\n"));
        assert!(text.contains("skinner_queries_total 7\n"));
        assert!(text.contains("# TYPE skinner_query_latency_us histogram\n"));
        assert!(text.contains("skinner_query_latency_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("skinner_query_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("skinner_query_latency_us_sum 106\n"));
        assert!(text.contains("skinner_query_latency_us_count 3\n"));
        // Buckets are cumulative: the 100-bucket line counts all 3.
        let hundred = text
            .lines()
            .find(|l| {
                l.starts_with("skinner_query_latency_us_bucket")
                    && !l.contains("\"3\"")
                    && !l.contains("+Inf")
            })
            .unwrap();
        assert!(hundred.ends_with(" 3"), "{hundred}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("skinner_x_total", "X.", &[("q", "say \"hi\"\\n")])
            .inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains(r#"skinner_x_total{q="say \"hi\"\\n"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn flatten_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("a_total", "A.").inc();
        reg.gauge("b", "B.").set(9);
        reg.histogram("c_us", "C.").record(5);
        let rows = reg.flatten();
        let find = |k: &str| rows.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(find("a_total"), Some(1));
        assert_eq!(find("b"), Some(9));
        assert_eq!(find("c_us_count"), Some(1));
        assert_eq!(find("c_us_sum"), Some(5));
        assert_eq!(find("c_us_p50"), Some(5));
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("dual", "A.");
        reg.gauge("dual", "A.");
    }
}
