//! Always-on per-query trace spans.
//!
//! A [`Trace`] is created when a query enters the system and rides along
//! (behind an `Arc`) through admission, parse/bind, the learning episode
//! loop and result encoding. Each stage records a [`Span`]: a static
//! stage name, nanosecond start/duration relative to the trace's epoch,
//! and one free `detail` integer (pages skipped, slices run, bytes
//! written — stage-defined).
//!
//! Cost discipline: the span ring is preallocated at construction and
//! plain spans carry only a `&'static str` and integers, so recording on
//! the hot path performs no allocation. Per-order episode spans carry an
//! owned label, but those are built only when the learned join order
//! *switches* — a cold, bounded event (`last_order_switch` converges).
//! When the ring is full the oldest span is overwritten and a dropped
//! count maintained, bounding memory per query regardless of episode
//! count.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded stage of a query's life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (static: `admission_wait`, `parse_bind`, `preprocess`,
    /// `episodes`, `postprocess`, `encode_flush`, ...).
    pub stage: &'static str,
    /// Optional qualifier (e.g. the join order an episode run used);
    /// empty for plain spans.
    pub label: String,
    /// Nanoseconds from the trace epoch to the stage start.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
    /// Stage-defined detail (slices run, pages skipped, bytes, ...).
    pub detail: u64,
}

#[derive(Debug)]
struct Ring {
    spans: Vec<Span>,
    /// Overwrite cursor once the ring is full.
    next: usize,
    dropped: u64,
}

/// A per-query span ring with a monotonic epoch. Clones share state via
/// `Arc<Trace>`; recording locks a plain mutex (uncontended in practice —
/// one query's stages rarely overlap).
#[derive(Debug)]
pub struct Trace {
    epoch: Instant,
    cap: usize,
    inner: Mutex<Ring>,
}

impl Trace {
    /// A trace holding at most `cap` spans (oldest overwritten beyond
    /// that). The ring is fully preallocated here.
    pub fn new(cap: usize) -> Arc<Trace> {
        let cap = cap.max(1);
        Arc::new(Trace {
            epoch: Instant::now(),
            cap,
            inner: Mutex::new(Ring {
                spans: Vec::with_capacity(cap),
                next: 0,
                dropped: 0,
            }),
        })
    }

    /// Nanoseconds elapsed since the trace was created.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a plain (unlabeled) span that started at `start_ns` and
    /// ends now.
    pub fn record(&self, stage: &'static str, start_ns: u64, detail: u64) {
        let dur_ns = self.now_ns().saturating_sub(start_ns);
        self.push(Span {
            stage,
            label: String::new(),
            start_ns,
            dur_ns,
            detail,
        });
    }

    /// Record a fully specified span (labeled spans, externally timed
    /// durations).
    pub fn push(&self, span: Span) {
        let mut ring = self.inner.lock().unwrap();
        if ring.spans.len() < self.cap {
            ring.spans.push(span);
        } else {
            let i = ring.next;
            ring.spans[i] = span;
            ring.next = (i + 1) % self.cap;
            ring.dropped += 1;
        }
    }

    /// The recorded spans in chronological (insertion) order.
    pub fn spans(&self) -> Vec<Span> {
        let ring = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(ring.spans.len());
        out.extend_from_slice(&ring.spans[ring.next..]);
        out.extend_from_slice(&ring.spans[..ring.next]);
        out
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

/// Times one stage against an optional trace; a no-op (not even a clock
/// read) when no trace is attached.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    trace: Option<&'a Trace>,
    stage: &'static str,
    start_ns: u64,
}

impl<'a> SpanTimer<'a> {
    pub fn start(trace: Option<&'a Trace>, stage: &'static str) -> SpanTimer<'a> {
        SpanTimer {
            start_ns: trace.map(|t| t.now_ns()).unwrap_or(0),
            trace,
            stage,
        }
    }

    /// Close the stage, recording its span (if tracing).
    pub fn finish(self, detail: u64) {
        if let Some(t) = self.trace {
            t.record(self.stage, self.start_ns, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_with_nonzero_durations() {
        let t = Trace::new(16);
        let s1 = t.now_ns();
        std::hint::black_box((0..1000).sum::<u64>());
        t.record("parse_bind", s1, 0);
        let s2 = t.now_ns();
        std::hint::black_box((0..1000).sum::<u64>());
        t.record("episodes", s2, 42);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "parse_bind");
        assert_eq!(spans[1].stage, "episodes");
        assert_eq!(spans[1].detail, 42);
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans.iter().all(|s| s.dur_ns > 0));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Trace::new(3);
        for i in 0..5u64 {
            t.push(Span {
                stage: "episodes",
                label: String::new(),
                start_ns: i,
                dur_ns: 1,
                detail: i,
            });
        }
        assert_eq!(t.dropped(), 2);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        // Oldest two (details 0, 1) were overwritten; order preserved.
        assert_eq!(
            spans.iter().map(|s| s.detail).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn span_timer_is_a_noop_without_a_trace() {
        let timer = SpanTimer::start(None, "preprocess");
        assert_eq!(timer.start_ns, 0);
        timer.finish(7); // must not panic
        let t = Trace::new(4);
        let timer = SpanTimer::start(Some(&t), "preprocess");
        timer.finish(7);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].detail, 7);
    }
}
