//! Property tests for the log-linear histogram (satellite: bucket
//! correctness, quantile error bound, concurrent-recording exactness).

use proptest::prelude::*;
use skinner_telemetry::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};

fn values() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..16, 0u64..1_000, 0u64..10_000_000, any::<u64>(),]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Every value lands in a bucket whose bounds contain it.
    #[test]
    fn values_land_in_their_bucket(v in values()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// Bucket indexing is monotone: a larger value never maps to an
    /// earlier bucket.
    #[test]
    fn bucket_index_is_monotone(a in values(), b in values()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Quantile estimates are within one bucket width of the exact
    /// order-statistic (and never below it).
    #[test]
    fn quantiles_within_one_bucket_width(
        vals in proptest::collection::vec(0u64..10_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut vals = vals;
        vals.sort_unstable();
        let snap = h.snapshot();
        let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        let exact = vals[rank - 1];
        let est = snap.quantile(q);
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        prop_assert!(
            est >= exact && est <= hi,
            "q={q} est={est} exact={exact} bucket=[{lo},{hi}]"
        );
    }

    /// Count and sum track every recorded value exactly.
    #[test]
    fn count_and_sum_are_exact(vals in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, vals.len() as u64);
        prop_assert_eq!(snap.sum, vals.iter().sum::<u64>());
        prop_assert_eq!(snap.max, vals.iter().max().copied().unwrap_or(0));
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, snap.count);
    }
}

/// Concurrent recording from 8 threads loses no counts: the quiescent
/// totals equal what a sequential recorder would have produced.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = std::sync::Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                // Deterministic per-thread value schedule covering several
                // octaves (same multiset regardless of interleaving).
                for i in 0..PER_THREAD {
                    h.record((i * 37 + t) % 100_000);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let expect_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (i * 37 + t) % 100_000))
        .sum();
    assert_eq!(snap.sum, expect_sum);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, snap.count);
}
