//! A thread-safe UCT tree shared by parallel workers.
//!
//! The paper's multi-threaded SkinnerC configuration splits each time
//! slice's tuple batches across threads while *all* threads learn through
//! one UCT tree. [`ConcurrentUctTree`] is that shared tree: the selection
//! policy is identical to the sequential [`crate::UctTree`] (unvisited
//! children first, then the upper-confidence bound, random completion below
//! the materialized frontier), but every counter is atomic and both
//! [`ConcurrentUctTree::select`] and [`ConcurrentUctTree::backup`] take
//! `&self`, so any number of threads may interleave them.
//!
//! Concurrency design:
//!
//! * per-node visit counts are `AtomicU64` (`fetch_add`) and reward sums are
//!   `f64` bit patterns in an `AtomicU64` updated by a CAS loop — no backup
//!   is ever lost, so `rounds()` equals the exact number of `backup` calls;
//! * the node arena grows behind an `RwLock`; selection only reads it, and
//!   materializing a node briefly takes the write lock, re-checking the
//!   child slot so a lost race reuses the winner's node instead of leaking
//!   a duplicate;
//! * child links only ever transition unmaterialized → materialized
//!   (release/acquire), so a reader that observes a child id also observes
//!   the fully constructed node behind it.
//!
//! Randomness is caller-owned: each worker passes its own seeded `StdRng`
//! to `select`, which keeps single-threaded runs deterministic and avoids a
//! contended global generator.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::Rng;

use skinner_query::{JoinGraph, TableSet};

use crate::prior::{PriorEntry, TreePrior};

pub(crate) const UNMATERIALIZED: u32 = u32::MAX;

/// One node of a concurrent UCT arena (shared with the sharded tree in
/// [`crate::sharded`]; both trees run the identical selection policy over
/// this node shape).
pub(crate) struct CNode {
    /// Join-order prefix this node represents.
    pub(crate) selected: TableSet,
    /// Eligible next tables, parallel to `child_ids`.
    pub(crate) child_tables: Vec<u8>,
    /// Arena ids of materialized children (`u32::MAX` = not materialized).
    pub(crate) child_ids: Vec<AtomicU32>,
    pub(crate) visits: AtomicU64,
    /// Reward sum stored as `f64` bits, updated via CAS.
    pub(crate) reward_bits: AtomicU64,
}

impl CNode {
    pub(crate) fn new(selected: TableSet, graph: &JoinGraph) -> Self {
        let child_tables: Vec<u8> = graph
            .eligible_next(selected)
            .iter()
            .map(|t| t as u8)
            .collect();
        let child_ids = (0..child_tables.len())
            .map(|_| AtomicU32::new(UNMATERIALIZED))
            .collect();
        CNode {
            selected,
            child_tables,
            child_ids,
            visits: AtomicU64::new(0),
            reward_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub(crate) fn visits(&self) -> u64 {
        self.visits.load(Ordering::Relaxed)
    }

    pub(crate) fn reward_sum(&self) -> f64 {
        f64::from_bits(self.reward_bits.load(Ordering::Relaxed))
    }

    pub(crate) fn mean_reward(&self) -> f64 {
        let v = self.visits();
        if v == 0 {
            0.0
        } else {
            self.reward_sum() / v as f64
        }
    }

    /// Register one visit with `reward`. Returns the number of CAS retries
    /// the reward accumulation needed — the direct measure of how many
    /// other threads were hammering the same counter at the same moment.
    pub(crate) fn record(&self, reward: f64) -> u64 {
        self.visits.fetch_add(1, Ordering::Relaxed);
        cas_add_reward(&self.reward_bits, reward)
    }
}

/// Lossless concurrent reward accumulation: add `reward` to the `f64`
/// stored as bits in `bits` via a CAS loop. Returns the number of retries
/// (0 = uncontended). Shared by every reward counter in the crate so the
/// accumulation discipline — and its contention accounting — cannot drift
/// between the single-root and sharded trees.
pub(crate) fn cas_add_reward(bits: &AtomicU64, reward: f64) -> u64 {
    let mut retries = 0;
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + reward).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return retries,
            Err(seen) => {
                retries += 1;
                cur = seen;
            }
        }
    }
}

/// The UCT child-selection policy both concurrent trees share: unvisited
/// children first (uniformly at random), otherwise the maximal upper
/// confidence bound `r̄_c + w·√(ln v_p / v_c)` with random tie-breaking.
///
/// `parent_visits` is passed in rather than read from `node` because the
/// sharded tree keeps its shard-root visit counters outside the node arena
/// (padded, per-shard); `resolve` maps arena ids to nodes for whichever
/// arena the caller descends.
pub(crate) fn select_child_policy(
    w: f64,
    node: &CNode,
    parent_visits: u64,
    resolve: &impl Fn(u32) -> Arc<CNode>,
    rng: &mut StdRng,
) -> (usize, Option<u32>) {
    debug_assert!(!node.child_tables.is_empty(), "selecting from a leaf");
    let ids: Vec<u32> = node
        .child_ids
        .iter()
        .map(|c| c.load(Ordering::Acquire))
        .collect();
    let unvisited: Vec<usize> = (0..node.child_tables.len())
        .filter(|&i| ids[i] == UNMATERIALIZED || resolve(ids[i]).visits() == 0)
        .collect();
    if !unvisited.is_empty() {
        let pick = unvisited[rng.gen_range(0..unvisited.len())];
        let table = node.child_tables[pick] as usize;
        return (table, (ids[pick] != UNMATERIALIZED).then_some(ids[pick]));
    }
    let ln_vp = (parent_visits.max(1) as f64).ln();
    let mut best_score = f64::NEG_INFINITY;
    let mut best: Vec<usize> = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        let c = resolve(id);
        // A concurrent backup can race `visits` to a newer value than
        // the unvisited scan saw; `max(1)` keeps the bound finite.
        let score = c.mean_reward() + w * (ln_vp / c.visits().max(1) as f64).sqrt();
        if score > best_score + 1e-12 {
            best_score = score;
            best.clear();
            best.push(i);
        } else if (score - best_score).abs() <= 1e-12 {
            best.push(i);
        }
    }
    let pick = best[rng.gen_range(0..best.len())];
    (node.child_tables[pick] as usize, Some(ids[pick]))
}

/// The shared UCT search tree for one query, usable from many threads.
pub struct ConcurrentUctTree {
    graph: JoinGraph,
    nodes: RwLock<Vec<Arc<CNode>>>,
    w: f64,
    /// CAS retries observed while accumulating reward at the *root* — the
    /// counter every worker of every episode hits. This is the contention
    /// the sharded tree ([`crate::ShardedUctTree`]) exists to spread out.
    root_contention: AtomicU64,
}

impl ConcurrentUctTree {
    pub fn new(graph: JoinGraph, exploration_weight: f64) -> Self {
        let root = Arc::new(CNode::new(TableSet::EMPTY, &graph));
        ConcurrentUctTree {
            graph,
            nodes: RwLock::new(vec![root]),
            w: exploration_weight,
            root_contention: AtomicU64::new(0),
        }
    }

    fn node(&self, id: u32) -> Arc<CNode> {
        self.nodes.read()[id as usize].clone()
    }

    /// `UctChoice(T)`: select a complete join order for the next episode,
    /// materializing at most one new node per call. Safe to call from many
    /// threads; each caller supplies its own generator.
    pub fn select(&self, rng: &mut StdRng) -> Vec<usize> {
        let m = self.graph.num_tables();
        let mut order = Vec::with_capacity(m);
        let mut node = self.node(0);
        let mut expanded = false;
        loop {
            if order.len() == m {
                return order;
            }
            let (table, child) = self.select_child(&node, rng);
            order.push(table);
            match child {
                Some(c) => node = self.node(c),
                None => {
                    if !expanded {
                        node = self.materialize(&node, table);
                        expanded = true;
                    } else {
                        // Below the frontier: random completion.
                        let mut selected = TableSet::from_iter(order.iter().copied());
                        while order.len() < m {
                            let eligible: Vec<usize> =
                                self.graph.eligible_next(selected).iter().collect();
                            let t = eligible[rng.gen_range(0..eligible.len())];
                            order.push(t);
                            selected.insert(t);
                        }
                        return order;
                    }
                }
            }
        }
    }

    /// Pick a child of `node` by the UCT policy (same policy as the
    /// sequential tree): unvisited children uniformly at random, otherwise
    /// the maximal upper confidence bound with random tie-breaking.
    fn select_child(&self, node: &CNode, rng: &mut StdRng) -> (usize, Option<u32>) {
        select_child_policy(self.w, node, node.visits(), &|id| self.node(id), rng)
    }

    /// Materialize the child of `parent` for `table`, or return the node
    /// another thread materialized first.
    fn materialize(&self, parent: &CNode, table: usize) -> Arc<CNode> {
        let slot = parent
            .child_tables
            .iter()
            .position(|&t| t as usize == table)
            .expect("selected child must be eligible");
        let mut nodes = self.nodes.write();
        // Re-check under the write lock: a concurrent select may have won.
        let existing = parent.child_ids[slot].load(Ordering::Acquire);
        if existing != UNMATERIALIZED {
            return nodes[existing as usize].clone();
        }
        let id = nodes.len() as u32;
        assert!(id != UNMATERIALIZED, "node arena overflow");
        let node = Arc::new(CNode::new(parent.selected.with(table), &self.graph));
        nodes.push(node.clone());
        parent.child_ids[slot].store(id, Ordering::Release);
        node
    }

    /// `RewardUpdate(T, j, r)`: register `reward` (clamped into `[0,1]`)
    /// along the materialized part of `order`'s path. Lock-free; never
    /// loses an update, so `rounds()` is exactly the number of calls.
    pub fn backup(&self, order: &[usize], reward: f64) {
        let reward = reward.clamp(0.0, 1.0);
        let mut node = self.node(0);
        let retries = node.record(reward);
        if retries > 0 {
            self.root_contention.fetch_add(retries, Ordering::Relaxed);
        }
        for &t in order {
            let Some(slot) = node.child_tables.iter().position(|&x| x as usize == t) else {
                return; // order left the materialized tree shape
            };
            let child = node.child_ids[slot].load(Ordering::Acquire);
            if child == UNMATERIALIZED {
                return;
            }
            node = self.node(child);
            node.record(reward);
        }
    }

    /// Number of materialized nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.read().len()
    }

    /// Total rounds played (root visits == number of `backup` calls).
    pub fn rounds(&self) -> u64 {
        self.node(0).visits()
    }

    /// CAS retries suffered at the root reward counter so far. Every worker
    /// of every episode backs up through the single root, so under high
    /// thread counts this number grows with contention — the quantity the
    /// `thread_scaling` benchmark reports and the sharded tree removes.
    pub fn root_contention(&self) -> u64 {
        self.root_contention.load(Ordering::Relaxed)
    }

    /// Mean reward currently recorded at the root (diagnostics).
    pub fn root_mean_reward(&self) -> f64 {
        self.node(0).mean_reward()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.nodes
            .read()
            .iter()
            .map(|n| std::mem::size_of::<CNode>() + n.child_tables.len() * 5)
            .sum()
    }

    /// The most-visited complete join order; unmaterialized suffixes
    /// complete greedily by eligibility (mirrors the sequential tree).
    pub fn best_order(&self) -> Vec<usize> {
        let m = self.graph.num_tables();
        let mut order = Vec::with_capacity(m);
        let mut selected = TableSet::EMPTY;
        let mut node: Option<Arc<CNode>> = Some(self.node(0));
        while order.len() < m {
            let mut picked = None;
            if let Some(n) = &node {
                let mut best_visits = 0u64;
                for i in 0..n.child_tables.len() {
                    let c = n.child_ids[i].load(Ordering::Acquire);
                    if c != UNMATERIALIZED {
                        let child = self.node(c);
                        let v = child.visits();
                        if v > best_visits {
                            best_visits = v;
                            picked = Some((n.child_tables[i] as usize, child));
                        }
                    }
                }
            }
            match picked {
                Some((t, child)) => {
                    order.push(t);
                    selected.insert(t);
                    node = Some(child);
                }
                None => {
                    let t = self
                        .graph
                        .eligible_next(selected)
                        .iter()
                        .next()
                        .expect("incomplete order must have eligible tables");
                    order.push(t);
                    selected.insert(t);
                    node = None;
                }
            }
        }
        order
    }

    /// Export the hottest `max_entries` nodes as a cross-query prior (see
    /// [`crate::prior`]). Safe to call while other threads still select and
    /// back up — counters are read individually, so the snapshot is
    /// per-node consistent (visits and reward of one node may be split by
    /// an in-flight backup, which the decay step tolerates).
    pub fn extract_prior(&self, max_entries: usize) -> TreePrior {
        let mut entries: Vec<PriorEntry> = Vec::new();
        let mut stack: Vec<(Arc<CNode>, Vec<u8>)> = vec![(self.node(0), Vec::new())];
        while let Some((node, prefix)) = stack.pop() {
            if node.visits() == 0 {
                continue;
            }
            for (i, c) in node.child_ids.iter().enumerate() {
                let id = c.load(Ordering::Acquire);
                if id != UNMATERIALIZED {
                    let mut p = prefix.clone();
                    p.push(node.child_tables[i]);
                    stack.push((self.node(id), p));
                }
            }
            entries.push(PriorEntry {
                visits: node.visits(),
                reward_sum: node.reward_sum(),
                prefix,
            });
        }
        TreePrior {
            num_tables: self.graph.num_tables(),
            entries: TreePrior::truncate_hottest(entries, max_entries),
        }
    }

    /// Warm-start this tree from a prior: each entry's path is
    /// materialized and credited with its decayed statistics (mean rewards
    /// preserved). Entries that do not fit this tree's graph are skipped.
    /// Returns the visits seeded at the root.
    pub fn seed_prior(&self, prior: &TreePrior, decay: f64) -> u64 {
        if prior.num_tables != self.graph.num_tables() {
            return 0;
        }
        let mut seeded_root = 0;
        'entry: for e in prior.seeding_order() {
            let Some((dv, dr)) = crate::prior::decay_entry(e, decay) else {
                continue;
            };
            let mut node = self.node(0);
            for &t in &e.prefix {
                let Some(slot) = node.child_tables.iter().position(|&x| x == t) else {
                    continue 'entry;
                };
                let child = node.child_ids[slot].load(Ordering::Acquire);
                node = if child == UNMATERIALIZED {
                    self.materialize(&node, t as usize)
                } else {
                    self.node(child)
                };
            }
            node.visits.fetch_add(dv, Ordering::Relaxed);
            cas_add_reward(&node.reward_bits, dr);
            if e.prefix.is_empty() {
                seeded_root = dv;
            }
        }
        seeded_root
    }

    /// The join graph this tree searches over.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain(n: usize) -> JoinGraph {
        JoinGraph::new(n, (0..n - 1).map(|i| TableSet::from_iter([i, i + 1])))
    }

    #[test]
    fn select_returns_valid_orders() {
        let g = chain(5);
        let t = ConcurrentUctTree::new(g.clone(), std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let o = t.select(&mut rng);
            assert!(g.validates(&o), "invalid order {o:?}");
            t.backup(&o, 0.5);
        }
        assert_eq!(t.rounds(), 100);
    }

    #[test]
    fn single_threaded_growth_is_one_node_per_round() {
        let t = ConcurrentUctTree::new(chain(6), std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = t.num_nodes();
        for _ in 0..50 {
            let o = t.select(&mut rng);
            t.backup(&o, 0.1);
            let now = t.num_nodes();
            assert!(now <= prev + 1, "grew by {}", now - prev);
            prev = now;
        }
    }

    #[test]
    fn converges_to_rewarding_order() {
        let g = JoinGraph::new(
            4,
            [
                TableSet::from_iter([0, 1]),
                TableSet::from_iter([0, 2]),
                TableSet::from_iter([0, 3]),
            ],
        );
        let t = ConcurrentUctTree::new(g, std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..600 {
            let o = t.select(&mut rng);
            let r = if o[0] == 0 { 1.0 } else { 0.0 };
            t.backup(&o, r);
        }
        assert_eq!(t.best_order()[0], 0);
    }

    #[test]
    fn rewards_clamped_and_counted() {
        let t = ConcurrentUctTree::new(chain(3), std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(4);
        let o = t.select(&mut rng);
        t.backup(&o, 7.0);
        assert!(t.root_mean_reward() <= 1.0);
        t.backup(&o, -3.0);
        assert!(t.root_mean_reward() >= 0.0);
        assert_eq!(t.rounds(), 2);
        assert!(t.byte_size() > 0);
    }

    #[test]
    fn backup_ignores_off_tree_orders() {
        let t = ConcurrentUctTree::new(chain(3), std::f64::consts::SQRT_2);
        t.backup(&[2, 0, 1], 1.0);
        assert_eq!(t.rounds(), 1);
    }

    #[test]
    fn concurrent_select_backup_loses_no_updates() {
        let t = Arc::new(ConcurrentUctTree::new(chain(6), std::f64::consts::SQRT_2));
        let threads = 8;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
                    for _ in 0..per_thread {
                        let o = t.select(&mut rng);
                        assert!(t.graph().validates(&o), "{o:?}");
                        t.backup(&o, 0.25);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.rounds(), threads as u64 * per_thread);
        let mean = t.root_mean_reward();
        assert!((mean - 0.25).abs() < 1e-9, "mean drifted: {mean}");
        assert!(t.graph().validates(&t.best_order()));
    }
}
