//! The UCT algorithm over join-order search trees.
//!
//! Implements the variant the paper builds on (Kocsis & Szepesvári, "Bandit
//! based Monte-Carlo planning", paper Section 4.1):
//!
//! * the search tree's root represents the empty join prefix; each level
//!   picks the next table, excluding avoidable Cartesian products
//!   (Section 4.2, via [`skinner_query::JoinGraph::eligible_next`]);
//! * only a *partial* tree is materialized — **at most one node per round**
//!   is added (the first node on the current path outside the materialized
//!   tree);
//! * per materialized node, two counters: visit count and mean reward;
//! * child selection maximizes `r̄_c + w·√(ln v_p / v_c)`; unvisited children
//!   are tried first, in random order; below the materialized frontier the
//!   path continues with uniformly random eligible tables;
//! * rewards are in `[0,1]`; `w = √2` gives the regret guarantee, but the
//!   weight is tunable per domain (the paper uses `10⁻⁶` for Skinner-C).
//!
//! # The three trees
//!
//! | type | threads | hot path |
//! |---|---|---|
//! | [`UctTree`] | 1 (`&mut self`) | plain counters — sequential Skinner-C/G/H |
//! | [`ConcurrentUctTree`] | any (`&self`) | one atomic root every worker CASes |
//! | [`ShardedUctTree`] | any (`&self`) | per-first-table shards, disjoint padded counters |
//!
//! [`SharedUctTree`] selects between the last two behind `parallel_skinner`'s
//! `threads` knob: one worker keeps the single-root tree (bit-identical
//! learning path to the proven configuration), more workers get the sharded
//! tree so the learner never becomes the bottleneck of the executor it
//! steers.
//!
//! # Shared-tree invariants
//!
//! Both concurrent trees uphold, and the stress suites
//! (`tests/concurrent_stress.rs`, `tests/sharded_stress.rs`) hammer from
//! many threads:
//!
//! * **visits == backups, no lost updates** — every `backup` call is
//!   counted exactly once: `rounds()` (for the sharded tree: the *sum of
//!   per-shard visit counters*) equals the exact number of calls, and
//!   reward sums are CAS-accumulated so no concurrent update is dropped or
//!   torn;
//! * **bounded growth** — at most one node materializes per `select`; a
//!   lost materialization race reuses the winner's node instead of leaking
//!   a duplicate;
//! * **publication safety** — child links transition unmaterialized →
//!   materialized exactly once (release/acquire), so observing a child id
//!   implies observing its fully constructed node;
//! * **validity** — every selected order satisfies the join graph's
//!   eligibility rule.
//!
//! Randomness is always caller-owned (each worker passes its own seeded
//! generator), which keeps single-threaded runs deterministic and avoids a
//! contended global generator. Contention itself is observable:
//! [`ConcurrentUctTree::root_contention`] and
//! [`ShardedUctTree::shard_stats`] expose CAS-retry counters the
//! `thread_scaling` benchmark reports.
//!
//! # Cross-query priors
//!
//! All three trees can export their join-order statistics as a
//! [`TreePrior`] (`extract_prior`) and warm-start a fresh tree from one
//! (`seed_prior`, with decayed visits and exactly preserved mean rewards)
//! — the transfer mechanism behind the cross-query learning cache; see
//! [`prior`] for the invariants (ancestor closure, mean preservation,
//! graph validation).

pub mod concurrent;
pub mod prior;
pub mod sharded;
pub mod tree;

pub use concurrent::ConcurrentUctTree;
pub use prior::{PriorEntry, TreePrior};
pub use sharded::{ShardStats, ShardedUctTree, SharedUctTree};
pub use tree::{UctConfig, UctTree};
