//! The UCT algorithm over join-order search trees.
//!
//! Implements the variant the paper builds on (Kocsis & Szepesvári, "Bandit
//! based Monte-Carlo planning", paper Section 4.1):
//!
//! * the search tree's root represents the empty join prefix; each level
//!   picks the next table, excluding avoidable Cartesian products
//!   (Section 4.2, via [`skinner_query::JoinGraph::eligible_next`]);
//! * only a *partial* tree is materialized — **at most one node per round**
//!   is added (the first node on the current path outside the materialized
//!   tree);
//! * per materialized node, two counters: visit count and mean reward;
//! * child selection maximizes `r̄_c + w·√(ln v_p / v_c)`; unvisited children
//!   are tried first, in random order; below the materialized frontier the
//!   path continues with uniformly random eligible tables;
//! * rewards are in `[0,1]`; `w = √2` gives the regret guarantee, but the
//!   weight is tunable per domain (the paper uses `10⁻⁶` for Skinner-C).

pub mod concurrent;
pub mod tree;

pub use concurrent::ConcurrentUctTree;
pub use tree::{UctConfig, UctTree};
