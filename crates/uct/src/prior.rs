//! Cross-query priors: export a finished tree's join-order statistics and
//! warm-start a fresh tree from them.
//!
//! SkinnerDB learns per query, so every execution of a recurring template
//! re-pays the exploration cost. A [`TreePrior`] is the transferable part
//! of a finished tree: its most-visited join-order *prefixes* with their
//! visit counts and reward sums. A new tree for the same template seeds
//! those statistics back in — scaled down by a decay factor, so stale
//! knowledge biases rather than dictates and fresh rewards can overturn it
//! quickly (Krishnan et al.'s lesson that transferred join-order knowledge
//! must stay revisable).
//!
//! Three invariants make priors safe to move between any of the crate's
//! tree types (`UctTree`, `ConcurrentUctTree`, `ShardedUctTree` all
//! implement `extract_prior` / `seed_prior`):
//!
//! * **ancestor closure** — extraction sorts nodes by visits (descending)
//!   then depth and truncates; since every backup that touches a node also
//!   touches its ancestors, an ancestor's count is ≥ any descendant's, so
//!   the kept set always contains the full path to each kept node;
//! * **mean preservation** — decaying multiplies visits and scales the
//!   reward sum by the *same* ratio, so every seeded node starts with
//!   exactly its historical mean reward (UCT's exploitation term is
//!   unchanged; only its confidence shrinks);
//! * **graph validation** — seeding re-checks each prefix step against the
//!   target tree's join graph and silently skips entries that no longer
//!   fit, so a stale or foreign prior can never corrupt a tree.
//!
//! Seeded visits never round to zero (minimum 1 per kept entry): a child
//! the old tree visited stays "visited", which spares the warm tree the
//! mandatory try-every-unvisited-child sweep that cold trees pay at every
//! node.

/// One exported node: a join-order prefix with its accumulated statistics.
/// The root is the empty prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorEntry {
    /// Tables of the join-order prefix, outermost first.
    pub prefix: Vec<u8>,
    pub visits: u64,
    pub reward_sum: f64,
}

/// Transferable join-order statistics of one finished UCT tree.
#[derive(Debug, Clone, Default)]
pub struct TreePrior {
    /// Number of tables of the query the tree searched over; seeding
    /// refuses priors whose table count does not match the target graph.
    pub num_tables: usize,
    /// Exported nodes, ancestor-closed (see module docs).
    pub entries: Vec<PriorEntry>,
}

impl TreePrior {
    /// Total visits recorded at the root of the exported tree (0 if the
    /// root was not exported — an empty tree).
    pub fn root_visits(&self) -> u64 {
        self.entries
            .iter()
            .find(|e| e.prefix.is_empty())
            .map_or(0, |e| e.visits)
    }

    /// Entries sorted shallowest-first, the order seeding must apply them
    /// in so ancestors materialize before their descendants.
    pub fn seeding_order(&self) -> Vec<&PriorEntry> {
        let mut entries: Vec<&PriorEntry> = self.entries.iter().collect();
        entries.sort_by_key(|e| e.prefix.len());
        entries
    }

    /// Approximate heap footprint in bytes (diagnostics only — the tree
    /// cache bounds by template count and export size, not bytes).
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .entries
                .iter()
                .map(|e| std::mem::size_of::<PriorEntry>() + e.prefix.len())
                .sum::<usize>()
    }

    /// Append this prior's canonical byte encoding to `out` (little-endian
    /// throughout): `u32 num_tables`, `u32 entry count`, then per entry
    /// `u8 prefix length` + prefix bytes + `u64 visits` + `f64 reward_sum`
    /// (bit pattern). The encoding is the payload half of the learning
    /// cache's on-disk format; framing, versioning and checksumming live in
    /// the storage layer's sidecar envelope.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.num_tables as u32).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            debug_assert!(e.prefix.len() <= u8::MAX as usize);
            out.push(e.prefix.len() as u8);
            out.extend_from_slice(&e.prefix);
            out.extend_from_slice(&e.visits.to_le_bytes());
            out.extend_from_slice(&e.reward_sum.to_bits().to_le_bytes());
        }
    }

    /// Decode a prior from `bytes` starting at `*pos`, advancing `*pos`
    /// past it. Every structural invariant is re-validated — entry counts
    /// bounded, prefixes no longer than `num_tables` with in-range,
    /// duplicate-free table indices, finite non-negative rewards — so a
    /// hostile or corrupted payload is refused (`Err`) rather than
    /// smuggled into a tree. (Join-*graph* validation still happens at
    /// seed time, per tree; this is format validation.)
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<TreePrior, String> {
        fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or_else(|| "truncated prior".to_string())?;
            *pos += n;
            Ok(s)
        }
        let num_tables = u32::from_le_bytes(take(bytes, pos, 4)?.try_into().unwrap()) as usize;
        if num_tables == 0 || num_tables > 64 {
            return Err(format!("implausible table count {num_tables}"));
        }
        let count = u32::from_le_bytes(take(bytes, pos, 4)?.try_into().unwrap()) as usize;
        if count > 1 << 20 {
            return Err(format!("implausible entry count {count}"));
        }
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let len = take(bytes, pos, 1)?[0] as usize;
            if len > num_tables {
                return Err(format!("prefix length {len} exceeds {num_tables} tables"));
            }
            let prefix = take(bytes, pos, len)?.to_vec();
            let mut seen = 0u64;
            for &t in &prefix {
                if t as usize >= num_tables || seen & (1 << t) != 0 {
                    return Err(format!("invalid table {t} in prefix"));
                }
                seen |= 1 << t;
            }
            let visits = u64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap());
            let reward_sum =
                f64::from_bits(u64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap()));
            if !reward_sum.is_finite() || reward_sum < 0.0 {
                return Err("non-finite or negative reward sum".to_string());
            }
            entries.push(PriorEntry {
                prefix,
                visits,
                reward_sum,
            });
        }
        Ok(TreePrior {
            num_tables,
            entries,
        })
    }

    /// Sort collected entries by visits (descending) then depth and keep
    /// the `max_entries` hottest — the shared truncation rule whose
    /// tie-breaking keeps the set ancestor-closed.
    pub(crate) fn truncate_hottest(
        mut entries: Vec<PriorEntry>,
        max_entries: usize,
    ) -> Vec<PriorEntry> {
        entries.sort_by(|a, b| {
            b.visits
                .cmp(&a.visits)
                .then(a.prefix.len().cmp(&b.prefix.len()))
                .then(a.prefix.cmp(&b.prefix))
        });
        entries.truncate(max_entries);
        entries
    }
}

/// Decay one entry's statistics: visits scaled by `decay` (rounded, never
/// below 1 for a visited node), reward sum scaled by the same realized
/// ratio so the mean reward is preserved exactly. `None` for never-visited
/// entries — and for `decay <= 0`, which means "carry nothing over" and
/// must disable seeding entirely rather than floor every entry at one
/// visit.
pub(crate) fn decay_entry(e: &PriorEntry, decay: f64) -> Option<(u64, f64)> {
    if e.visits == 0 || decay <= 0.0 {
        return None;
    }
    let decay = decay.clamp(0.0, 1.0);
    let dv = ((e.visits as f64 * decay).round() as u64).max(1);
    let dr = e.reward_sum * (dv as f64 / e.visits as f64);
    Some((dv, dr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(prefix: &[u8], visits: u64, reward_sum: f64) -> PriorEntry {
        PriorEntry {
            prefix: prefix.to_vec(),
            visits,
            reward_sum,
        }
    }

    #[test]
    fn decay_preserves_mean_and_floors_at_one() {
        let e = entry(&[0], 100, 80.0);
        let (dv, dr) = decay_entry(&e, 0.5).unwrap();
        assert_eq!(dv, 50);
        assert!((dr / dv as f64 - 0.8).abs() < 1e-12, "mean must survive");
        // A single historical visit never decays away.
        let tiny = entry(&[1], 1, 0.3);
        let (dv, dr) = decay_entry(&tiny, 0.25).unwrap();
        assert_eq!(dv, 1);
        assert!((dr - 0.3).abs() < 1e-12);
        assert!(decay_entry(&entry(&[2], 0, 0.0), 0.5).is_none());
        // decay 0 = carry nothing over: seeding is disabled, not floored.
        assert!(decay_entry(&entry(&[0], 100, 80.0), 0.0).is_none());
    }

    #[test]
    fn truncation_keeps_ancestors_of_kept_nodes() {
        // Parent visits always >= child visits (every backup touches the
        // ancestors), so the hottest-N rule keeps paths intact.
        let entries = vec![
            entry(&[], 10, 5.0),
            entry(&[0], 7, 4.0),
            entry(&[0, 1], 7, 4.0), // ties break towards the ancestor
            entry(&[2], 3, 0.5),
        ];
        let kept = TreePrior::truncate_hottest(entries, 3);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].prefix, Vec::<u8>::new());
        assert_eq!(kept[1].prefix, vec![0]);
        assert_eq!(kept[2].prefix, vec![0, 1]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = TreePrior {
            num_tables: 4,
            entries: vec![
                entry(&[], 10, 5.5),
                entry(&[2], 7, 4.25),
                entry(&[2, 0, 3], 3, 0.125),
            ],
        };
        let mut bytes = vec![0xAB]; // leading junk the cursor must skip
        let mut pos = 1;
        p.encode_into(&mut bytes);
        let q = TreePrior::decode_from(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(q.num_tables, 4);
        assert_eq!(q.entries, p.entries);
    }

    #[test]
    fn decode_refuses_malformed_payloads() {
        let p = TreePrior {
            num_tables: 3,
            entries: vec![entry(&[], 5, 1.0), entry(&[1, 0], 2, 0.5)],
        };
        let mut good = vec![];
        p.encode_into(&mut good);
        // Any truncation is refused.
        for cut in 0..good.len() {
            let mut pos = 0;
            assert!(
                TreePrior::decode_from(&good[..cut], &mut pos).is_err(),
                "truncation to {cut} must be refused"
            );
        }
        // Out-of-range table index in a prefix.
        let bad = TreePrior {
            num_tables: 2,
            entries: vec![entry(&[5], 1, 0.0)],
        };
        let mut bytes = vec![];
        bad.encode_into(&mut bytes);
        let mut pos = 0;
        assert!(TreePrior::decode_from(&bytes, &mut pos).is_err());
        // Duplicate table in a prefix.
        let dup = TreePrior {
            num_tables: 3,
            entries: vec![entry(&[1, 1], 1, 0.0)],
        };
        let mut bytes = vec![];
        dup.encode_into(&mut bytes);
        let mut pos = 0;
        assert!(TreePrior::decode_from(&bytes, &mut pos).is_err());
        // Non-finite reward bits.
        let nan = TreePrior {
            num_tables: 2,
            entries: vec![entry(&[0], 1, f64::NAN)],
        };
        let mut bytes = vec![];
        nan.encode_into(&mut bytes);
        let mut pos = 0;
        assert!(TreePrior::decode_from(&bytes, &mut pos).is_err());
        // Zero tables.
        let mut pos = 0;
        assert!(TreePrior::decode_from(&[0, 0, 0, 0, 0, 0, 0, 0], &mut pos).is_err());
    }

    #[test]
    fn seeding_order_is_shallowest_first() {
        let p = TreePrior {
            num_tables: 3,
            entries: vec![
                entry(&[0, 1], 1, 0.0),
                entry(&[], 5, 1.0),
                entry(&[0], 2, 0.0),
            ],
        };
        let order: Vec<usize> = p.seeding_order().iter().map(|e| e.prefix.len()).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(p.root_visits(), 5);
        assert!(p.byte_size() > 0);
    }
}
