//! Cross-query priors: export a finished tree's join-order statistics and
//! warm-start a fresh tree from them.
//!
//! SkinnerDB learns per query, so every execution of a recurring template
//! re-pays the exploration cost. A [`TreePrior`] is the transferable part
//! of a finished tree: its most-visited join-order *prefixes* with their
//! visit counts and reward sums. A new tree for the same template seeds
//! those statistics back in — scaled down by a decay factor, so stale
//! knowledge biases rather than dictates and fresh rewards can overturn it
//! quickly (Krishnan et al.'s lesson that transferred join-order knowledge
//! must stay revisable).
//!
//! Three invariants make priors safe to move between any of the crate's
//! tree types (`UctTree`, `ConcurrentUctTree`, `ShardedUctTree` all
//! implement `extract_prior` / `seed_prior`):
//!
//! * **ancestor closure** — extraction sorts nodes by visits (descending)
//!   then depth and truncates; since every backup that touches a node also
//!   touches its ancestors, an ancestor's count is ≥ any descendant's, so
//!   the kept set always contains the full path to each kept node;
//! * **mean preservation** — decaying multiplies visits and scales the
//!   reward sum by the *same* ratio, so every seeded node starts with
//!   exactly its historical mean reward (UCT's exploitation term is
//!   unchanged; only its confidence shrinks);
//! * **graph validation** — seeding re-checks each prefix step against the
//!   target tree's join graph and silently skips entries that no longer
//!   fit, so a stale or foreign prior can never corrupt a tree.
//!
//! Seeded visits never round to zero (minimum 1 per kept entry): a child
//! the old tree visited stays "visited", which spares the warm tree the
//! mandatory try-every-unvisited-child sweep that cold trees pay at every
//! node.

/// One exported node: a join-order prefix with its accumulated statistics.
/// The root is the empty prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorEntry {
    /// Tables of the join-order prefix, outermost first.
    pub prefix: Vec<u8>,
    pub visits: u64,
    pub reward_sum: f64,
}

/// Transferable join-order statistics of one finished UCT tree.
#[derive(Debug, Clone, Default)]
pub struct TreePrior {
    /// Number of tables of the query the tree searched over; seeding
    /// refuses priors whose table count does not match the target graph.
    pub num_tables: usize,
    /// Exported nodes, ancestor-closed (see module docs).
    pub entries: Vec<PriorEntry>,
}

impl TreePrior {
    /// Total visits recorded at the root of the exported tree (0 if the
    /// root was not exported — an empty tree).
    pub fn root_visits(&self) -> u64 {
        self.entries
            .iter()
            .find(|e| e.prefix.is_empty())
            .map_or(0, |e| e.visits)
    }

    /// Entries sorted shallowest-first, the order seeding must apply them
    /// in so ancestors materialize before their descendants.
    pub fn seeding_order(&self) -> Vec<&PriorEntry> {
        let mut entries: Vec<&PriorEntry> = self.entries.iter().collect();
        entries.sort_by_key(|e| e.prefix.len());
        entries
    }

    /// Approximate heap footprint in bytes (diagnostics only — the tree
    /// cache bounds by template count and export size, not bytes).
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .entries
                .iter()
                .map(|e| std::mem::size_of::<PriorEntry>() + e.prefix.len())
                .sum::<usize>()
    }

    /// Sort collected entries by visits (descending) then depth and keep
    /// the `max_entries` hottest — the shared truncation rule whose
    /// tie-breaking keeps the set ancestor-closed.
    pub(crate) fn truncate_hottest(
        mut entries: Vec<PriorEntry>,
        max_entries: usize,
    ) -> Vec<PriorEntry> {
        entries.sort_by(|a, b| {
            b.visits
                .cmp(&a.visits)
                .then(a.prefix.len().cmp(&b.prefix.len()))
                .then(a.prefix.cmp(&b.prefix))
        });
        entries.truncate(max_entries);
        entries
    }
}

/// Decay one entry's statistics: visits scaled by `decay` (rounded, never
/// below 1 for a visited node), reward sum scaled by the same realized
/// ratio so the mean reward is preserved exactly. `None` for never-visited
/// entries — and for `decay <= 0`, which means "carry nothing over" and
/// must disable seeding entirely rather than floor every entry at one
/// visit.
pub(crate) fn decay_entry(e: &PriorEntry, decay: f64) -> Option<(u64, f64)> {
    if e.visits == 0 || decay <= 0.0 {
        return None;
    }
    let decay = decay.clamp(0.0, 1.0);
    let dv = ((e.visits as f64 * decay).round() as u64).max(1);
    let dr = e.reward_sum * (dv as f64 / e.visits as f64);
    Some((dv, dr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(prefix: &[u8], visits: u64, reward_sum: f64) -> PriorEntry {
        PriorEntry {
            prefix: prefix.to_vec(),
            visits,
            reward_sum,
        }
    }

    #[test]
    fn decay_preserves_mean_and_floors_at_one() {
        let e = entry(&[0], 100, 80.0);
        let (dv, dr) = decay_entry(&e, 0.5).unwrap();
        assert_eq!(dv, 50);
        assert!((dr / dv as f64 - 0.8).abs() < 1e-12, "mean must survive");
        // A single historical visit never decays away.
        let tiny = entry(&[1], 1, 0.3);
        let (dv, dr) = decay_entry(&tiny, 0.25).unwrap();
        assert_eq!(dv, 1);
        assert!((dr - 0.3).abs() < 1e-12);
        assert!(decay_entry(&entry(&[2], 0, 0.0), 0.5).is_none());
        // decay 0 = carry nothing over: seeding is disabled, not floored.
        assert!(decay_entry(&entry(&[0], 100, 80.0), 0.0).is_none());
    }

    #[test]
    fn truncation_keeps_ancestors_of_kept_nodes() {
        // Parent visits always >= child visits (every backup touches the
        // ancestors), so the hottest-N rule keeps paths intact.
        let entries = vec![
            entry(&[], 10, 5.0),
            entry(&[0], 7, 4.0),
            entry(&[0, 1], 7, 4.0), // ties break towards the ancestor
            entry(&[2], 3, 0.5),
        ];
        let kept = TreePrior::truncate_hottest(entries, 3);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].prefix, Vec::<u8>::new());
        assert_eq!(kept[1].prefix, vec![0]);
        assert_eq!(kept[2].prefix, vec![0, 1]);
    }

    #[test]
    fn seeding_order_is_shallowest_first() {
        let p = TreePrior {
            num_tables: 3,
            entries: vec![
                entry(&[0, 1], 1, 0.0),
                entry(&[], 5, 1.0),
                entry(&[0], 2, 0.0),
            ],
        };
        let order: Vec<usize> = p.seeding_order().iter().map(|e| e.prefix.len()).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(p.root_visits(), 5);
        assert!(p.byte_size() > 0);
    }
}
