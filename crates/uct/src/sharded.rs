//! A sharded concurrent UCT tree: per-first-table subtrees with disjoint
//! hot counters.
//!
//! [`crate::ConcurrentUctTree`] funnels every worker of every episode
//! through one root: each backup does a `fetch_add` plus a CAS loop on the
//! same pair of cache lines, so at high thread counts the learner itself
//! becomes the contention point of the executor it steers.
//! [`ShardedUctTree`] partitions the search tree by the *first table* of
//! the join order — the root's children — into independent shards:
//!
//! * each shard owns a cache-line-aligned block of root counters
//!   (visits, reward bits, a CAS-retry counter) and its
//!   **own node arena behind its own lock**, so workers backing up through
//!   different first tables touch disjoint cache lines and never serialize
//!   on a shared arena lock;
//! * a lightweight top-level selector plays UCB over the shards using only
//!   their visit totals and reward sums (no global counter is ever
//!   written — the "root visit count" is the *sum* of the shard counters,
//!   computed on read);
//! * within a shard, selection and backup are exactly the concurrent
//!   tree's policy over the shard's arena (the child-selection routine is
//!   literally the same function), so learning behaviour per subtree is
//!   unchanged.
//!
//! # Invariants
//!
//! The invariants the stress suite (`crates/uct/tests/sharded_stress.rs`)
//! pins, which parallel learning correctness rests on:
//!
//! * **visits == backups**: the sum of per-shard visit counters equals the
//!   exact number of [`ShardedUctTree::backup`] calls — no update is ever
//!   lost, under any interleaving;
//! * **exact reward sums**: reward accumulation is a CAS loop on `f64`
//!   bits, so the total reward recorded equals the total reward submitted
//!   (no torn or dropped updates);
//! * **bounded growth**: at most one node is materialized per `select`
//!   call;
//! * **valid orders**: every selected order satisfies the join graph's
//!   eligibility rule (Cartesian products only when unavoidable).
//!
//! Contention is observable, not just hoped away:
//! [`ShardedUctTree::shard_stats`] reports per-shard visits and CAS-retry
//! counts, and [`ShardedUctTree::contention`] totals them; the
//! `thread_scaling` benchmark prints both sides (shared root vs sharded)
//! so the win is measurable even before multi-core hardware is available.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::Rng;

use skinner_query::{JoinGraph, TableSet};

use crate::concurrent::{cas_add_reward, select_child_policy, CNode, UNMATERIALIZED};
use crate::prior::{PriorEntry, TreePrior};

/// One shard's root counters, padded to two cache lines so shards never
/// false-share: every backup hits its shard's block and nobody else's.
#[repr(align(128))]
struct ShardCounters {
    visits: AtomicU64,
    /// Reward sum as `f64` bits, CAS-accumulated (never lossy).
    reward_bits: AtomicU64,
    /// CAS retries on `reward_bits` — this shard's observed contention.
    contention: AtomicU64,
}

impl ShardCounters {
    fn new() -> Self {
        ShardCounters {
            visits: AtomicU64::new(0),
            reward_bits: AtomicU64::new(0f64.to_bits()),
            contention: AtomicU64::new(0),
        }
    }

    fn visits(&self) -> u64 {
        self.visits.load(Ordering::Relaxed)
    }

    fn reward_sum(&self) -> f64 {
        f64::from_bits(self.reward_bits.load(Ordering::Relaxed))
    }

    fn mean_reward(&self) -> f64 {
        let v = self.visits();
        if v == 0 {
            0.0
        } else {
            self.reward_sum() / v as f64
        }
    }

    fn record(&self, reward: f64) {
        self.visits.fetch_add(1, Ordering::Relaxed);
        let retries = crate::concurrent::cas_add_reward(&self.reward_bits, reward);
        if retries > 0 {
            self.contention.fetch_add(retries, Ordering::Relaxed);
        }
    }
}

/// One first-table subtree: its own counters and its own arena + lock.
struct Shard {
    first_table: usize,
    counters: ShardCounters,
    /// Arena of this shard's subtree; `nodes[0]` is the shard root (the
    /// node whose prefix is `{first_table}`). Growing the arena takes this
    /// shard's lock only — other shards keep materializing in parallel.
    nodes: RwLock<Vec<Arc<CNode>>>,
}

/// A read-only snapshot of one shard's hot counters. `parallel_skinner`
/// copies these into its outcome's `ExecMetrics::shard_stats`, from where
/// the `thread_scaling` benchmark serializes the per-shard breakdown into
/// `BENCH_thread_scaling.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// The first join-order table this shard covers.
    pub first_table: usize,
    /// Backups recorded through this shard.
    pub visits: u64,
    /// Mean reward recorded at the shard root.
    pub mean_reward: f64,
    /// CAS retries on this shard's reward counter.
    pub contention: u64,
    /// Materialized nodes in this shard's arena.
    pub nodes: usize,
}

/// The sharded shared UCT search tree for one query, usable from many
/// threads. Same selection policy and same public surface as
/// [`crate::ConcurrentUctTree`]; see the [module docs](self) for the
/// sharding design and its invariants.
pub struct ShardedUctTree {
    graph: JoinGraph,
    /// One shard per eligible first table, in table order.
    shards: Vec<Shard>,
    w: f64,
}

impl ShardedUctTree {
    /// Build a tree with one shard per eligible first table of `graph`.
    pub fn new(graph: JoinGraph, exploration_weight: f64) -> Self {
        let shards: Vec<Shard> = graph
            .eligible_next(TableSet::EMPTY)
            .iter()
            .map(|t| Shard {
                first_table: t,
                counters: ShardCounters::new(),
                nodes: RwLock::new(vec![Arc::new(CNode::new(TableSet::singleton(t), &graph))]),
            })
            .collect();
        assert!(!shards.is_empty(), "query must have at least one table");
        ShardedUctTree {
            graph,
            shards,
            w: exploration_weight,
        }
    }

    fn shard_of(&self, first_table: usize) -> Option<&Shard> {
        self.shards.iter().find(|s| s.first_table == first_table)
    }

    /// Top-level selector: UCB over the shards on their aggregated visit
    /// totals — unvisited shards first (uniformly at random), then the
    /// maximal bound with random tie-breaking. Reads only; the root has no
    /// writable counter of its own.
    fn select_shard(&self, rng: &mut StdRng) -> &Shard {
        let visits: Vec<u64> = self.shards.iter().map(|s| s.counters.visits()).collect();
        let unvisited: Vec<usize> = (0..self.shards.len()).filter(|&i| visits[i] == 0).collect();
        if !unvisited.is_empty() {
            return &self.shards[unvisited[rng.gen_range(0..unvisited.len())]];
        }
        let total: u64 = visits.iter().sum();
        let ln_total = (total.max(1) as f64).ln();
        let mut best_score = f64::NEG_INFINITY;
        let mut best: Vec<usize> = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            let score =
                s.counters.mean_reward() + self.w * (ln_total / visits[i].max(1) as f64).sqrt();
            if score > best_score + 1e-12 {
                best_score = score;
                best.clear();
                best.push(i);
            } else if (score - best_score).abs() <= 1e-12 {
                best.push(i);
            }
        }
        &self.shards[best[rng.gen_range(0..best.len())]]
    }

    /// `UctChoice(T)`: select a complete join order for the next episode,
    /// materializing at most one new node per call (in the chosen shard's
    /// arena). Safe from any number of threads; each caller supplies its
    /// own generator.
    pub fn select(&self, rng: &mut StdRng) -> Vec<usize> {
        let m = self.graph.num_tables();
        let shard = self.select_shard(rng);
        let mut order = Vec::with_capacity(m);
        order.push(shard.first_table);
        let resolve = |id: u32| shard.nodes.read()[id as usize].clone();
        let mut node = resolve(0);
        // The shard root's visit count lives in the padded counters, not
        // on the arena node; deeper nodes carry their own.
        let mut parent_visits = shard.counters.visits();
        let mut expanded = false;
        loop {
            if order.len() == m {
                return order;
            }
            let (table, child) = select_child_policy(self.w, &node, parent_visits, &resolve, rng);
            order.push(table);
            match child {
                Some(c) => {
                    node = resolve(c);
                    parent_visits = node.visits();
                }
                None => {
                    if !expanded {
                        node = Self::materialize(shard, &node, table, &self.graph);
                        parent_visits = node.visits();
                        expanded = true;
                    } else {
                        // Below the frontier: random completion.
                        let mut selected = TableSet::from_iter(order.iter().copied());
                        while order.len() < m {
                            let eligible: Vec<usize> =
                                self.graph.eligible_next(selected).iter().collect();
                            let t = eligible[rng.gen_range(0..eligible.len())];
                            order.push(t);
                            selected.insert(t);
                        }
                        return order;
                    }
                }
            }
        }
    }

    /// Materialize `parent`'s child for `table` in `shard`'s arena, or
    /// return the node another thread materialized first. Takes only this
    /// shard's write lock.
    fn materialize(shard: &Shard, parent: &CNode, table: usize, graph: &JoinGraph) -> Arc<CNode> {
        let slot = parent
            .child_tables
            .iter()
            .position(|&t| t as usize == table)
            .expect("selected child must be eligible");
        let mut nodes = shard.nodes.write();
        // Re-check under the write lock: a concurrent select may have won.
        let existing = parent.child_ids[slot].load(Ordering::Acquire);
        if existing != UNMATERIALIZED {
            return nodes[existing as usize].clone();
        }
        let id = nodes.len() as u32;
        assert!(id != UNMATERIALIZED, "shard arena overflow");
        let node = Arc::new(CNode::new(parent.selected.with(table), graph));
        nodes.push(node.clone());
        parent.child_ids[slot].store(id, Ordering::Release);
        node
    }

    /// `RewardUpdate(T, j, r)`: register `reward` (clamped into `[0,1]`)
    /// along the materialized part of `order`'s path. Lock-free; workers
    /// with different first tables write disjoint cache lines. Never loses
    /// an update: the sum of shard visit counters is exactly the number of
    /// calls.
    pub fn backup(&self, order: &[usize], reward: f64) {
        let reward = reward.clamp(0.0, 1.0);
        let Some(&first) = order.first() else { return };
        let Some(shard) = self.shard_of(first) else {
            return; // order's first table is not an eligible start
        };
        // The padded shard counters *are* the first-table node's counters
        // (the conceptual root is their sum, computed on read), so the
        // arena's shard-root node records nothing itself — one update per
        // level, same as the single-root tree.
        shard.counters.record(reward);
        let mut node = shard.nodes.read()[0].clone();
        for &t in &order[1..] {
            let Some(slot) = node.child_tables.iter().position(|&x| x as usize == t) else {
                return; // order left the materialized tree shape
            };
            let child = node.child_ids[slot].load(Ordering::Acquire);
            if child == UNMATERIALIZED {
                return;
            }
            node = shard.nodes.read()[child as usize].clone();
            node.record(reward);
        }
    }

    /// Number of shards (== eligible first tables).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Materialized nodes across all shards (the conceptual root is free).
    pub fn num_nodes(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.read().len()).sum()
    }

    /// Total rounds played: the **sum of shard visit counters**, which the
    /// stress suite asserts equals the exact number of `backup` calls.
    pub fn rounds(&self) -> u64 {
        self.shards.iter().map(|s| s.counters.visits()).sum()
    }

    /// Visit-weighted mean reward across shards (diagnostics; equals what
    /// a single root counter would hold).
    pub fn root_mean_reward(&self) -> f64 {
        let total = self.rounds();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self.shards.iter().map(|s| s.counters.reward_sum()).sum();
        sum / total as f64
    }

    /// Total CAS retries across all shard reward counters — the sharded
    /// counterpart of [`crate::ConcurrentUctTree::root_contention`].
    pub fn contention(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.contention.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard counter snapshots, in first-table order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                first_table: s.first_table,
                visits: s.counters.visits(),
                mean_reward: s.counters.mean_reward(),
                contention: s.counters.contention.load(Ordering::Relaxed),
                nodes: s.nodes.read().len(),
            })
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                std::mem::size_of::<Shard>()
                    + s.nodes
                        .read()
                        .iter()
                        .map(|n| std::mem::size_of::<CNode>() + n.child_tables.len() * 5)
                        .sum::<usize>()
            })
            .sum()
    }

    /// The most-visited complete join order: most-visited shard first,
    /// then the most-visited path down its arena; unmaterialized suffixes
    /// complete greedily by eligibility (mirrors the concurrent tree).
    pub fn best_order(&self) -> Vec<usize> {
        let m = self.graph.num_tables();
        let mut order = Vec::with_capacity(m);
        let shard = self
            .shards
            .iter()
            .max_by_key(|s| s.counters.visits())
            .expect("tree has at least one shard");
        order.push(shard.first_table);
        let mut selected = TableSet::singleton(shard.first_table);
        let mut node: Option<Arc<CNode>> = Some(shard.nodes.read()[0].clone());
        while order.len() < m {
            let mut picked = None;
            if let Some(n) = &node {
                let mut best_visits = 0u64;
                for i in 0..n.child_tables.len() {
                    let c = n.child_ids[i].load(Ordering::Acquire);
                    if c != UNMATERIALIZED {
                        let child = shard.nodes.read()[c as usize].clone();
                        let v = child.visits();
                        if v > best_visits {
                            best_visits = v;
                            picked = Some((n.child_tables[i] as usize, child));
                        }
                    }
                }
            }
            match picked {
                Some((t, child)) => {
                    order.push(t);
                    selected.insert(t);
                    node = Some(child);
                }
                None => {
                    let t = self
                        .graph
                        .eligible_next(selected)
                        .iter()
                        .next()
                        .expect("incomplete order must have eligible tables");
                    order.push(t);
                    selected.insert(t);
                    node = None;
                }
            }
        }
        order
    }

    /// Export the hottest `max_entries` nodes as a cross-query prior (see
    /// [`crate::prior`]). The conceptual root (sum of the shard counters)
    /// is synthesized as the empty-prefix entry, so priors extracted here
    /// seed single-root trees with a consistent parent count; each shard's
    /// padded counters become that first table's entry.
    pub fn extract_prior(&self, max_entries: usize) -> TreePrior {
        let mut entries: Vec<PriorEntry> = vec![PriorEntry {
            prefix: Vec::new(),
            visits: self.rounds(),
            reward_sum: self.shards.iter().map(|s| s.counters.reward_sum()).sum(),
        }];
        for shard in &self.shards {
            if shard.counters.visits() == 0 {
                continue;
            }
            entries.push(PriorEntry {
                prefix: vec![shard.first_table as u8],
                visits: shard.counters.visits(),
                reward_sum: shard.counters.reward_sum(),
            });
            // The shard-root arena node records nothing itself (its stats
            // are the padded counters above); descend into its children.
            // One read guard covers the whole walk: extraction runs on
            // the coordinator, and materialization (the only writer) is
            // merely delayed by it, never deadlocked.
            let nodes = shard.nodes.read();
            let mut stack: Vec<(u32, Vec<u8>)> = vec![(0, vec![shard.first_table as u8])];
            while let Some((id, prefix)) = stack.pop() {
                let node = &nodes[id as usize];
                for (i, c) in node.child_ids.iter().enumerate() {
                    let child_id = c.load(Ordering::Acquire);
                    if child_id == UNMATERIALIZED {
                        continue;
                    }
                    let child = &nodes[child_id as usize];
                    if child.visits() == 0 {
                        continue;
                    }
                    let mut p = prefix.clone();
                    p.push(node.child_tables[i]);
                    entries.push(PriorEntry {
                        visits: child.visits(),
                        reward_sum: child.reward_sum(),
                        prefix: p.clone(),
                    });
                    stack.push((child_id, p));
                }
            }
        }
        TreePrior {
            num_tables: self.graph.num_tables(),
            entries: TreePrior::truncate_hottest(entries, max_entries),
        }
    }

    /// Warm-start this tree from a prior. The empty-prefix entry is
    /// skipped (the conceptual root is the sum of shard counters, computed
    /// on read); length-1 prefixes credit the shard counters, deeper ones
    /// materialize down the shard arena. Returns the visits seeded across
    /// the shard roots — the tree's head start in rounds.
    pub fn seed_prior(&self, prior: &TreePrior, decay: f64) -> u64 {
        if prior.num_tables != self.graph.num_tables() {
            return 0;
        }
        let mut seeded = 0;
        'entry: for e in prior.seeding_order() {
            if e.prefix.is_empty() {
                continue; // conceptual root: derived, never written
            }
            let Some((dv, dr)) = crate::prior::decay_entry(e, decay) else {
                continue;
            };
            let Some(shard) = self.shard_of(e.prefix[0] as usize) else {
                continue;
            };
            if e.prefix.len() == 1 {
                shard.counters.visits.fetch_add(dv, Ordering::Relaxed);
                cas_add_reward(&shard.counters.reward_bits, dr);
                seeded += dv;
                continue;
            }
            let mut node = shard.nodes.read()[0].clone();
            for &t in &e.prefix[1..] {
                let Some(slot) = node.child_tables.iter().position(|&x| x == t) else {
                    continue 'entry;
                };
                let child = node.child_ids[slot].load(Ordering::Acquire);
                node = if child == UNMATERIALIZED {
                    Self::materialize(shard, &node, t as usize, &self.graph)
                } else {
                    shard.nodes.read()[child as usize].clone()
                };
            }
            node.visits.fetch_add(dv, Ordering::Relaxed);
            cas_add_reward(&node.reward_bits, dr);
        }
        seeded
    }

    /// The join graph this tree searches over.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }
}

/// The shared learned tree behind `parallel_skinner`'s `threads` knob:
/// one thread keeps the proven single-root [`crate::ConcurrentUctTree`]
/// (bit-identical to the sequential path, preserving the equivalence
/// suite), more threads get the contention-spreading [`ShardedUctTree`].
/// Both variants expose the same operations, so the episode loop is
/// oblivious to which one it learns through.
pub enum SharedUctTree {
    /// Single root arena — the 1-thread / low-contention configuration.
    Single(crate::ConcurrentUctTree),
    /// Per-first-table shards — the multi-thread configuration.
    Sharded(ShardedUctTree),
}

impl SharedUctTree {
    /// Pick the variant for a worker-thread count: `threads <= 1` keeps
    /// the single-root tree, anything more shards by first table.
    pub fn for_threads(graph: JoinGraph, exploration_weight: f64, threads: usize) -> Self {
        if threads <= 1 {
            SharedUctTree::Single(crate::ConcurrentUctTree::new(graph, exploration_weight))
        } else {
            SharedUctTree::Sharded(ShardedUctTree::new(graph, exploration_weight))
        }
    }

    /// Select a complete join order for the next episode.
    pub fn select(&self, rng: &mut StdRng) -> Vec<usize> {
        match self {
            SharedUctTree::Single(t) => t.select(rng),
            SharedUctTree::Sharded(t) => t.select(rng),
        }
    }

    /// Back up `reward` along `order`'s materialized path.
    pub fn backup(&self, order: &[usize], reward: f64) {
        match self {
            SharedUctTree::Single(t) => t.backup(order, reward),
            SharedUctTree::Sharded(t) => t.backup(order, reward),
        }
    }

    /// Total rounds played (== number of `backup` calls).
    pub fn rounds(&self) -> u64 {
        match self {
            SharedUctTree::Single(t) => t.rounds(),
            SharedUctTree::Sharded(t) => t.rounds(),
        }
    }

    /// Materialized nodes.
    pub fn num_nodes(&self) -> usize {
        match self {
            SharedUctTree::Single(t) => t.num_nodes(),
            SharedUctTree::Sharded(t) => t.num_nodes(),
        }
    }

    /// Shards the learner spreads root updates over (1 for the single tree).
    pub fn num_shards(&self) -> usize {
        match self {
            SharedUctTree::Single(_) => 1,
            SharedUctTree::Sharded(t) => t.num_shards(),
        }
    }

    /// Root-counter CAS retries observed so far (summed over shards).
    pub fn contention(&self) -> u64 {
        match self {
            SharedUctTree::Single(t) => t.root_contention(),
            SharedUctTree::Sharded(t) => t.contention(),
        }
    }

    /// Per-shard counter snapshots; the single tree reports itself as one
    /// shard covering every first table (`first_table` is meaningless
    /// there and reported as 0 only when the graph is empty — it uses the
    /// best order's head).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        match self {
            SharedUctTree::Single(t) => vec![ShardStats {
                first_table: t.best_order().first().copied().unwrap_or(0),
                visits: t.rounds(),
                mean_reward: t.root_mean_reward(),
                contention: t.root_contention(),
                nodes: t.num_nodes(),
            }],
            SharedUctTree::Sharded(t) => t.shard_stats(),
        }
    }

    /// Mean reward at the (conceptual) root.
    pub fn root_mean_reward(&self) -> f64 {
        match self {
            SharedUctTree::Single(t) => t.root_mean_reward(),
            SharedUctTree::Sharded(t) => t.root_mean_reward(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            SharedUctTree::Single(t) => t.byte_size(),
            SharedUctTree::Sharded(t) => t.byte_size(),
        }
    }

    /// The most-visited complete join order.
    pub fn best_order(&self) -> Vec<usize> {
        match self {
            SharedUctTree::Single(t) => t.best_order(),
            SharedUctTree::Sharded(t) => t.best_order(),
        }
    }

    /// Export this tree's join-order statistics as a cross-query prior.
    pub fn extract_prior(&self, max_entries: usize) -> TreePrior {
        match self {
            SharedUctTree::Single(t) => t.extract_prior(max_entries),
            SharedUctTree::Sharded(t) => t.extract_prior(max_entries),
        }
    }

    /// Warm-start this tree from a prior (decayed; see [`crate::prior`]).
    /// Returns the visits seeded at the root level — what `rounds()`
    /// reports before the first real episode.
    pub fn seed_prior(&self, prior: &TreePrior, decay: f64) -> u64 {
        match self {
            SharedUctTree::Single(t) => t.seed_prior(prior, decay),
            SharedUctTree::Sharded(t) => t.seed_prior(prior, decay),
        }
    }

    /// The join graph this tree searches over.
    pub fn graph(&self) -> &JoinGraph {
        match self {
            SharedUctTree::Single(t) => t.graph(),
            SharedUctTree::Sharded(t) => t.graph(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain(n: usize) -> JoinGraph {
        JoinGraph::new(n, (0..n - 1).map(|i| TableSet::from_iter([i, i + 1])))
    }

    #[test]
    fn one_shard_per_first_table() {
        let t = ShardedUctTree::new(chain(5), std::f64::consts::SQRT_2);
        assert_eq!(t.num_shards(), 5);
        // One shard-root node pre-materialized per shard.
        assert_eq!(t.num_nodes(), 5);
    }

    #[test]
    fn select_returns_valid_orders_and_counts_exactly() {
        let g = chain(5);
        let t = ShardedUctTree::new(g.clone(), std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let o = t.select(&mut rng);
            assert!(g.validates(&o), "invalid order {o:?}");
            t.backup(&o, 0.5);
        }
        assert_eq!(t.rounds(), 200);
        let per_shard: u64 = t.shard_stats().iter().map(|s| s.visits).sum();
        assert_eq!(per_shard, 200, "shard visits must sum to total backups");
        assert!((t.root_mean_reward() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn growth_is_at_most_one_node_per_select() {
        let t = ShardedUctTree::new(chain(6), std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = t.num_nodes();
        for _ in 0..80 {
            let o = t.select(&mut rng);
            t.backup(&o, 0.1);
            let now = t.num_nodes();
            assert!(now <= prev + 1, "grew by {}", now - prev);
            prev = now;
        }
    }

    #[test]
    fn converges_to_rewarding_first_table() {
        let g = JoinGraph::new(
            4,
            [
                TableSet::from_iter([0, 1]),
                TableSet::from_iter([0, 2]),
                TableSet::from_iter([0, 3]),
            ],
        );
        let t = ShardedUctTree::new(g, std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..600 {
            let o = t.select(&mut rng);
            let r = if o[0] == 0 { 1.0 } else { 0.0 };
            t.backup(&o, r);
        }
        assert_eq!(t.best_order()[0], 0);
        assert!(t.graph().validates(&t.best_order()));
    }

    #[test]
    fn backup_ignores_off_tree_orders() {
        let t = ShardedUctTree::new(chain(3), std::f64::consts::SQRT_2);
        // Valid first table, impossible continuation: counted at the shard
        // root (it is a real backup), ignored below it.
        t.backup(&[0, 2, 1], 1.0);
        assert_eq!(t.rounds(), 1);
        // Empty orders are ignored entirely.
        t.backup(&[], 1.0);
        assert_eq!(t.rounds(), 1);
    }

    #[test]
    fn rewards_clamped() {
        let t = ShardedUctTree::new(chain(3), std::f64::consts::SQRT_2);
        let mut rng = StdRng::seed_from_u64(4);
        let o = t.select(&mut rng);
        t.backup(&o, 7.0);
        assert!(t.root_mean_reward() <= 1.0);
        t.backup(&o, -3.0);
        assert!(t.root_mean_reward() >= 0.0);
        assert!(t.byte_size() > 0);
    }

    #[test]
    fn concurrent_hammering_loses_no_updates() {
        let t = Arc::new(ShardedUctTree::new(chain(6), std::f64::consts::SQRT_2));
        let threads = 8;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
                    for _ in 0..per_thread {
                        let o = t.select(&mut rng);
                        assert!(t.graph().validates(&o), "{o:?}");
                        t.backup(&o, 0.25);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.rounds(), threads as u64 * per_thread);
        let per_shard: u64 = t.shard_stats().iter().map(|s| s.visits).sum();
        assert_eq!(per_shard, threads as u64 * per_thread);
        let mean = t.root_mean_reward();
        assert!((mean - 0.25).abs() < 1e-9, "mean drifted: {mean}");
        assert!(t.graph().validates(&t.best_order()));
    }

    #[test]
    fn shared_tree_picks_variant_by_threads() {
        let single = SharedUctTree::for_threads(chain(4), 1e-6, 1);
        assert!(matches!(single, SharedUctTree::Single(_)));
        assert_eq!(single.num_shards(), 1);
        let sharded = SharedUctTree::for_threads(chain(4), 1e-6, 4);
        assert!(matches!(sharded, SharedUctTree::Sharded(_)));
        assert_eq!(sharded.num_shards(), 4);
        // Both variants drive the same loop shape.
        let mut rng = StdRng::seed_from_u64(9);
        for tree in [&single, &sharded] {
            for _ in 0..50 {
                let o = tree.select(&mut rng);
                assert!(tree.graph().validates(&o));
                tree.backup(&o, 0.5);
            }
            assert_eq!(tree.rounds(), 50);
            assert_eq!(tree.shard_stats().iter().map(|s| s.visits).sum::<u64>(), 50);
            assert!(tree.num_nodes() > 0 && tree.byte_size() > 0);
        }
    }
}
