//! Materialized partial UCT search tree over join orders.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skinner_query::{JoinGraph, TableSet};

use crate::prior::{PriorEntry, TreePrior};

/// UCT parameters.
#[derive(Debug, Clone, Copy)]
pub struct UctConfig {
    /// Exploration weight `w` in `r̄ + w·√(ln v_p / v_c)`. `√2` carries the
    /// formal regret bound; SkinnerDB uses `1e-6` for its customized engine
    /// (paper Section 6.1).
    pub exploration_weight: f64,
    /// RNG seed (tie-breaking, random rollouts below the frontier).
    pub seed: u64,
}

impl Default for UctConfig {
    fn default() -> Self {
        UctConfig {
            exploration_weight: std::f64::consts::SQRT_2,
            seed: 0x5EED,
        }
    }
}

/// Index of a node inside the tree arena.
type NodeId = u32;

#[derive(Debug)]
struct Node {
    visits: u64,
    reward_sum: f64,
    /// Join-order prefix this node represents (tables already chosen).
    selected: TableSet,
    /// Eligible next tables, parallel to `child_ids`.
    child_tables: Vec<u8>,
    /// Materialized child nodes (`u32::MAX` = not materialized).
    child_ids: Vec<NodeId>,
}

const UNMATERIALIZED: NodeId = u32::MAX;

impl Node {
    fn new(selected: TableSet, graph: &JoinGraph) -> Self {
        let eligible = graph.eligible_next(selected);
        let child_tables: Vec<u8> = eligible.iter().map(|t| t as u8).collect();
        let child_ids = vec![UNMATERIALIZED; child_tables.len()];
        Node {
            visits: 0,
            reward_sum: 0.0,
            selected,
            child_tables,
            child_ids,
        }
    }

    fn mean_reward(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.reward_sum / self.visits as f64
        }
    }
}

/// The UCT search tree for one query (or one timeout level of Skinner-G).
pub struct UctTree {
    graph: JoinGraph,
    nodes: Vec<Node>,
    w: f64,
    rng: StdRng,
}

impl UctTree {
    pub fn new(graph: JoinGraph, config: UctConfig) -> Self {
        let root = Node::new(TableSet::EMPTY, &graph);
        UctTree {
            graph,
            nodes: vec![root],
            w: config.exploration_weight,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// `UctChoice(T)`: select a complete join order for the next time slice,
    /// materializing at most one new node.
    pub fn choose(&mut self) -> Vec<usize> {
        let m = self.graph.num_tables();
        let mut order = Vec::with_capacity(m);
        let mut node: NodeId = 0;
        let mut expanded = false;
        loop {
            if order.len() == m {
                return order;
            }
            let (table, child) = self.select_child(node);
            order.push(table);
            match child {
                Some(c) => node = c,
                None => {
                    if !expanded {
                        // Materialize the first off-tree node of this path.
                        let selected = self.nodes[node as usize].selected.with(table);
                        let new_id = self.nodes.len() as NodeId;
                        let new_node = Node::new(selected, &self.graph);
                        self.nodes.push(new_node);
                        let slot = self.nodes[node as usize]
                            .child_tables
                            .iter()
                            .position(|&t| t as usize == table)
                            .expect("selected child must be eligible");
                        self.nodes[node as usize].child_ids[slot] = new_id;
                        expanded = true;
                        node = new_id;
                    } else {
                        // Below the frontier: random completion from the
                        // prefix built so far.
                        let selected = TableSet::from_iter(order.iter().copied());
                        self.random_completion(selected, &mut order);
                        return order;
                    }
                }
            }
        }
    }

    /// Pick a child of `node` by UCT policy. Returns the chosen table and
    /// its materialized node id (if any).
    fn select_child(&mut self, node: NodeId) -> (usize, Option<NodeId>) {
        let n = &self.nodes[node as usize];
        debug_assert!(!n.child_tables.is_empty(), "selecting from a leaf");
        // Unvisited children first, uniformly at random.
        let unvisited: Vec<usize> = (0..n.child_tables.len())
            .filter(|&i| {
                let c = n.child_ids[i];
                c == UNMATERIALIZED || self.nodes[c as usize].visits == 0
            })
            .collect();
        if !unvisited.is_empty() {
            let pick = unvisited[self.rng.gen_range(0..unvisited.len())];
            let table = n.child_tables[pick] as usize;
            let child = n.child_ids[pick];
            return (table, (child != UNMATERIALIZED).then_some(child));
        }
        // All children visited: maximize the upper confidence bound,
        // breaking ties uniformly at random.
        let ln_vp = (n.visits.max(1) as f64).ln();
        let mut best_score = f64::NEG_INFINITY;
        let mut best: Vec<usize> = Vec::new();
        for i in 0..n.child_tables.len() {
            let c = &self.nodes[n.child_ids[i] as usize];
            let score = c.mean_reward() + self.w * (ln_vp / c.visits as f64).sqrt();
            if score > best_score + 1e-12 {
                best_score = score;
                best.clear();
                best.push(i);
            } else if (score - best_score).abs() <= 1e-12 {
                best.push(i);
            }
        }
        let pick = best[self.rng.gen_range(0..best.len())];
        let table = n.child_tables[pick] as usize;
        (table, Some(n.child_ids[pick]))
    }

    fn random_completion(&mut self, mut selected: TableSet, order: &mut Vec<usize>) {
        let m = self.graph.num_tables();
        while order.len() < m {
            let eligible: Vec<usize> = self.graph.eligible_next(selected).iter().collect();
            let t = eligible[self.rng.gen_range(0..eligible.len())];
            order.push(t);
            selected.insert(t);
        }
    }

    /// `RewardUpdate(T, j, r)`: register `reward` (clamped into `[0,1]`) for
    /// join order `order`, updating counters along the materialized part of
    /// the path.
    pub fn update(&mut self, order: &[usize], reward: f64) {
        let reward = reward.clamp(0.0, 1.0);
        let mut node: NodeId = 0;
        self.nodes[0].visits += 1;
        self.nodes[0].reward_sum += reward;
        for &t in order {
            let n = &self.nodes[node as usize];
            let slot = match n.child_tables.iter().position(|&x| x as usize == t) {
                Some(s) => s,
                None => return, // order left the materialized tree shape
            };
            let child = n.child_ids[slot];
            if child == UNMATERIALIZED {
                return;
            }
            node = child;
            self.nodes[node as usize].visits += 1;
            self.nodes[node as usize].reward_sum += reward;
        }
    }

    /// Number of materialized nodes (Figures 7a and 8a).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total rounds played (root visits).
    pub fn rounds(&self) -> u64 {
        self.nodes[0].visits
    }

    /// Approximate heap footprint in bytes (Figure 8 memory accounting).
    pub fn byte_size(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + n.child_tables.len() * 5)
            .sum()
    }

    /// The most-visited complete join order — the "final join order selected
    /// by Skinner" used for the replay experiments (Tables 3 and 4).
    /// Unmaterialized suffixes complete greedily by eligibility.
    pub fn best_order(&self) -> Vec<usize> {
        let m = self.graph.num_tables();
        let mut order = Vec::with_capacity(m);
        let mut selected = TableSet::EMPTY;
        let mut node: Option<NodeId> = Some(0);
        while order.len() < m {
            let mut picked = None;
            if let Some(id) = node {
                let n = &self.nodes[id as usize];
                let mut best_visits = 0u64;
                for i in 0..n.child_tables.len() {
                    let c = n.child_ids[i];
                    if c != UNMATERIALIZED {
                        let v = self.nodes[c as usize].visits;
                        if v > best_visits {
                            best_visits = v;
                            picked = Some((n.child_tables[i] as usize, c));
                        }
                    }
                }
            }
            match picked {
                Some((t, c)) => {
                    order.push(t);
                    selected.insert(t);
                    node = Some(c);
                }
                None => {
                    // Greedy completion: first eligible table.
                    let t = self
                        .graph
                        .eligible_next(selected)
                        .iter()
                        .next()
                        .expect("incomplete order must have eligible tables");
                    order.push(t);
                    selected.insert(t);
                    node = None;
                }
            }
        }
        order
    }

    /// Mean reward currently recorded at the root (diagnostics).
    pub fn root_mean_reward(&self) -> f64 {
        self.nodes[0].mean_reward()
    }

    /// Export the hottest `max_entries` nodes as a cross-query prior (see
    /// [`crate::prior`]): each visited node becomes a (prefix, visits,
    /// reward sum) entry, truncated ancestor-closed by visit count.
    pub fn extract_prior(&self, max_entries: usize) -> TreePrior {
        let mut entries: Vec<PriorEntry> = Vec::new();
        // DFS from the root, carrying the join-order prefix of each path.
        let mut stack: Vec<(NodeId, Vec<u8>)> = vec![(0, Vec::new())];
        while let Some((id, prefix)) = stack.pop() {
            let n = &self.nodes[id as usize];
            if n.visits == 0 {
                continue;
            }
            for (i, &c) in n.child_ids.iter().enumerate() {
                if c != UNMATERIALIZED {
                    let mut p = prefix.clone();
                    p.push(n.child_tables[i]);
                    stack.push((c, p));
                }
            }
            entries.push(PriorEntry {
                prefix,
                visits: n.visits,
                reward_sum: n.reward_sum,
            });
        }
        TreePrior {
            num_tables: self.graph.num_tables(),
            entries: TreePrior::truncate_hottest(entries, max_entries),
        }
    }

    /// Warm-start this tree from a prior: every entry's path is
    /// materialized and credited with its decayed statistics (mean rewards
    /// preserved; see [`crate::prior`]). Entries that do not fit this
    /// tree's graph are skipped. Returns the visits seeded at the root —
    /// the tree's head start in rounds.
    pub fn seed_prior(&mut self, prior: &TreePrior, decay: f64) -> u64 {
        if prior.num_tables != self.graph.num_tables() {
            return 0;
        }
        let mut seeded_root = 0;
        'entry: for e in prior.seeding_order() {
            let Some((dv, dr)) = crate::prior::decay_entry(e, decay) else {
                continue;
            };
            let mut node: NodeId = 0;
            for &t in &e.prefix {
                let n = &self.nodes[node as usize];
                let Some(slot) = n.child_tables.iter().position(|&x| x == t) else {
                    continue 'entry; // prefix invalid for this graph
                };
                let child = n.child_ids[slot];
                node = if child == UNMATERIALIZED {
                    let selected = n.selected.with(t as usize);
                    let new_id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::new(selected, &self.graph));
                    self.nodes[node as usize].child_ids[slot] = new_id;
                    new_id
                } else {
                    child
                };
            }
            let n = &mut self.nodes[node as usize];
            n.visits += dv;
            n.reward_sum += dr;
            if e.prefix.is_empty() {
                seeded_root = dv;
            }
        }
        seeded_root
    }

    /// The join graph this tree searches over.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> JoinGraph {
        JoinGraph::new(n, (0..n - 1).map(|i| TableSet::from_iter([i, i + 1])))
    }

    fn cfg(seed: u64) -> UctConfig {
        UctConfig {
            exploration_weight: std::f64::consts::SQRT_2,
            seed,
        }
    }

    #[test]
    fn choose_returns_valid_orders() {
        let g = chain(5);
        let mut t = UctTree::new(g.clone(), cfg(1));
        for _ in 0..100 {
            let o = t.choose();
            assert!(g.validates(&o), "invalid order {o:?}");
            t.update(&o, 0.5);
        }
    }

    #[test]
    fn at_most_one_node_materialized_per_round() {
        let g = chain(6);
        let mut t = UctTree::new(g, cfg(2));
        let mut prev = t.num_nodes();
        for _ in 0..50 {
            let o = t.choose();
            t.update(&o, 0.1);
            let now = t.num_nodes();
            assert!(now <= prev + 1, "grew by {}", now - prev);
            prev = now;
        }
    }

    #[test]
    fn converges_to_rewarding_order() {
        // Star join where starting at table 0 yields reward 1, else 0.
        let g = JoinGraph::new(
            4,
            [
                TableSet::from_iter([0, 1]),
                TableSet::from_iter([0, 2]),
                TableSet::from_iter([0, 3]),
            ],
        );
        let mut t = UctTree::new(g, cfg(3));
        for _ in 0..600 {
            let o = t.choose();
            let r = if o[0] == 0 { 1.0 } else { 0.0 };
            t.update(&o, r);
        }
        assert_eq!(t.best_order()[0], 0);
        // The winning first move dominates the visit counts.
        let mut chosen: Vec<usize> = Vec::new();
        for _ in 0..50 {
            let o = t.choose();
            t.update(&o, if o[0] == 0 { 1.0 } else { 0.0 });
            chosen.push(o[0]);
        }
        let zero_fraction = chosen.iter().filter(|&&x| x == 0).count() as f64 / chosen.len() as f64;
        assert!(zero_fraction > 0.5, "exploited {zero_fraction}");
    }

    #[test]
    fn tiny_weight_exploits_aggressively() {
        let g = chain(3);
        let mut t = UctTree::new(
            g,
            UctConfig {
                exploration_weight: 1e-6,
                seed: 4,
            },
        );
        // Teach it that starting at table 2 is good.
        for _ in 0..50 {
            let o = t.choose();
            let r = if o[0] == 2 { 1.0 } else { 0.05 };
            t.update(&o, r);
        }
        let picks: Vec<usize> = (0..20)
            .map(|_| {
                let o = t.choose();
                t.update(&o, if o[0] == 2 { 1.0 } else { 0.05 });
                o[0]
            })
            .collect();
        assert!(picks.iter().filter(|&&x| x == 2).count() >= 18, "{picks:?}");
    }

    #[test]
    fn rewards_clamped() {
        let g = chain(3);
        let mut t = UctTree::new(g, cfg(5));
        let o = t.choose();
        t.update(&o, 7.0);
        assert!(t.root_mean_reward() <= 1.0);
        t.update(&o, -3.0);
        assert!(t.root_mean_reward() >= 0.0);
    }

    #[test]
    fn update_ignores_off_tree_orders() {
        let g = chain(3);
        let mut t = UctTree::new(g, cfg(6));
        // An order that is not even valid silently updates only the root.
        t.update(&[2, 0, 1], 1.0);
        assert_eq!(t.rounds(), 1);
    }

    #[test]
    fn best_order_is_valid() {
        let g = chain(7);
        let mut t = UctTree::new(g.clone(), cfg(7));
        for _ in 0..300 {
            let o = t.choose();
            let r = if o[0] == 3 { 0.9 } else { 0.1 };
            t.update(&o, r);
        }
        let best = t.best_order();
        assert!(g.validates(&best), "{best:?}");
        assert_eq!(best[0], 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = chain(5);
        let run = |seed| {
            let mut t = UctTree::new(chain(5), cfg(seed));
            let mut orders = vec![];
            for _ in 0..20 {
                let o = t.choose();
                t.update(&o, (o[0] as f64) / 5.0);
                orders.push(o);
            }
            orders
        };
        assert_eq!(run(9), run(9));
        let _ = g;
    }

    #[test]
    fn node_growth_bounded_by_rounds() {
        let g = chain(10);
        let mut t = UctTree::new(g, cfg(10));
        for _ in 0..200 {
            let o = t.choose();
            t.update(&o, 0.3);
        }
        // Root + at most one node per round.
        assert!(t.num_nodes() <= 201);
        assert!(t.byte_size() > 0);
    }
}
