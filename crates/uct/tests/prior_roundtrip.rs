//! Cross-query priors move between every tree type without corrupting
//! statistics: extract from a trained tree, seed a fresh one, and the
//! warm tree must (a) start with the decayed round count, (b) preserve
//! mean rewards, and (c) keep exploiting the known-best first table.

use rand::rngs::StdRng;
use rand::SeedableRng;

use skinner_query::{JoinGraph, TableSet};
use skinner_uct::{
    ConcurrentUctTree, ShardedUctTree, SharedUctTree, TreePrior, UctConfig, UctTree,
};

fn star(n: usize) -> JoinGraph {
    JoinGraph::new(n, (1..n).map(|i| TableSet::from_iter([0, i])))
}

/// Train a sequential tree where starting at table 0 earns reward 1.
fn trained_tree(rounds: usize) -> UctTree {
    let mut t = UctTree::new(star(4), UctConfig::default());
    for _ in 0..rounds {
        let o = t.choose();
        let r = if o[0] == 0 { 1.0 } else { 0.1 };
        t.update(&o, r);
    }
    t
}

#[test]
fn sequential_roundtrip_preserves_rounds_and_means() {
    let t = trained_tree(400);
    let prior = t.extract_prior(64);
    assert_eq!(prior.num_tables, 4);
    assert_eq!(prior.root_visits(), 400);

    let mut warm = UctTree::new(star(4), UctConfig::default());
    let seeded = warm.seed_prior(&prior, 0.5);
    assert_eq!(seeded, 200);
    assert_eq!(warm.rounds(), 200);
    // Mean reward at the root survives decay exactly.
    assert!((warm.root_mean_reward() - t.root_mean_reward()).abs() < 1e-9);
    // The warm tree exploits the learned best first table immediately.
    assert_eq!(warm.best_order()[0], t.best_order()[0]);
}

#[test]
fn full_decay_ratio_keeps_all_statistics() {
    let t = trained_tree(100);
    let prior = t.extract_prior(1024);
    let mut warm = UctTree::new(star(4), UctConfig::default());
    assert_eq!(warm.seed_prior(&prior, 1.0), 100);
    assert_eq!(warm.rounds(), t.rounds());
    assert!((warm.root_mean_reward() - t.root_mean_reward()).abs() < 1e-9);
}

#[test]
fn prior_seeds_concurrent_and_sharded_trees() {
    let t = trained_tree(400);
    let prior = t.extract_prior(64);

    let conc = ConcurrentUctTree::new(star(4), 1e-6);
    let seeded = conc.seed_prior(&prior, 0.5);
    assert_eq!(seeded, 200);
    assert_eq!(conc.rounds(), 200);
    assert_eq!(conc.best_order()[0], t.best_order()[0]);

    let sharded = ShardedUctTree::new(star(4), 1e-6);
    let seeded = sharded.seed_prior(&prior, 0.5);
    assert!(seeded > 0);
    assert_eq!(sharded.rounds(), seeded);
    assert_eq!(sharded.best_order()[0], t.best_order()[0]);
    // Selection still yields valid orders from the warm state.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let o = sharded.select(&mut rng);
        assert!(sharded.graph().validates(&o));
        sharded.backup(&o, 0.5);
    }
}

#[test]
fn sharded_extraction_synthesizes_the_root_and_seeds_single_trees() {
    let sharded = ShardedUctTree::new(star(4), std::f64::consts::SQRT_2);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..300 {
        let o = sharded.select(&mut rng);
        let r = if o[0] == 0 { 0.9 } else { 0.05 };
        sharded.backup(&o, r);
    }
    let prior = sharded.extract_prior(64);
    assert_eq!(prior.root_visits(), 300, "conceptual root must be exported");

    let mut warm = UctTree::new(star(4), UctConfig::default());
    let seeded = warm.seed_prior(&prior, 0.5);
    assert_eq!(seeded, 150);
    assert!((warm.root_mean_reward() - sharded.root_mean_reward()).abs() < 1e-9);
    assert_eq!(warm.best_order()[0], 0);
}

#[test]
fn shared_tree_dispatches_both_variants() {
    let t = trained_tree(200);
    let prior = t.extract_prior(64);
    for threads in [1, 4] {
        let tree = SharedUctTree::for_threads(star(4), 1e-6, threads);
        let seeded = tree.seed_prior(&prior, 0.5);
        // The single-root variant decays the root entry exactly (200/2);
        // the sharded one sums per-first-table decays, so rounding may
        // drift by at most ±0.5 per shard.
        assert!(
            (seeded as i64 - 100).abs() <= 4,
            "threads={threads}: seeded {seeded}"
        );
        assert_eq!(tree.rounds(), seeded, "threads={threads}");
        assert_eq!(tree.best_order()[0], t.best_order()[0]);
        let roundtrip = tree.extract_prior(64);
        assert_eq!(roundtrip.root_visits(), tree.rounds());
    }
}

#[test]
fn mismatched_or_invalid_priors_are_ignored() {
    let t = trained_tree(100);
    let prior = t.extract_prior(64);
    // Wrong table count: refused wholesale.
    let mut other = UctTree::new(star(5), UctConfig::default());
    assert_eq!(other.seed_prior(&prior, 0.5), 0);
    assert_eq!(other.rounds(), 0);
    // Entries whose prefixes violate the target graph are skipped, valid
    // ones still land: a chain graph accepts [] but not the star's [0,1]
    // continuations that break its adjacency.
    let chain = JoinGraph::new(4, (0..3).map(|i| TableSet::from_iter([i, i + 1])));
    let bogus = TreePrior {
        num_tables: 4,
        entries: vec![
            skinner_uct::PriorEntry {
                prefix: vec![],
                visits: 10,
                reward_sum: 5.0,
            },
            skinner_uct::PriorEntry {
                prefix: vec![1, 3], // 3 is not adjacent to 1 in the chain
                visits: 4,
                reward_sum: 2.0,
            },
        ],
    };
    let mut warm = UctTree::new(chain, UctConfig::default());
    assert_eq!(warm.seed_prior(&bogus, 1.0), 10);
    assert_eq!(warm.rounds(), 10);
    assert_eq!(warm.num_nodes(), 2, "only the valid path materializes");
}

#[test]
fn truncation_is_bounded_and_ancestor_closed() {
    let t = trained_tree(500);
    let prior = t.extract_prior(8);
    assert!(prior.entries.len() <= 8);
    // Every kept entry's parent prefix is kept too.
    for e in &prior.entries {
        if e.prefix.is_empty() {
            continue;
        }
        let parent = &e.prefix[..e.prefix.len() - 1];
        assert!(
            prior.entries.iter().any(|p| p.prefix == parent),
            "entry {:?} lost its ancestor",
            e.prefix
        );
    }
}
