//! Concurrency stress and property tests for the sharded UCT tree.
//!
//! Many threads hammer `select`/`backup` on one [`ShardedUctTree`] and the
//! tests assert the invariants parallel learning depends on:
//!
//! * **visits == backups** — the *sum of per-shard visit counters* equals
//!   the exact number of backups (no lost updates, under any
//!   interleaving);
//! * the accumulated reward sum is exact (no torn f64 updates);
//! * every selected order is valid for the join graph;
//! * tree growth stays bounded by rounds (at most one materialized node
//!   per `select` call), plus the pre-materialized shard roots;
//! * the contention counters are plausible: CAS retries only ever happen
//!   when two or more threads share a shard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use skinner_query::{JoinGraph, TableSet};
use skinner_uct::{ShardedUctTree, SharedUctTree};

fn chain(n: usize) -> JoinGraph {
    JoinGraph::new(n, (0..n - 1).map(|i| TableSet::from_iter([i, i + 1])))
}

fn star(n: usize) -> JoinGraph {
    JoinGraph::new(n, (1..n).map(|i| TableSet::from_iter([0, i])))
}

/// Run `threads` workers, each doing `rounds` select+backup iterations with
/// per-thread deterministic rewards; return the exact reward total.
fn hammer(tree: &Arc<ShardedUctTree>, threads: u64, rounds: u64, seed: u64) -> f64 {
    let reward_cents = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let tree = tree.clone();
            let reward_cents = reward_cents.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (i * 0x9E37));
                for k in 0..rounds {
                    let order = tree.select(&mut rng);
                    assert!(tree.graph().validates(&order), "invalid order {order:?}");
                    // Rewards in {0.00, 0.01, …, 1.00}: exactly representable
                    // sums (in cents), so the CAS accumulation is checkable
                    // to the last update.
                    let cents = (i * 37 + k * 13) % 101;
                    reward_cents.fetch_add(cents, Ordering::Relaxed);
                    tree.backup(&order, cents as f64 / 100.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    reward_cents.load(Ordering::Relaxed) as f64 / 100.0
}

#[test]
fn shard_visits_sum_to_total_backups_under_contention() {
    for (graph, threads, rounds) in [
        (chain(5), 8u64, 400u64),
        (star(6), 4, 600),
        (chain(9), 16, 150),
    ] {
        let shards = graph.eligible_next(TableSet::EMPTY).len();
        let tree = Arc::new(ShardedUctTree::new(graph, std::f64::consts::SQRT_2));
        let expected_reward = hammer(&tree, threads, rounds, 0xBEEF);
        let total = threads * rounds;
        // The tentpole invariant: per-shard visit counters sum to the
        // exact number of backups — zero lost updates.
        let stats = tree.shard_stats();
        assert_eq!(stats.len(), shards);
        let shard_sum: u64 = stats.iter().map(|s| s.visits).sum();
        assert_eq!(shard_sum, total, "lost visit updates across shards");
        assert_eq!(tree.rounds(), total);
        // Exact reward accumulation across all shards.
        let mean = tree.root_mean_reward();
        let expected_mean = expected_reward / total as f64;
        assert!(
            (mean - expected_mean).abs() < 1e-9,
            "lost reward updates: mean {mean} != {expected_mean}"
        );
        // At most one materialized node per select call, plus the
        // pre-materialized shard roots.
        assert!(tree.num_nodes() as u64 <= total + shards as u64);
        assert!(tree.graph().validates(&tree.best_order()));
    }
}

#[test]
fn tree_remains_usable_after_contention() {
    let tree = Arc::new(ShardedUctTree::new(chain(6), 1e-6));
    hammer(&tree, 8, 200, 0xABCD);
    let before = tree.rounds();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let o = tree.select(&mut rng);
        tree.backup(&o, 1.0);
    }
    assert_eq!(tree.rounds(), before + 50);
}

#[test]
fn single_threaded_hammering_sees_zero_contention() {
    let tree = Arc::new(ShardedUctTree::new(chain(6), std::f64::consts::SQRT_2));
    hammer(&tree, 1, 500, 0x50C0);
    assert_eq!(
        tree.contention(),
        0,
        "CAS retries require a concurrent writer"
    );
    assert!(tree.shard_stats().iter().all(|s| s.contention == 0));
}

#[test]
fn shared_tree_selector_upholds_the_same_invariant() {
    // The enum the episode loop actually uses: hammer the sharded variant
    // through it and re-check the conservation invariant end to end.
    let tree = Arc::new(SharedUctTree::for_threads(
        star(5),
        std::f64::consts::SQRT_2,
        4,
    ));
    let threads = 6u64;
    let rounds = 300u64;
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let tree = tree.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xDADA + i);
                for _ in 0..rounds {
                    let o = tree.select(&mut rng);
                    tree.backup(&o, 0.5);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(tree.rounds(), threads * rounds);
    let shard_sum: u64 = tree.shard_stats().iter().map(|s| s.visits).sum();
    assert_eq!(shard_sum, threads * rounds);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Property: for random graph shapes, thread counts and round counts,
    /// per-shard visits sum to the exact backup count and the tree stays
    /// structurally sound.
    #[test]
    fn shard_visit_conservation_for_random_shapes(
        tables in 3usize..7,
        star_shape in any::<bool>(),
        threads in 2u64..6,
        rounds in 20u64..120,
        seed in any::<u64>(),
    ) {
        let graph = if star_shape { star(tables) } else { chain(tables) };
        let shards = graph.eligible_next(TableSet::EMPTY).len() as u64;
        let tree = Arc::new(ShardedUctTree::new(graph, std::f64::consts::SQRT_2));
        hammer(&tree, threads, rounds, seed);
        let total = threads * rounds;
        prop_assert_eq!(tree.rounds(), total);
        let shard_sum: u64 = tree.shard_stats().iter().map(|s| s.visits).sum();
        prop_assert_eq!(shard_sum, total);
        prop_assert!(tree.num_nodes() as u64 <= total + shards);
        prop_assert!(tree.root_mean_reward() >= 0.0);
        prop_assert!(tree.root_mean_reward() <= 1.0);
        prop_assert!(tree.graph().validates(&tree.best_order()));
    }
}
