//! Random-value helpers shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf sampler over `{0, …, n-1}` with exponent `theta` (rejection-free
/// inverse-CDF over precomputed cumulative weights). `theta = 0` is uniform;
/// around 1 gives the heavy skew real IMDB join columns exhibit.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank (0-based; rank 0 is the most frequent).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Pseudo-text: `prefix#<id>` plus deterministic filler words — enough for
/// `LIKE` patterns and dictionary encoding to behave realistically.
pub fn text(prefix: &str, id: usize, words: &[&str], rng: &mut StdRng, count: usize) -> String {
    let mut s = format!("{prefix}#{id}");
    for _ in 0..count {
        s.push(' ');
        s.push_str(words[rng.gen_range(0..words.len())]);
    }
    s
}

/// Uniform pick from a slice.
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        assert!(counts[0] > 500);
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn text_is_deterministic_per_seed() {
        let words = ["red", "green", "blue"];
        let a = text("x", 7, &words, &mut StdRng::seed_from_u64(3), 4);
        let b = text("x", 7, &words, &mut StdRng::seed_from_u64(3), 4);
        assert_eq!(a, b);
        assert!(a.starts_with("x#7 "));
    }
}
