//! JOB-like workload: an IMDB-style schema with planted correlations.
//!
//! The Join Order Benchmark's difficulty comes from real-world correlations
//! in the IMDB data set that break the attribute-value-independence
//! assumption of traditional optimizers (Leis et al., "How good are query
//! optimizers, really?"). We cannot ship IMDB, so this generator plants the
//! same *kinds* of correlations by construction:
//!
//! * German production companies attach almost exclusively to movies from
//!   1970–1989 (country ⇄ production year across `company_name` /
//!   `movie_companies` / `title`),
//! * genres depend on production year (documentaries early, action late),
//! * ratings anti-correlate with year,
//! * cast, keyword and company attachment per movie is Zipf-skewed
//!   (blockbusters have hundreds of entries),
//! * keywords depend on title kind.
//!
//! The 30 generated queries (3–12 joins, with multi-alias self-joins like
//! JOB's) filter on exactly these correlated attribute pairs, so estimated
//! and true intermediate cardinalities diverge by orders of magnitude —
//! the catastrophic-plan tail of the paper's Figure 6.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skinner_query::UdfRegistry;
use skinner_storage::{schema, Catalog, Value};

use crate::dist::Zipf;
use crate::{BenchQuery, Workload};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Size multiplier (1.0 → 10k titles, 60k cast entries, …).
    pub scale: f64,
    pub seed: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            scale: 1.0,
            seed: 0x10B,
        }
    }
}

const COUNTRIES: [&str; 10] = [
    "[us]", "[gb]", "[de]", "[fr]", "[jp]", "[it]", "[es]", "[ca]", "[in]", "[se]",
];
const GENRES: [&str; 8] = [
    "Drama",
    "Comedy",
    "Documentary",
    "Action",
    "Thriller",
    "Romance",
    "Horror",
    "Short",
];
const KINDS: [&str; 5] = ["movie", "tv series", "tv movie", "video movie", "episode"];
const ROLES: [&str; 6] = [
    "actor", "actress", "producer", "director", "writer", "composer",
];
const KEYWORDS_SPECIAL: [&str; 6] = [
    "character-name-in-title",
    "based-on-novel",
    "sequel",
    "superhero",
    "love",
    "murder",
];
const COMPANY_TYPES: [&str; 3] = [
    "production companies",
    "distributors",
    "special effects companies",
];
const INFO_TYPES: [&str; 6] = [
    "genres",
    "rating",
    "runtimes",
    "languages",
    "countries",
    "release dates",
];

/// Generate data and the 30-query workload.
pub fn generate(cfg: &JobConfig) -> Workload {
    let catalog = build_catalog(cfg);
    Workload {
        catalog,
        udfs: UdfRegistry::new(),
        queries: queries(),
    }
}

fn sizes(scale: f64) -> JobSizes {
    let s = |base: f64, min: usize| ((base * scale) as usize).max(min);
    JobSizes {
        titles: s(10_000.0, 200),
        companies: s(1_500.0, 40),
        movie_companies: s(30_000.0, 400),
        movie_info: s(50_000.0, 600),
        movie_info_idx: s(15_000.0, 200),
        names: s(20_000.0, 200),
        cast_info: s(60_000.0, 800),
        keywords: s(2_000.0, 50),
        movie_keyword: s(40_000.0, 500),
    }
}

struct JobSizes {
    titles: usize,
    companies: usize,
    movie_companies: usize,
    movie_info: usize,
    movie_info_idx: usize,
    names: usize,
    cast_info: usize,
    keywords: usize,
    movie_keyword: usize,
}

fn build_catalog(cfg: &JobConfig) -> Arc<Catalog> {
    let n = sizes(cfg.scale);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cat = Catalog::new();

    // Dimension tables.
    let mut b = cat.builder("kind_type", schema![("id", Int), ("kind", Str)]);
    for (i, k) in KINDS.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64), Value::from(*k)]);
    }
    cat.register(b.finish());
    let mut b = cat.builder("company_type", schema![("id", Int), ("kind", Str)]);
    for (i, k) in COMPANY_TYPES.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64), Value::from(*k)]);
    }
    cat.register(b.finish());
    let mut b = cat.builder("info_type", schema![("id", Int), ("info", Str)]);
    for (i, k) in INFO_TYPES.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64), Value::from(*k)]);
    }
    cat.register(b.finish());
    let mut b = cat.builder("role_type", schema![("id", Int), ("role", Str)]);
    for (i, k) in ROLES.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64), Value::from(*k)]);
    }
    cat.register(b.finish());

    // title: production year uniform; kind correlated with year (episodes
    // and tv series are overwhelmingly post-1990).
    let mut years = Vec::with_capacity(n.titles);
    let mut b = cat.builder(
        "title",
        schema![
            ("id", Int),
            ("kind_id", Int),
            ("production_year", Int),
            ("title", Str),
        ],
    );
    for i in 0..n.titles {
        let year = rng.gen_range(1930..2018);
        years.push(year);
        let kind = if year >= 1990 {
            // 60% series/episode content in the streaming era.
            if rng.gen_bool(0.6) {
                *crate::dist::pick(&mut rng, &[1i64, 2, 4])
            } else {
                0
            }
        } else if rng.gen_bool(0.9) {
            0 // almost everything old is "movie"
        } else {
            2
        };
        b.push_row(&[
            Value::Int(i as i64),
            Value::Int(kind),
            Value::Int(year),
            Value::from(format!("Title {i}").as_str()),
        ]);
    }
    cat.register(b.finish());

    // company_name: country Zipf-skewed (US heavy); remember per-country
    // company lists so movie_companies can correlate with years.
    let country_zipf = Zipf::new(COUNTRIES.len(), 1.1);
    let mut by_country: Vec<Vec<i64>> = vec![Vec::new(); COUNTRIES.len()];
    let mut b = cat.builder(
        "company_name",
        schema![("id", Int), ("name", Str), ("country_code", Str)],
    );
    for i in 0..n.companies {
        let c = country_zipf.sample(&mut rng);
        by_country[c].push(i as i64);
        b.push_row(&[
            Value::Int(i as i64),
            Value::from(format!("Company {i}").as_str()),
            Value::from(COUNTRIES[c]),
        ]);
    }
    // Guarantee every country has at least one company.
    for companies in by_country.iter_mut() {
        if companies.is_empty() {
            companies.push(0);
        }
    }
    cat.register(b.finish());

    // movie_companies: THE planted correlation — movies from 1970–1989
    // attach to German companies 60% of the time; others almost never.
    let movie_zipf = Zipf::new(n.titles, 0.8);
    let de = COUNTRIES.iter().position(|&c| c == "[de]").unwrap();
    let mut b = cat.builder(
        "movie_companies",
        schema![
            ("id", Int),
            ("movie_id", Int),
            ("company_id", Int),
            ("company_type_id", Int),
        ],
    );
    for i in 0..n.movie_companies {
        let movie = movie_zipf.sample(&mut rng);
        let year = years[movie];
        let country = if (1970..1990).contains(&year) && rng.gen_bool(0.6) {
            de
        } else {
            // Redraw until non-German (keeps German rare outside the era).
            let mut c = country_zipf.sample(&mut rng);
            while c == de && !(1970..1990).contains(&year) && rng.gen_bool(0.95) {
                c = country_zipf.sample(&mut rng);
            }
            c
        };
        let company = by_country[country][rng.gen_range(0..by_country[country].len())];
        b.push_row(&[
            Value::Int(i as i64),
            Value::Int(movie as i64),
            Value::Int(company),
            Value::Int(rng.gen_range(0..COMPANY_TYPES.len() as i64)),
        ]);
    }
    cat.register(b.finish());

    // movie_info: genres correlated with year.
    let mut b = cat.builder(
        "movie_info",
        schema![
            ("id", Int),
            ("movie_id", Int),
            ("info_type_id", Int),
            ("info", Str),
        ],
    );
    let mut seen_mi = std::collections::HashSet::new();
    let mut mi_id = 0i64;
    for _ in 0..n.movie_info {
        let movie = movie_zipf.sample(&mut rng);
        let year = years[movie];
        let itype = rng.gen_range(0..INFO_TYPES.len());
        let info: String = match INFO_TYPES[itype] {
            "genres" => {
                let g = if year < 1960 {
                    if rng.gen_bool(0.5) {
                        "Documentary"
                    } else {
                        "Short"
                    }
                } else if year >= 1990 {
                    if rng.gen_bool(0.5) {
                        "Action"
                    } else {
                        GENRES[rng.gen_range(0..GENRES.len())]
                    }
                } else {
                    GENRES[rng.gen_range(0..GENRES.len())]
                };
                g.to_string()
            }
            "runtimes" => format!("{}", rng.gen_range(5..240)),
            "languages" => {
                ["English", "German", "French", "Japanese"][rng.gen_range(0..4)].to_string()
            }
            "countries" => COUNTRIES[country_zipf.sample(&mut rng)].to_string(),
            _ => format!("info-{}", rng.gen_range(0..50)),
        };
        // IMDB's (movie, info_type, value) triples are unique; duplicates
        // would square per-movie fanouts for hot titles.
        if !seen_mi.insert((movie, itype, info.clone())) {
            continue;
        }
        b.push_row(&[
            Value::Int(mi_id),
            Value::Int(movie as i64),
            Value::Int(itype as i64),
            Value::from(info.as_str()),
        ]);
        mi_id += 1;
    }
    cat.register(b.finish());

    // movie_info_idx: ratings anti-correlated with year (classics rate high).
    let rating_type = INFO_TYPES.iter().position(|&t| t == "rating").unwrap();
    let mut b = cat.builder(
        "movie_info_idx",
        schema![
            ("id", Int),
            ("movie_id", Int),
            ("info_type_id", Int),
            ("info", Str),
        ],
    );
    let mut rated = std::collections::HashSet::new();
    let mut mii_id = 0i64;
    for _ in 0..n.movie_info_idx {
        let movie = movie_zipf.sample(&mut rng);
        // One rating per movie, as in IMDB.
        if !rated.insert(movie) {
            continue;
        }
        let year = years[movie];
        let base: f64 = if year < 1970 { 7.0 } else { 5.0 };
        let rating = (base + rng.gen_range(-2.0..2.5)).clamp(1.0, 9.9);
        b.push_row(&[
            Value::Int(mii_id),
            Value::Int(movie as i64),
            Value::Int(rating_type as i64),
            Value::from(format!("{rating:.1}").as_str()),
        ]);
        mii_id += 1;
    }
    cat.register(b.finish());

    // name: people, gendered.
    let mut genders = Vec::with_capacity(n.names);
    let mut b = cat.builder("name", schema![("id", Int), ("name", Str), ("gender", Str)]);
    for i in 0..n.names {
        let g = if rng.gen_bool(0.45) { "f" } else { "m" };
        genders.push(g);
        b.push_row(&[
            Value::Int(i as i64),
            Value::from(format!("Person {i}").as_str()),
            Value::from(g),
        ]);
    }
    cat.register(b.finish());

    // cast_info: Zipf-hot movies and people; role correlated with gender.
    let person_zipf = Zipf::new(n.names, 1.0);
    let mut b = cat.builder(
        "cast_info",
        schema![
            ("id", Int),
            ("movie_id", Int),
            ("person_id", Int),
            ("role_id", Int),
        ],
    );
    for i in 0..n.cast_info {
        let movie = movie_zipf.sample(&mut rng);
        let person = person_zipf.sample(&mut rng);
        let role = if genders[person] == "f" {
            if rng.gen_bool(0.7) {
                1 // actress
            } else {
                rng.gen_range(2..ROLES.len() as i64)
            }
        } else if rng.gen_bool(0.6) {
            0 // actor
        } else {
            rng.gen_range(2..ROLES.len() as i64)
        };
        b.push_row(&[
            Value::Int(i as i64),
            Value::Int(movie as i64),
            Value::Int(person as i64),
            Value::Int(role),
        ]);
    }
    cat.register(b.finish());

    // keyword + movie_keyword: special keywords only on certain kinds.
    let mut b = cat.builder("keyword", schema![("id", Int), ("keyword", Str)]);
    for i in 0..n.keywords {
        let kw = match KEYWORDS_SPECIAL.get(i) {
            Some(special) => special.to_string(),
            None => format!("keyword-{i}"),
        };
        b.push_row(&[Value::Int(i as i64), Value::from(kw.as_str())]);
    }
    cat.register(b.finish());
    let kw_zipf = Zipf::new(n.keywords, 1.0);
    let sequel = KEYWORDS_SPECIAL
        .iter()
        .position(|&k| k == "sequel")
        .unwrap();
    let mut b = cat.builder(
        "movie_keyword",
        schema![("id", Int), ("movie_id", Int), ("keyword_id", Int)],
    );
    let mut seen_mk = std::collections::HashSet::new();
    let mut mk_id = 0i64;
    for _ in 0..n.movie_keyword {
        let movie = movie_zipf.sample(&mut rng);
        let year = years[movie];
        // "sequel" is a modern phenomenon in this universe.
        let kw = if year >= 1990 && rng.gen_bool(0.15) {
            sequel
        } else {
            kw_zipf.sample(&mut rng)
        };
        // (movie, keyword) pairs are unique in IMDB.
        if !seen_mk.insert((movie, kw)) {
            continue;
        }
        b.push_row(&[
            Value::Int(mk_id),
            Value::Int(movie as i64),
            Value::Int(kw as i64),
        ]);
        mk_id += 1;
    }
    cat.register(b.finish());
    Arc::new(cat)
}

/// The 30-query workload (names `1a` … `10c`, JOB style: template × params).
pub fn queries() -> Vec<BenchQuery> {
    let mut v = Vec::new();
    let mut push = |name: &str, num_tables: usize, sql: String| {
        v.push(BenchQuery {
            name: name.into(),
            script: sql,
            num_tables,
        })
    };

    // Template 1 (3 joins): country × year correlation.
    for (tag, cc, y) in [
        ("1a", "[de]", 2000),
        ("1b", "[de]", 1975),
        ("1c", "[fr]", 1990),
    ] {
        push(
            tag,
            3,
            format!(
                "SELECT COUNT(*) matches FROM title t, movie_companies mc, company_name cn \
                 WHERE t.id = mc.movie_id AND cn.id = mc.company_id \
                   AND cn.country_code = '{cc}' AND t.production_year > {y};"
            ),
        );
    }

    // Template 2 (4 joins): + company type.
    for (tag, cc, y1, y2) in [
        ("2a", "[de]", 1970, 1989),
        ("2b", "[us]", 1950, 1959),
        ("2c", "[jp]", 1990, 2010),
    ] {
        push(
            tag,
            4,
            format!(
                "SELECT MIN(t.title) first_title \
                 FROM title t, movie_companies mc, company_name cn, company_type ct \
                 WHERE t.id = mc.movie_id AND cn.id = mc.company_id \
                   AND ct.id = mc.company_type_id AND ct.kind = 'production companies' \
                   AND cn.country_code = '{cc}' \
                   AND t.production_year BETWEEN {y1} AND {y2};"
            ),
        );
    }

    // Template 3 (3 joins): genre × year correlation.
    for (tag, genre, y1, y2) in [
        ("3a", "Documentary", 1990, 2017),
        ("3b", "Action", 1930, 1960),
        ("3c", "Drama", 1970, 1990),
    ] {
        push(
            tag,
            3,
            format!(
                "SELECT COUNT(*) matches FROM title t, movie_info mi, info_type it \
                 WHERE t.id = mi.movie_id AND it.id = mi.info_type_id \
                   AND it.info = 'genres' AND mi.info = '{genre}' \
                   AND t.production_year BETWEEN {y1} AND {y2};"
            ),
        );
    }

    // Template 4 (4 joins): cast role × gender correlation.
    for (tag, role, gender, y) in [
        ("4a", "actress", "f", 1990),
        ("4b", "actress", "m", 1990),
        ("4c", "director", "f", 1970),
    ] {
        push(
            tag,
            4,
            format!(
                "SELECT COUNT(*) matches \
                 FROM title t, cast_info ci, name n, role_type rt \
                 WHERE t.id = ci.movie_id AND n.id = ci.person_id \
                   AND rt.id = ci.role_id AND rt.role = '{role}' \
                   AND n.gender = '{gender}' AND t.production_year > {y};"
            ),
        );
    }

    // Template 5 (3 joins): keyword × era correlation.
    for (tag, kw, y) in [
        ("5a", "sequel", 1990),
        ("5b", "sequel", 1950),
        ("5c", "based-on-novel", 1980),
    ] {
        push(
            tag,
            3,
            format!(
                "SELECT COUNT(*) matches FROM title t, movie_keyword mk, keyword k \
                 WHERE t.id = mk.movie_id AND k.id = mk.keyword_id \
                   AND k.keyword = '{kw}' AND t.production_year > {y};"
            ),
        );
    }

    // Template 6 (6 joins): companies + genre info.
    for (tag, cc, genre) in [
        ("6a", "[de]", "Action"),
        ("6b", "[us]", "Documentary"),
        ("6c", "[gb]", "Drama"),
    ] {
        push(
            tag,
            6,
            format!(
                "SELECT MIN(t.title) first_title \
                 FROM title t, movie_companies mc, company_name cn, company_type ct, \
                      movie_info mi, info_type it \
                 WHERE t.id = mc.movie_id AND cn.id = mc.company_id \
                   AND ct.id = mc.company_type_id AND t.id = mi.movie_id \
                   AND it.id = mi.info_type_id AND it.info = 'genres' \
                   AND mi.info = '{genre}' AND cn.country_code = '{cc}';"
            ),
        );
    }

    // Template 7 (5 joins, info_type self-alias): genre + rating.
    for (tag, genre, rating) in [
        ("7a", "Documentary", "8.0"),
        ("7b", "Action", "8.5"),
        ("7c", "Drama", "3.0"),
    ] {
        push(
            tag,
            5,
            format!(
                "SELECT COUNT(*) matches \
                 FROM title t, movie_info mi, info_type it1, movie_info_idx mii, \
                      info_type it2 \
                 WHERE t.id = mi.movie_id AND it1.id = mi.info_type_id \
                   AND t.id = mii.movie_id AND it2.id = mii.info_type_id \
                   AND it1.info = 'genres' AND it2.info = 'rating' \
                   AND mi.info = '{genre}' AND mii.info > '{rating}';"
            ),
        );
    }

    // Template 8 (8 joins): companies + keywords + genre.
    for (tag, cc, kw, genre) in [
        ("8a", "[de]", "sequel", "Action"),
        ("8b", "[us]", "love", "Romance"),
        ("8c", "[fr]", "murder", "Thriller"),
    ] {
        push(
            tag,
            8,
            format!(
                "SELECT MIN(t.title) first_title \
                 FROM title t, movie_companies mc, company_name cn, company_type ct, \
                      movie_keyword mk, keyword k, movie_info mi, info_type it \
                 WHERE t.id = mc.movie_id AND cn.id = mc.company_id \
                   AND ct.id = mc.company_type_id AND t.id = mk.movie_id \
                   AND k.id = mk.keyword_id AND t.id = mi.movie_id \
                   AND it.id = mi.info_type_id AND it.info = 'genres' \
                   AND cn.country_code = '{cc}' AND k.keyword = '{kw}' \
                   AND mi.info = '{genre}';"
            ),
        );
    }

    // Template 9 (10 joins): + cast and kind. Keyword and role filters keep
    // the true result small while the correlated predicates still break the
    // estimates — the JOB recipe: feasible for a good order, catastrophic
    // for a bad one.
    for (tag, cc, role, kw, y) in [
        ("9a", "[us]", "actress", "sequel", 1990),
        ("9b", "[de]", "actor", "love", 1970),
        ("9c", "[gb]", "director", "murder", 1995),
    ] {
        push(
            tag,
            10,
            format!(
                "SELECT MIN(n.name) person, MIN(t.title) first_title \
                 FROM title t, kind_type kt, movie_companies mc, company_name cn, \
                      company_type ct, cast_info ci, name n, role_type rt, \
                      movie_keyword mk, keyword k \
                 WHERE t.id = mc.movie_id AND cn.id = mc.company_id \
                   AND ct.id = mc.company_type_id AND kt.id = t.kind_id \
                   AND t.id = ci.movie_id AND n.id = ci.person_id \
                   AND rt.id = ci.role_id AND t.id = mk.movie_id \
                   AND k.id = mk.keyword_id AND k.keyword = '{kw}' \
                   AND cn.country_code = '{cc}' AND rt.role = '{role}' \
                   AND t.production_year > {y};"
            ),
        );
    }

    // Template 10 (13 joins): the full star around title with two keyword
    // constraints — every satellite is filtered, so the true result is tiny
    // while Zipf fanouts make wrong orders explode (the JOB recipe).
    for (tag, genre, rating, cc, kw1, kw2) in [
        ("10a", "Action", "7.0", "[us]", "sequel", "love"),
        (
            "10b",
            "Documentary",
            "6.0",
            "[de]",
            "based-on-novel",
            "murder",
        ),
        (
            "10c",
            "Drama",
            "8.0",
            "[fr]",
            "character-name-in-title",
            "sequel",
        ),
    ] {
        push(
            tag,
            13,
            format!(
                "SELECT MIN(t.title) first_title \
                 FROM title t, kind_type kt, movie_companies mc, company_name cn, \
                      company_type ct, movie_info mi, info_type it1, \
                      movie_info_idx mii, info_type it2, movie_keyword mk1, \
                      keyword k1, movie_keyword mk2, keyword k2 \
                 WHERE t.id = mc.movie_id AND cn.id = mc.company_id \
                   AND ct.id = mc.company_type_id AND kt.id = t.kind_id \
                   AND t.id = mi.movie_id AND it1.id = mi.info_type_id \
                   AND t.id = mii.movie_id AND it2.id = mii.info_type_id \
                   AND t.id = mk1.movie_id AND k1.id = mk1.keyword_id \
                   AND t.id = mk2.movie_id AND k2.id = mk2.keyword_id \
                   AND it1.info = 'genres' AND it2.info = 'rating' \
                   AND mi.info = '{genre}' AND mii.info > '{rating}' \
                   AND k1.keyword = '{kw1}' AND k2.keyword = '{kw2}' \
                   AND cn.country_code = '{cc}';"
            ),
        );
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_queries_all_parse() {
        let qs = queries();
        assert_eq!(qs.len(), 30);
        for q in &qs {
            skinner_query::parse_statements(&q.script)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
    }

    #[test]
    fn all_tables_exist() {
        let w = generate(&JobConfig {
            scale: 0.05,
            seed: 3,
        });
        for t in [
            "title",
            "kind_type",
            "company_name",
            "company_type",
            "movie_companies",
            "movie_info",
            "movie_info_idx",
            "info_type",
            "name",
            "cast_info",
            "role_type",
            "keyword",
            "movie_keyword",
        ] {
            assert!(w.catalog.get(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn german_companies_correlate_with_70s_80s() {
        let w = generate(&JobConfig {
            scale: 0.2,
            seed: 4,
        });
        let title = w.catalog.get("title").unwrap();
        let mc = w.catalog.get("movie_companies").unwrap();
        let cn = w.catalog.get("company_name").unwrap();
        // Count German attachments by era.
        let de_code = w.catalog.interner().lookup("[de]").unwrap();
        let mut in_era = 0usize;
        let mut out_era = 0usize;
        for row in 0..mc.cardinality() {
            let movie = mc.value(row, 1).as_i64().unwrap() as u32;
            let company = mc.value(row, 2).as_i64().unwrap() as u32;
            if cn.column(2).code_at(company) == de_code {
                let year = title.value(movie, 2).as_i64().unwrap();
                if (1970..1990).contains(&year) {
                    in_era += 1;
                } else {
                    out_era += 1;
                }
            }
        }
        assert!(
            in_era > out_era * 2,
            "correlation not planted: {in_era} in-era vs {out_era} out"
        );
    }

    #[test]
    fn zipf_skew_in_cast() {
        let w = generate(&JobConfig {
            scale: 0.2,
            seed: 5,
        });
        let ci = w.catalog.get("cast_info").unwrap();
        let mut counts = std::collections::HashMap::new();
        for row in 0..ci.cardinality() {
            let movie = ci.value(row, 1).as_i64().unwrap();
            *counts.entry(movie).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = ci.num_rows() / counts.len();
        assert!(max > avg * 5, "no skew: max {max}, avg {avg}");
    }

    #[test]
    fn join_counts_span_3_to_12() {
        let qs = queries();
        let min = qs.iter().map(|q| q.num_tables).min().unwrap();
        let max = qs.iter().map(|q| q.num_tables).max().unwrap();
        assert_eq!(min, 3);
        assert_eq!(max, 13);
    }
}
