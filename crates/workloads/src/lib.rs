//! Benchmark workload generators.
//!
//! The paper evaluates on four workload families; since the original data
//! (IMDB, dbgen output) is not redistributable here, each is rebuilt as a
//! deterministic generator that preserves the property the experiment
//! exploits (see DESIGN.md's substitution table):
//!
//! * [`tpch`] — a mini `dbgen`: the eight TPC-H tables with the standard
//!   key structure and value distributions at a configurable scale factor,
//!   plus the ten evaluated queries (Q2, 3, 5, 7, 8, 9, 10, 11, 18, 21) in
//!   both the standard and the *UDF* variant (predicates wrapped in opaque
//!   functions, exactly the paper's TPC-UDF setup).
//! * [`job_like`] — an IMDB-style schema (13 tables around a `title` hub)
//!   with planted cross-table correlations and Zipf skew, plus a generated
//!   30-query workload (3–12 joins incl. self-join aliases): the Join Order
//!   Benchmark's difficulty (correlations break independence estimates)
//!   by construction.
//! * [`torture`] — the Optimizer Torture benchmarks of the appendix:
//!   UDF Torture (chain/star, one hidden empty join), Correlation Torture
//!   (uninformative statistics, one selective edge at position `m`) and
//!   Trivial Optimization (all non-Cartesian plans equivalent).

pub mod dist;
pub mod job_like;
pub mod torture;
pub mod tpch;

use std::sync::Arc;

use skinner_query::UdfRegistry;
use skinner_storage::Catalog;

/// One benchmark query: a name and a SQL script (possibly multi-statement,
/// using temp tables for decomposed nested queries).
#[derive(Debug, Clone)]
pub struct BenchQuery {
    pub name: String,
    pub script: String,
    /// Number of tables joined by the main statement (reporting).
    pub num_tables: usize,
}

/// A generated workload: data, UDFs and queries.
pub struct Workload {
    pub catalog: Arc<Catalog>,
    pub udfs: UdfRegistry,
    pub queries: Vec<BenchQuery>,
}
