//! The Optimizer Torture benchmarks (paper appendix, Figures 9–12).
//!
//! Corner cases "where the difference between optimal and sub-optimal query
//! plans is significant":
//!
//! * **UDF Torture** ([`udf_torture`]): every join predicate is a
//!   user-defined function — a black box for the optimizer. One *good*
//!   predicate yields an empty result; the rest are always satisfied.
//!   A plan applying the good predicate early finishes instantly; any other
//!   prefix explodes combinatorially.
//! * **Correlation Torture** ([`correlation_torture`]): chain equi-joins
//!   with statistics engineered to be *uninformative* — every edge has the
//!   same distinct counts, but the edge at position `m` is empty (disjoint
//!   key ranges) and all other edges have fanout 2.
//! * **Trivial Optimization** ([`trivial`]): all plans avoiding Cartesian
//!   products are equivalent (fanout-1 chain via opaque UDF equality), so
//!   exploration is pure overhead — the price of robustness, Figure 12.

use std::sync::Arc;

use skinner_query::UdfRegistry;
use skinner_storage::{schema, Catalog, Value};

use crate::{BenchQuery, Workload};

/// Join-graph shape for UDF torture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `T0 – T1 – … – Tk-1` with predicates on consecutive tables.
    Chain,
    /// Hub `T0` with predicates `T0 – Ti` for all satellites.
    Star,
}

/// UDF Torture: `num_tables` tables of `rows_per_table` tuples; all join
/// predicates are UDFs; the predicate at `good_edge` is always false.
///
/// `good_edge` indexes the predicate list: for chains, edge `i` connects
/// `t<i>`–`t<i+1>`; for stars, edge `i` connects the hub and satellite
/// `t<i+1>`.
pub fn udf_torture(
    shape: Shape,
    num_tables: usize,
    rows_per_table: usize,
    good_edge: usize,
) -> Workload {
    assert!(num_tables >= 2);
    let num_edges = num_tables - 1;
    assert!(good_edge < num_edges);
    let cat = Catalog::new();
    for t in 0..num_tables {
        let mut b = cat.builder(format!("t{t}"), schema![("v", Int)]);
        for r in 0..rows_per_table {
            b.push_row(&[Value::Int(r as i64)]);
        }
        cat.register(b.finish());
    }
    let udfs = UdfRegistry::new();
    let mut conjuncts = Vec::new();
    for e in 0..num_edges {
        let name = if e == good_edge {
            let n = format!("good_pred_{e}");
            udfs.register(&n, |_args| Value::from(false));
            n
        } else {
            let n = format!("bad_pred_{e}");
            udfs.register(&n, |_args| Value::from(true));
            n
        };
        let (a, b) = match shape {
            Shape::Chain => (e, e + 1),
            Shape::Star => (0, e + 1),
        };
        conjuncts.push(format!("{name}(t{a}.v, t{b}.v)"));
    }
    let from: Vec<String> = (0..num_tables).map(|t| format!("t{t}")).collect();
    let script = format!(
        "SELECT COUNT(*) matches FROM {} WHERE {};",
        from.join(", "),
        conjuncts.join(" AND ")
    );
    Workload {
        catalog: Arc::new(cat),
        udfs,
        queries: vec![BenchQuery {
            name: format!("udf-torture-{:?}-{num_tables}t-good{good_edge}", shape),
            script,
            num_tables,
        }],
    }
}

/// Correlation Torture: a chain `t0.b = t1.a, t1.b = t2.a, …` where
/// *statistics cannot distinguish the edges*: every join column has
/// `rows/2` distinct values. The edge leaving table `m` is empty (its `b`
/// values live in a disjoint range); every other edge has fanout 2.
///
/// An optimizer with perfect information starts at edge `m` and finishes in
/// `O(rows)`; an uninformed one that starts at the wrong end materializes
/// `rows · 2^k` intermediates before discovering the empty edge.
pub fn correlation_torture(num_tables: usize, rows_per_table: usize, m: usize) -> Workload {
    assert!(num_tables >= 2);
    assert!(m < num_tables - 1, "m indexes a chain edge");
    let n = rows_per_table.max(4);
    let half = (n / 2) as i64;
    let cat = Catalog::new();
    for t in 0..num_tables {
        let mut b = cat.builder(format!("t{t}"), schema![("a", Int), ("b", Int)]);
        for r in 0..n as i64 {
            // `a` repeats each key twice → incoming fanout 2.
            let a = r % half;
            // `b` is one key per pair → outgoing fanout 2 against the next
            // table's `a`; the edge from table m is shifted out of range.
            let b_val = if t == m {
                r % half + half * 2
            } else {
                r % half
            };
            b.push_row(&[Value::Int(a), Value::Int(b_val)]);
        }
        cat.register(b.finish());
    }
    let from: Vec<String> = (0..num_tables).map(|t| format!("t{t}")).collect();
    let joins: Vec<String> = (0..num_tables - 1)
        .map(|t| format!("t{t}.b = t{}.a", t + 1))
        .collect();
    let script = format!(
        "SELECT COUNT(*) matches FROM {} WHERE {};",
        from.join(", "),
        joins.join(" AND ")
    );
    Workload {
        catalog: Arc::new(cat),
        udfs: UdfRegistry::new(),
        queries: vec![BenchQuery {
            name: format!("correlation-torture-{num_tables}t-m{m}"),
            script,
            num_tables,
        }],
    }
}

/// Trivial Optimization: a fanout-1 chain joined through *opaque UDF
/// equality predicates* (Figure 12's "UDF Equality Predicates"), so all
/// non-Cartesian plans cost the same and exploration is pure overhead.
pub fn trivial(num_tables: usize, rows_per_table: usize) -> Workload {
    assert!(num_tables >= 2);
    let cat = Catalog::new();
    for t in 0..num_tables {
        let mut b = cat.builder(format!("t{t}"), schema![("a", Int), ("b", Int)]);
        for r in 0..rows_per_table as i64 {
            b.push_row(&[Value::Int(r), Value::Int(r)]);
        }
        cat.register(b.finish());
    }
    let udfs = UdfRegistry::new();
    udfs.register("udf_eq", |args| {
        Value::from(args[0].as_i64() == args[1].as_i64())
    });
    let from: Vec<String> = (0..num_tables).map(|t| format!("t{t}")).collect();
    let joins: Vec<String> = (0..num_tables - 1)
        .map(|t| format!("udf_eq(t{t}.b, t{}.a)", t + 1))
        .collect();
    let script = format!(
        "SELECT COUNT(*) matches FROM {} WHERE {};",
        from.join(", "),
        joins.join(" AND ")
    );
    Workload {
        catalog: Arc::new(cat),
        udfs,
        queries: vec![BenchQuery {
            name: format!("trivial-{num_tables}t"),
            script,
            num_tables,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udf_torture_builds_both_shapes() {
        for shape in [Shape::Chain, Shape::Star] {
            let w = udf_torture(shape, 5, 20, 2);
            assert_eq!(w.queries.len(), 1);
            assert!(w.catalog.get("t4").is_some());
            assert!(w.queries[0].script.contains("good_pred_2"));
            skinner_query::parse_statements(&w.queries[0].script).unwrap();
        }
    }

    #[test]
    fn udf_predicates_behave() {
        let w = udf_torture(Shape::Chain, 4, 10, 1);
        let good = w.udfs.lookup("good_pred_1").unwrap();
        let bad = w.udfs.lookup("bad_pred_0").unwrap();
        assert!(!w.udfs.func(good)(&[Value::Int(1), Value::Int(1)]).as_bool());
        assert!(w.udfs.func(bad)(&[Value::Int(1), Value::Int(2)]).as_bool());
    }

    #[test]
    fn correlation_torture_edge_m_is_empty() {
        let w = correlation_torture(4, 40, 1);
        let t1 = w.catalog.get("t1").unwrap();
        let t2 = w.catalog.get("t2").unwrap();
        // t1.b values are shifted out of t2.a's range.
        let mut t2_a = std::collections::HashSet::new();
        for r in 0..t2.cardinality() {
            t2_a.insert(t2.value(r, 0).as_i64().unwrap());
        }
        for r in 0..t1.cardinality() {
            let b = t1.value(r, 1).as_i64().unwrap();
            assert!(!t2_a.contains(&b), "edge m unexpectedly joins");
        }
        // Non-m edges have fanout 2: t0.b hits exactly two rows of t1.a.
        let t0 = w.catalog.get("t0").unwrap();
        let t1a: Vec<i64> = (0..t1.cardinality())
            .map(|r| t1.value(r, 0).as_i64().unwrap())
            .collect();
        let b0 = t0.value(0, 1).as_i64().unwrap();
        assert_eq!(t1a.iter().filter(|&&a| a == b0).count(), 2);
    }

    #[test]
    fn trivial_chain_has_fanout_one() {
        let w = trivial(4, 25);
        let q = &w.queries[0];
        assert!(q.script.contains("udf_eq"));
        skinner_query::parse_statements(&q.script).unwrap();
        // Result should be exactly rows_per_table once executed; verified
        // end-to-end by integration tests.
        let t = w.catalog.get("t0").unwrap();
        assert_eq!(t.num_rows(), 25);
    }
}
