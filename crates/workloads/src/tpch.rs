//! Mini TPC-H: schema-faithful data generator and the ten evaluated queries.
//!
//! Reproduces the TPC-H tables (correct key structure, standard value
//! distributions, scale-factor parameter) and the queries the paper's
//! Figure 13 / Table 7 evaluate: Q2, Q3, Q5, Q7, Q8, Q9, Q10, Q11, Q18 and
//! Q21. Nested query blocks are decomposed into temp-table scripts, as the
//! paper prescribes for nested queries (Section 4, citing Neumann & Kemper's
//! unnesting). Dates are stored as integer day numbers (see [`days`]);
//! decimals as floats — both documented substitutions that preserve query
//! selectivity structure.
//!
//! `generate_udf` produces the TPC-UDF variant: every unary predicate is
//! replaced by a semantically equivalent — but optimizer-opaque — UDF,
//! exactly the paper's "TPC-H with UDFs" setup.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skinner_query::expr::like_match;
use skinner_query::UdfRegistry;
use skinner_storage::{schema, Catalog, Value};

use crate::{BenchQuery, Workload};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 ≈ 6M lineitems; tests use 0.002–0.01).
    pub scale: f64,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            seed: 0x79C8,
        }
    }
}

/// Day number of a date (days since 1992-01-01, months padded to 31 days —
/// monotone, collision-free, used consistently by generator and queries).
pub const fn days(y: i64, m: i64, d: i64) -> i64 {
    (y - 1992) * 372 + (m - 1) * 31 + (d - 1)
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const TYPE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const COLORS: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "blanched",
    "green",
    "blush",
    "burnished",
];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];

/// Row counts per table at the configured scale.
pub fn table_sizes(scale: f64) -> [(&'static str, usize); 8] {
    let s = |base: f64, min: usize| ((base * scale) as usize).max(min);
    [
        ("region", 5),
        ("nation", 25),
        ("supplier", s(10_000.0, 20)),
        ("part", s(200_000.0, 50)),
        ("partsupp", s(800_000.0, 200)),
        ("customer", s(150_000.0, 30)),
        ("orders", s(1_500_000.0, 300)),
        ("lineitem", s(6_000_000.0, 1200)),
    ]
}

/// Generate the standard TPC-H workload.
pub fn generate(cfg: &TpchConfig) -> Workload {
    let catalog = build_catalog(cfg);
    let mut udfs = UdfRegistry::new();
    register_udfs(&mut udfs);
    Workload {
        catalog,
        udfs,
        queries: queries(false),
    }
}

/// Generate the TPC-UDF variant (unary predicates wrapped in opaque UDFs).
pub fn generate_udf(cfg: &TpchConfig) -> Workload {
    let catalog = build_catalog(cfg);
    let mut udfs = UdfRegistry::new();
    register_udfs(&mut udfs);
    Workload {
        catalog,
        udfs,
        queries: queries(true),
    }
}

fn build_catalog(cfg: &TpchConfig) -> Arc<Catalog> {
    let sizes = table_sizes(cfg.scale);
    let n_supplier = sizes[2].1;
    let n_part = sizes[3].1;
    let n_partsupp = sizes[4].1;
    let n_customer = sizes[5].1;
    let n_orders = sizes[6].1;
    let n_lineitem = sizes[7].1;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cat = Catalog::new();

    // region / nation.
    let mut b = cat.builder("region", schema![("r_regionkey", Int), ("r_name", Str)]);
    for (i, r) in REGIONS.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64), Value::from(*r)]);
    }
    cat.register(b.finish());
    let mut b = cat.builder(
        "nation",
        schema![("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)],
    );
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        b.push_row(&[
            Value::Int(i as i64),
            Value::from(*name),
            Value::Int(*region as i64),
        ]);
    }
    cat.register(b.finish());

    // supplier.
    let mut b = cat.builder(
        "supplier",
        schema![
            ("s_suppkey", Int),
            ("s_name", Str),
            ("s_nationkey", Int),
            ("s_acctbal", Float),
        ],
    );
    for i in 0..n_supplier {
        b.push_row(&[
            Value::Int(i as i64),
            Value::from(format!("Supplier#{i:09}").as_str()),
            Value::Int(rng.gen_range(0..25)),
            Value::Float(rng.gen_range(-999.0..9999.0)),
        ]);
    }
    cat.register(b.finish());

    // part.
    let mut b = cat.builder(
        "part",
        schema![
            ("p_partkey", Int),
            ("p_name", Str),
            ("p_brand", Str),
            ("p_type", Str),
            ("p_size", Int),
            ("p_container", Str),
            ("p_retailprice", Float),
        ],
    );
    for i in 0..n_part {
        let name = format!(
            "{} {} {}",
            COLORS[rng.gen_range(0..COLORS.len())],
            COLORS[rng.gen_range(0..COLORS.len())],
            COLORS[rng.gen_range(0..COLORS.len())]
        );
        let ptype = format!(
            "{} {} {}",
            TYPE_1[rng.gen_range(0..6)],
            TYPE_2[rng.gen_range(0..5)],
            TYPE_3[rng.gen_range(0..5)]
        );
        b.push_row(&[
            Value::Int(i as i64),
            Value::from(name.as_str()),
            Value::from(format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6)).as_str()),
            Value::from(ptype.as_str()),
            Value::Int(rng.gen_range(1..51)),
            Value::from(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
            Value::Float(900.0 + (i % 1000) as f64 / 10.0),
        ]);
    }
    cat.register(b.finish());

    // partsupp: ~4 suppliers per part.
    let mut b = cat.builder(
        "partsupp",
        schema![
            ("ps_partkey", Int),
            ("ps_suppkey", Int),
            ("ps_availqty", Int),
            ("ps_supplycost", Float),
        ],
    );
    for i in 0..n_partsupp {
        let part = i % n_part;
        let supp = (part + (i / n_part) * (n_supplier / 4 + 1)) % n_supplier;
        b.push_row(&[
            Value::Int(part as i64),
            Value::Int(supp as i64),
            Value::Int(rng.gen_range(1..10_000)),
            Value::Float(rng.gen_range(1.0..1000.0)),
        ]);
    }
    cat.register(b.finish());

    // customer.
    let mut b = cat.builder(
        "customer",
        schema![
            ("c_custkey", Int),
            ("c_name", Str),
            ("c_nationkey", Int),
            ("c_acctbal", Float),
            ("c_mktsegment", Str),
        ],
    );
    for i in 0..n_customer {
        b.push_row(&[
            Value::Int(i as i64),
            Value::from(format!("Customer#{i:09}").as_str()),
            Value::Int(rng.gen_range(0..25)),
            Value::Float(rng.gen_range(-999.0..9999.0)),
            Value::from(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
        ]);
    }
    cat.register(b.finish());

    // orders.
    let date_lo = days(1992, 1, 1);
    let date_hi = days(1998, 8, 2);
    let cutoff = days(1995, 6, 17);
    let mut order_dates = Vec::with_capacity(n_orders);
    let mut b = cat.builder(
        "orders",
        schema![
            ("o_orderkey", Int),
            ("o_custkey", Int),
            ("o_orderstatus", Str),
            ("o_totalprice", Float),
            ("o_orderdate", Int),
            ("o_orderpriority", Str),
        ],
    );
    for i in 0..n_orders {
        let date = rng.gen_range(date_lo..date_hi);
        order_dates.push(date);
        let status = if date + 110 < cutoff { "F" } else { "O" };
        b.push_row(&[
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..n_customer as i64)),
            Value::from(status),
            Value::Float(rng.gen_range(850.0..500_000.0)),
            Value::Int(date),
            Value::from(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
        ]);
    }
    cat.register(b.finish());

    // lineitem.
    let mut b = cat.builder(
        "lineitem",
        schema![
            ("l_orderkey", Int),
            ("l_partkey", Int),
            ("l_suppkey", Int),
            ("l_linenumber", Int),
            ("l_quantity", Float),
            ("l_extendedprice", Float),
            ("l_discount", Float),
            ("l_tax", Float),
            ("l_returnflag", Str),
            ("l_linestatus", Str),
            ("l_shipdate", Int),
            ("l_commitdate", Int),
            ("l_receiptdate", Int),
            ("l_shipmode", Str),
        ],
    );
    let mut produced = 0usize;
    let mut order = 0usize;
    while produced < n_lineitem {
        let lines = rng.gen_range(1..8).min(n_lineitem - produced);
        let okey = order % n_orders;
        let odate = order_dates[okey];
        for line in 0..lines {
            let part = rng.gen_range(0..n_part);
            // Match a partsupp pairing so Q9's join finds rows.
            let supp = (part + rng.gen_range(0..4) * (n_supplier / 4 + 1)) % n_supplier;
            let qty = rng.gen_range(1..51) as f64;
            let ship = odate + rng.gen_range(1..122);
            let commit = odate + rng.gen_range(30..91);
            let receipt = ship + rng.gen_range(1..31);
            let retflag = if receipt <= cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if ship <= cutoff { "F" } else { "O" };
            b.push_row(&[
                Value::Int(okey as i64),
                Value::Int(part as i64),
                Value::Int(supp as i64),
                Value::Int(line as i64),
                Value::Float(qty),
                Value::Float(qty * (900.0 + (part % 1000) as f64 / 10.0)),
                Value::Float((rng.gen_range(0..11) as f64) / 100.0),
                Value::Float((rng.gen_range(0..9) as f64) / 100.0),
                Value::from(retflag),
                Value::from(linestatus),
                Value::Int(ship),
                Value::Int(commit),
                Value::Int(receipt),
                Value::from(MODES[rng.gen_range(0..MODES.len())]),
            ]);
            produced += 1;
        }
        order += 1;
    }
    cat.register(b.finish());
    Arc::new(cat)
}

/// Register the opaque UDFs the TPC-UDF variant uses. Each is semantically
/// identical to the unary predicate it replaces; only the optimizer's view
/// changes (default selectivity instead of statistics).
fn register_udfs(udfs: &mut UdfRegistry) {
    let streq =
        |lit: &'static str| move |args: &[Value]| Value::from(args[0].as_str() == Some(lit));
    udfs.register("udf_region_europe", streq("EUROPE"));
    udfs.register("udf_region_asia", streq("ASIA"));
    udfs.register("udf_region_america", streq("AMERICA"));
    udfs.register("udf_nation_germany", streq("GERMANY"));
    udfs.register("udf_nation_brazil", streq("BRAZIL"));
    udfs.register("udf_nation_saudi", streq("SAUDI ARABIA"));
    udfs.register("udf_segment_building", streq("BUILDING"));
    udfs.register("udf_flag_r", streq("R"));
    udfs.register("udf_status_f", streq("F"));
    udfs.register("udf_size_15", |args: &[Value]| {
        Value::from(args[0].as_i64() == Some(15))
    });
    udfs.register("udf_type_brass", |args: &[Value]| {
        Value::from(args[0].as_str().is_some_and(|s| like_match("%BRASS", s)))
    });
    udfs.register("udf_type_econ_anod_steel", |args: &[Value]| {
        Value::from(args[0].as_str() == Some("ECONOMY ANODIZED STEEL"))
    });
    udfs.register("udf_name_green", |args: &[Value]| {
        Value::from(args[0].as_str().is_some_and(|s| like_match("%green%", s)))
    });
    udfs.register("udf_france_germany_pair", |args: &[Value]| {
        let a = args[0].as_str().unwrap_or("");
        let b = args[1].as_str().unwrap_or("");
        Value::from((a == "FRANCE" && b == "GERMANY") || (a == "GERMANY" && b == "FRANCE"))
    });
    let date_lt = |cut: i64| move |args: &[Value]| Value::from(args[0].as_i64().unwrap_or(0) < cut);
    let date_ge =
        |cut: i64| move |args: &[Value]| Value::from(args[0].as_i64().unwrap_or(0) >= cut);
    let date_between = |lo: i64, hi: i64| {
        move |args: &[Value]| {
            let d = args[0].as_i64().unwrap_or(0);
            Value::from(d >= lo && d <= hi)
        }
    };
    udfs.register("udf_date_lt_1995_03_15", date_lt(days(1995, 3, 15)));
    udfs.register("udf_shipdate_gt_1995_03_15", date_ge(days(1995, 3, 15) + 1));
    udfs.register(
        "udf_odate_1994",
        date_between(days(1994, 1, 1), days(1995, 1, 1) - 1),
    );
    udfs.register(
        "udf_ship_95_96",
        date_between(days(1995, 1, 1), days(1996, 12, 31)),
    );
    udfs.register(
        "udf_odate_95_96",
        date_between(days(1995, 1, 1), days(1996, 12, 31)),
    );
    udfs.register(
        "udf_odate_93q4",
        date_between(days(1993, 10, 1), days(1994, 1, 1) - 1),
    );
}

/// Predicate-text helpers: plain SQL or the UDF-wrapped equivalent.
fn p_eq_str(udf: bool, col: &str, lit: &str, tag: &str) -> String {
    if udf {
        format!("{tag}({col})")
    } else {
        format!("{col} = '{lit}'")
    }
}

fn queries(udf: bool) -> Vec<BenchQuery> {
    let mut v = Vec::new();

    // Q2 — minimum-cost supplier (correlated subquery → temp table).
    let size_pred = if udf {
        "udf_size_15(p.p_size)".to_string()
    } else {
        "p.p_size = 15".to_string()
    };
    let type_pred = if udf {
        "udf_type_brass(p.p_type)".to_string()
    } else {
        "p.p_type LIKE '%BRASS'".to_string()
    };
    let region_pred_r = p_eq_str(udf, "r.r_name", "EUROPE", "udf_region_europe");
    v.push(BenchQuery {
        name: "Q2".into(),
        num_tables: 6,
        script: format!(
            "CREATE TEMP TABLE q2_mincost AS \
             SELECT ps.ps_partkey pk, MIN(ps.ps_supplycost) mc \
             FROM partsupp ps, supplier s, nation n, region r \
             WHERE s.s_suppkey = ps.ps_suppkey AND s.s_nationkey = n.n_nationkey \
               AND n.n_regionkey = r.r_regionkey AND {region_pred_r} \
             GROUP BY ps.ps_partkey; \
             SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey \
             FROM part p, supplier s, partsupp ps, nation n, region r, q2_mincost m \
             WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey \
               AND {size_pred} AND {type_pred} \
               AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
               AND {region_pred_r} \
               AND p.p_partkey = m.pk AND ps.ps_supplycost = m.mc \
             ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey LIMIT 100; \
             DROP TABLE q2_mincost;"
        ),
    });

    // Q3 — shipping priority.
    let seg = p_eq_str(udf, "c.c_mktsegment", "BUILDING", "udf_segment_building");
    let (odate, sdate) = if udf {
        (
            "udf_date_lt_1995_03_15(o.o_orderdate)".to_string(),
            "udf_shipdate_gt_1995_03_15(l.l_shipdate)".to_string(),
        )
    } else {
        (
            format!("o.o_orderdate < {}", days(1995, 3, 15)),
            format!("l.l_shipdate > {}", days(1995, 3, 15)),
        )
    };
    v.push(BenchQuery {
        name: "Q3".into(),
        num_tables: 3,
        script: format!(
            "SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) revenue, \
                    o.o_orderdate \
             FROM customer c, orders o, lineitem l \
             WHERE {seg} AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
               AND {odate} AND {sdate} \
             GROUP BY l.l_orderkey, o.o_orderdate \
             ORDER BY revenue DESC, o.o_orderdate LIMIT 10;"
        ),
    });

    // Q5 — local supplier volume.
    let region_asia = p_eq_str(udf, "r.r_name", "ASIA", "udf_region_asia");
    let od94 = if udf {
        "udf_odate_1994(o.o_orderdate)".to_string()
    } else {
        format!(
            "o.o_orderdate >= {} AND o.o_orderdate < {}",
            days(1994, 1, 1),
            days(1995, 1, 1)
        )
    };
    v.push(BenchQuery {
        name: "Q5".into(),
        num_tables: 6,
        script: format!(
            "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) revenue \
             FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
               AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey \
               AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
               AND {region_asia} AND {od94} \
             GROUP BY n.n_name ORDER BY revenue DESC;"
        ),
    });

    // Q7 — volume shipping between FRANCE and GERMANY.
    let pair = if udf {
        "udf_france_germany_pair(n1.n_name, n2.n_name)".to_string()
    } else {
        "((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
          OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))"
            .to_string()
    };
    let ship9596 = if udf {
        "udf_ship_95_96(l.l_shipdate)".to_string()
    } else {
        format!(
            "l.l_shipdate BETWEEN {} AND {}",
            days(1995, 1, 1),
            days(1996, 12, 31)
        )
    };
    v.push(BenchQuery {
        name: "Q7".into(),
        num_tables: 6,
        script: format!(
            "SELECT n1.n_name supp_nation, n2.n_name cust_nation, \
                    l.l_shipdate / 372 + 1992 l_year, \
                    SUM(l.l_extendedprice * (1 - l.l_discount)) revenue \
             FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2 \
             WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey \
               AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey \
               AND c.c_nationkey = n2.n_nationkey AND {pair} AND {ship9596} \
             GROUP BY n1.n_name, n2.n_name, l.l_shipdate / 372 + 1992 \
             ORDER BY supp_nation, cust_nation, l_year;"
        ),
    });

    // Q8 — national market share (two aggregation passes + a ratio join).
    let region_am = p_eq_str(udf, "r.r_name", "AMERICA", "udf_region_america");
    let brazil = p_eq_str(udf, "n2.n_name", "BRAZIL", "udf_nation_brazil");
    let steel = if udf {
        "udf_type_econ_anod_steel(p.p_type)".to_string()
    } else {
        "p.p_type = 'ECONOMY ANODIZED STEEL'".to_string()
    };
    let od9596 = if udf {
        "udf_odate_95_96(o.o_orderdate)".to_string()
    } else {
        format!(
            "o.o_orderdate BETWEEN {} AND {}",
            days(1995, 1, 1),
            days(1996, 12, 31)
        )
    };
    v.push(BenchQuery {
        name: "Q8".into(),
        num_tables: 8,
        script: format!(
            "CREATE TEMP TABLE q8_all AS \
             SELECT o.o_orderdate / 372 + 1992 o_year, \
                    SUM(l.l_extendedprice * (1 - l.l_discount)) total \
             FROM part p, supplier s, lineitem l, orders o, customer c, \
                  nation n1, region r \
             WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey \
               AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey \
               AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey \
               AND {region_am} AND {steel} AND {od9596} \
             GROUP BY o.o_orderdate / 372 + 1992; \
             CREATE TEMP TABLE q8_brazil AS \
             SELECT o.o_orderdate / 372 + 1992 o_year, \
                    SUM(l.l_extendedprice * (1 - l.l_discount)) volume \
             FROM part p, supplier s, lineitem l, orders o, customer c, \
                  nation n1, nation n2, region r \
             WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey \
               AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey \
               AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey \
               AND s.s_nationkey = n2.n_nationkey \
               AND {region_am} AND {steel} AND {od9596} AND {brazil} \
             GROUP BY o.o_orderdate / 372 + 1992; \
             SELECT a.o_year, b.volume / a.total mkt_share \
             FROM q8_all a, q8_brazil b WHERE a.o_year = b.o_year \
             ORDER BY a.o_year; \
             DROP TABLE q8_all; DROP TABLE q8_brazil;"
        ),
    });

    // Q9 — product type profit.
    let green = if udf {
        "udf_name_green(p.p_name)".to_string()
    } else {
        "p.p_name LIKE '%green%'".to_string()
    };
    v.push(BenchQuery {
        name: "Q9".into(),
        num_tables: 6,
        script: format!(
            "SELECT n.n_name nation, o.o_orderdate / 372 + 1992 o_year, \
                    SUM(l.l_extendedprice * (1 - l.l_discount) - \
                        ps.ps_supplycost * l.l_quantity) sum_profit \
             FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n \
             WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey \
               AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey \
               AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey \
               AND {green} \
             GROUP BY n.n_name, o.o_orderdate / 372 + 1992 \
             ORDER BY nation, o_year DESC;"
        ),
    });

    // Q10 — returned item reporting.
    let flag_r = p_eq_str(udf, "l.l_returnflag", "R", "udf_flag_r");
    let od93q4 = if udf {
        "udf_odate_93q4(o.o_orderdate)".to_string()
    } else {
        format!(
            "o.o_orderdate >= {} AND o.o_orderdate < {}",
            days(1993, 10, 1),
            days(1994, 1, 1)
        )
    };
    v.push(BenchQuery {
        name: "Q10".into(),
        num_tables: 4,
        script: format!(
            "SELECT c.c_custkey, c.c_name, \
                    SUM(l.l_extendedprice * (1 - l.l_discount)) revenue, n.n_name \
             FROM customer c, orders o, lineitem l, nation n \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
               AND {od93q4} AND {flag_r} AND c.c_nationkey = n.n_nationkey \
             GROUP BY c.c_custkey, c.c_name, n.n_name \
             ORDER BY revenue DESC LIMIT 20;"
        ),
    });

    // Q11 — important stock identification (HAVING → threshold temp table).
    let germany = p_eq_str(udf, "n.n_name", "GERMANY", "udf_nation_germany");
    v.push(BenchQuery {
        name: "Q11".into(),
        num_tables: 3,
        script: format!(
            "CREATE TEMP TABLE q11_value AS \
             SELECT ps.ps_partkey pk, SUM(ps.ps_supplycost * ps.ps_availqty) val \
             FROM partsupp ps, supplier s, nation n \
             WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
               AND {germany} \
             GROUP BY ps.ps_partkey; \
             CREATE TEMP TABLE q11_total AS \
             SELECT SUM(v.val) total FROM q11_value v; \
             SELECT v.pk, v.val FROM q11_value v, q11_total t \
             WHERE v.val > t.total * 0.001 ORDER BY v.val DESC; \
             DROP TABLE q11_value; DROP TABLE q11_total;"
        ),
    });

    // Q18 — large volume customers (IN sub-select → quantity temp table).
    v.push(BenchQuery {
        name: "Q18".into(),
        num_tables: 4,
        script: "CREATE TEMP TABLE q18_qty AS \
                 SELECT l.l_orderkey ok, SUM(l.l_quantity) qty \
                 FROM lineitem l GROUP BY l.l_orderkey; \
                 SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, \
                        o.o_totalprice, SUM(l.l_quantity) total_qty \
                 FROM customer c, orders o, lineitem l, q18_qty b \
                 WHERE b.qty > 300 AND b.ok = o.o_orderkey \
                   AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
                 GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, \
                          o.o_totalprice \
                 ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100; \
                 DROP TABLE q18_qty;"
            .into(),
    });

    // Q21 — suppliers who kept orders waiting (EXISTS/NOT EXISTS → min/max
    // supplier temp tables; see module docs).
    let saudi = p_eq_str(udf, "n.n_name", "SAUDI ARABIA", "udf_nation_saudi");
    let status_f = p_eq_str(udf, "o.o_orderstatus", "F", "udf_status_f");
    v.push(BenchQuery {
        name: "Q21".into(),
        num_tables: 6,
        script: format!(
            "CREATE TEMP TABLE q21_all AS \
             SELECT l.l_orderkey ok, MIN(l.l_suppkey) mn, MAX(l.l_suppkey) mx \
             FROM lineitem l GROUP BY l.l_orderkey; \
             CREATE TEMP TABLE q21_late AS \
             SELECT l.l_orderkey ok, MIN(l.l_suppkey) lmn, MAX(l.l_suppkey) lmx \
             FROM lineitem l WHERE l.l_receiptdate > l.l_commitdate \
             GROUP BY l.l_orderkey; \
             SELECT s.s_name, COUNT(*) numwait \
             FROM supplier s, lineitem l, orders o, nation n, q21_all a, q21_late t \
             WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey \
               AND {status_f} AND l.l_receiptdate > l.l_commitdate \
               AND s.s_nationkey = n.n_nationkey AND {saudi} \
               AND a.ok = l.l_orderkey AND t.ok = l.l_orderkey \
               AND (a.mn < s.s_suppkey OR a.mx > s.s_suppkey) \
               AND t.lmn = s.s_suppkey AND t.lmx = s.s_suppkey \
             GROUP BY s.s_name ORDER BY numwait DESC, s.s_name LIMIT 100; \
             DROP TABLE q21_all; DROP TABLE q21_late;"
        ),
    });

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_numbers_are_monotone() {
        assert!(days(1992, 1, 1) == 0);
        assert!(days(1995, 3, 15) > days(1995, 3, 14));
        assert!(days(1995, 4, 1) > days(1995, 3, 31));
        assert!(days(1996, 1, 1) > days(1995, 12, 31));
    }

    #[test]
    fn generator_produces_all_tables_with_fk_integrity() {
        let w = generate(&TpchConfig {
            scale: 0.002,
            seed: 1,
        });
        for (name, _) in table_sizes(0.002) {
            assert!(w.catalog.get(name).is_some(), "missing {name}");
        }
        let lineitem = w.catalog.get("lineitem").unwrap();
        let orders = w.catalog.get("orders").unwrap();
        let n_orders = orders.num_rows() as i64;
        for row in 0..lineitem.cardinality().min(500) {
            let ok = lineitem.value(row, 0).as_i64().unwrap();
            assert!(ok < n_orders, "dangling l_orderkey {ok}");
        }
    }

    #[test]
    fn scale_changes_sizes() {
        let a = table_sizes(0.01);
        let b = table_sizes(0.1);
        assert!(b[7].1 > a[7].1);
        assert_eq!(a[0].1, 5);
        assert_eq!(b[1].1, 25);
    }

    #[test]
    fn ten_queries_in_both_variants() {
        let std = queries(false);
        let udf = queries(true);
        assert_eq!(std.len(), 10);
        assert_eq!(udf.len(), 10);
        let names: Vec<&str> = std.iter().map(|q| q.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Q2", "Q3", "Q5", "Q7", "Q8", "Q9", "Q10", "Q11", "Q18", "Q21"]
        );
        // UDF variant actually calls UDFs; standard does not.
        assert!(udf.iter().any(|q| q.script.contains("udf_")));
        assert!(!std.iter().any(|q| q.script.contains("udf_")));
    }

    #[test]
    fn scripts_parse() {
        for q in queries(false).iter().chain(queries(true).iter()) {
            let stmts = skinner_query::parse_statements(&q.script)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            assert!(!stmts.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TpchConfig {
            scale: 0.002,
            seed: 9,
        });
        let b = generate(&TpchConfig {
            scale: 0.002,
            seed: 9,
        });
        let ta = a.catalog.get("part").unwrap();
        let tb = b.catalog.get("part").unwrap();
        assert_eq!(ta.num_rows(), tb.num_rows());
        for row in 0..ta.cardinality().min(100) {
            assert_eq!(ta.row_values(row), tb.row_values(row));
        }
    }
}
