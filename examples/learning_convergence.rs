//! Watch Skinner-C learn: UCT-tree growth and join-order concentration on a
//! correlated multi-join query (the paper's Figure 7 instrumentation).
//!
//! ```sh
//! cargo run --release --example learning_convergence
//! ```

use skinnerdb::skinner_core::{run_skinner_c, SkinnerCConfig};
use skinnerdb::skinner_workloads::job_like::{generate, JobConfig};
use skinnerdb::Database;

fn main() {
    let w = generate(&JobConfig {
        scale: 0.3,
        seed: 7,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    // Query 9a: a 10-table join around the title hub.
    let q = w.queries.iter().find(|q| q.name == "9a").unwrap();
    println!(
        "Query {} joins {} tables:\n{}\n",
        q.name, q.num_tables, q.script
    );

    for slice_steps in [10, 500] {
        let bound = db.bind(&q.script).unwrap();
        let out = run_skinner_c(
            &bound,
            &db.exec_context(),
            &SkinnerCConfig {
                slice_steps,
                ..Default::default()
            },
        );
        println!("— slice budget b = {slice_steps} —");
        println!(
            "  {} slices, {} UCT nodes, {} progress-trie nodes, result rows: {}",
            out.metrics.slices,
            out.metrics.uct_nodes,
            out.metrics.tracker_nodes,
            out.result.num_rows()
        );
        println!("  tree growth (slice → nodes):");
        for (slice, nodes) in out
            .metrics
            .tree_growth
            .iter()
            .step_by((out.metrics.tree_growth.len() / 8).max(1))
        {
            println!("    {slice:>8} → {nodes}");
        }
        let total: u64 = out.metrics.order_slice_counts.iter().map(|(_, c)| c).sum();
        println!("  top join orders by share of time slices:");
        for (order, count) in out.metrics.order_slice_counts.iter().take(3) {
            println!(
                "    {:>5.1}%  {:?}",
                100.0 * *count as f64 / total.max(1) as f64,
                order
            );
        }
        println!(
            "  final (most-visited) join order: {:?}\n",
            out.metrics.order
        );
    }
    println!("With b = 500 fewer slices are needed and most time concentrates on");
    println!("one or two join orders — the convergence behaviour of Figure 7.");
}
