//! Quickstart: create tables, register a UDF, run queries, open sessions,
//! and reuse prepared statements.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use skinnerdb::{DataType, Database, Strategy, Value};

fn main() {
    let db = Database::new();

    // A small star schema: orders reference customers and products.
    db.create_table(
        "customers",
        &[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("country", DataType::Str),
        ],
        vec![
            vec![Value::Int(1), Value::from("ada"), Value::from("uk")],
            vec![Value::Int(2), Value::from("grace"), Value::from("us")],
            vec![Value::Int(3), Value::from("edsger"), Value::from("nl")],
        ],
    )
    .unwrap();
    db.create_table(
        "products",
        &[
            ("id", DataType::Int),
            ("label", DataType::Str),
            ("price", DataType::Float),
        ],
        vec![
            vec![Value::Int(10), Value::from("keyboard"), Value::Float(49.5)],
            vec![Value::Int(11), Value::from("monitor"), Value::Float(199.0)],
            vec![Value::Int(12), Value::from("mouse"), Value::Float(25.0)],
        ],
    )
    .unwrap();
    let orders: Vec<Vec<Value>> = (0..40)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(1 + i % 3),
                Value::Int(10 + i % 3),
                Value::Int(1 + (i * 7) % 5),
            ]
        })
        .collect();
    db.create_table(
        "orders",
        &[
            ("id", DataType::Int),
            ("customer_id", DataType::Int),
            ("product_id", DataType::Int),
            ("quantity", DataType::Int),
        ],
        orders,
    )
    .unwrap();

    // Plain SQL — executed by Skinner-C: no statistics, no cost model; the
    // join order is learned during this very execution.
    let result = db
        .query(
            "SELECT c.name, SUM(p.price * o.quantity) spent \
             FROM customers c, orders o, products p \
             WHERE c.id = o.customer_id AND p.id = o.product_id \
             GROUP BY c.name ORDER BY spent DESC",
        )
        .unwrap();
    println!(
        "Spend per customer (via Skinner-C):\n{}",
        skinnerdb::render_table(&result, 10)
    );

    // UDFs are black boxes for a traditional optimizer; SkinnerDB does not
    // care — predicates are just predicates.
    db.register_udf("premium", |args| {
        Value::from(args[0].as_f64().unwrap_or(0.0) > 100.0)
    });
    let premium = db
        .query(
            "SELECT c.country, COUNT(*) n \
             FROM customers c, orders o, products p \
             WHERE c.id = o.customer_id AND p.id = o.product_id AND premium(p.price) \
             GROUP BY c.country ORDER BY n DESC",
        )
        .unwrap();
    println!(
        "Premium orders per country:\n{}",
        skinnerdb::render_table(&premium, 10)
    );

    // The same query under different evaluation strategies — identical
    // results, different execution models.
    let sql = "SELECT c.name FROM customers c, orders o \
               WHERE c.id = o.customer_id AND o.quantity > 3";
    for strategy in [
        Strategy::default(),
        Strategy::SkinnerG(Default::default()),
        Strategy::SkinnerH(Default::default()),
        Strategy::Traditional(Default::default()),
        Strategy::Eddy(Default::default()),
    ] {
        let out = db.run_script(sql, &strategy).unwrap();
        println!(
            "{:<12} → {:>3} rows, {:>6} work units, {:?}",
            strategy.name(),
            out.result.num_rows(),
            out.work_units,
            out.wall
        );
    }

    // Sessions: per-client strategy and limits over the shared database,
    // and prepared statements — parse + bind once, execute many times.
    let session = db.session();
    session.use_strategy("traditional").unwrap();
    session.set_work_limit(10_000_000);
    let hot = session
        .prepare(
            "SELECT p.label, SUM(o.quantity) q FROM orders o, products p              WHERE p.id = o.product_id GROUP BY p.label ORDER BY q DESC",
        )
        .unwrap();
    for round in 1..=2 {
        let rows = hot.execute().unwrap();
        println!(
            "prepared execution #{round} ({}):
{}",
            hot.strategy().name(),
            skinnerdb::render_table(&rows, 5)
        );
    }
}
