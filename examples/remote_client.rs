//! Drive a SkinnerDB server over the wire: connect, SET a strategy, run
//! queries, cancel a torture query mid-run, read the server stats.
//!
//! ```sh
//! # Self-contained (starts an in-process server on a loopback port):
//! cargo run --release --example remote_client
//!
//! # Or against a separately started binary:
//! cargo run --release -p skinner_server --bin skinner-server -- --demo &
//! SKINNER_ADDR=127.0.0.1:7878 cargo run --release --example remote_client
//! ```

use std::time::{Duration, Instant};

use skinner_client::Client;
use skinner_server::{Server, ServerConfig};
use skinnerdb::{DataType, Database, Value};

fn demo_db() -> Database {
    let db = Database::new();
    db.create_table(
        "nums",
        &[("x", DataType::Int)],
        (0..2000).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "customers",
        &[("id", DataType::Int), ("name", DataType::Str)],
        vec![
            vec![Value::Int(1), Value::from("ada")],
            vec![Value::Int(2), Value::from("grace")],
            vec![Value::Int(3), Value::from("edsger")],
        ],
    )
    .unwrap();
    db.create_table(
        "orders",
        &[("customer_id", DataType::Int), ("quantity", DataType::Int)],
        (0..200)
            .map(|i| vec![Value::Int(1 + i % 3), Value::Int(1 + (i * 7) % 5)])
            .collect(),
    )
    .unwrap();
    db
}

fn main() {
    // Use an external server when pointed at one, else start our own.
    let (server, addr) = match std::env::var("SKINNER_ADDR") {
        Ok(addr) => (None, addr),
        Err(_) => {
            let server = Server::bind(demo_db(), "127.0.0.1:0", ServerConfig::default())
                .expect("bind loopback server");
            let addr = server.local_addr().to_string();
            println!("started in-process server on {addr}");
            (Some(server), addr)
        }
    };

    let mut client = Client::connect_with_retry(addr.as_str(), Duration::from_secs(10))
        .expect("connect to server");
    println!("connected, connection id {}", client.conn_id());

    // Text mode: the server renders tables with the shared renderer.
    client.set("output", "text").unwrap();
    client.set("strategy", "skinner-c").unwrap();
    let r = client
        .query(
            "SELECT c.name, SUM(o.quantity) total FROM customers c, orders o \
             WHERE c.id = o.customer_id GROUP BY c.name ORDER BY total DESC",
        )
        .unwrap();
    println!("\nOrder volume per customer (learned execution, over the wire):");
    print!("{}", r.text.as_deref().unwrap_or(""));
    println!(
        "  [{} work units, {} µs, {} statement(s)]",
        r.summary.work_units,
        r.summary.wall_micros,
        r.summary.statements.len()
    );

    // Out-of-band cancel: a torture query aborted from a second connection.
    let handle = client.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        handle.cancel().expect("cancel acknowledged");
    });
    let t0 = Instant::now();
    let err = client
        .query(
            "SELECT COUNT(*) c FROM nums a, nums b, nums c \
             WHERE a.x <= b.x AND b.x <= c.x",
        )
        .expect_err("the torture query must be cancelled");
    canceller.join().unwrap();
    println!("\ntorture query cancelled after {:?}: {err}", t0.elapsed());

    // The connection survives; inspect the server.
    let stats = client.query("SHOW SERVER STATS").unwrap();
    println!("\nSHOW SERVER STATS:");
    print!("{}", stats.text.as_deref().unwrap_or(""));

    if server.is_some() {
        client.shutdown_server().expect("graceful shutdown");
        println!("\nserver drained and joined all threads");
    }
}
