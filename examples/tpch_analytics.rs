//! Analytical workload: the ten TPC-H queries the paper evaluates, run on
//! generated data with Skinner-C and the traditional baseline side by side.
//!
//! ```sh
//! cargo run --release --example tpch_analytics
//! ```

use skinnerdb::skinner_workloads::tpch::{generate, TpchConfig};
use skinnerdb::{Database, Strategy};

fn main() {
    let cfg = TpchConfig {
        scale: 0.005,
        seed: 42,
    };
    println!("Generating TPC-H data at scale factor {} …", cfg.scale);
    let workload = generate(&cfg);
    for name in workload.catalog.table_names() {
        let t = workload.catalog.get(&name).unwrap();
        println!("  {name:<10} {:>8} rows", t.num_rows());
    }
    let db = Database::from_parts(workload.catalog.clone(), workload.udfs);

    println!(
        "\n{:<5} {:>8} | {:>12} {:>9} | {:>12} {:>9}",
        "query", "rows", "skinner(wu)", "time", "trad(wu)", "time"
    );
    for q in &workload.queries {
        let skinner = db
            .run_script(&q.script, &Strategy::default())
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let trad = db
            .run_script(&q.script, &Strategy::Traditional(Default::default()))
            .unwrap();
        assert_eq!(
            skinner.result.canonical_rows(),
            trad.result.canonical_rows(),
            "strategies disagree on {}",
            q.name
        );
        println!(
            "{:<5} {:>8} | {:>12} {:>8.1?} | {:>12} {:>8.1?}",
            q.name,
            skinner.result.num_rows(),
            skinner.work_units,
            skinner.wall,
            trad.work_units,
            trad.wall
        );
    }
    println!("\nBoth strategies returned identical results for all queries.");
    println!("Sample output of Q5:");
    let q5 = &workload.queries.iter().find(|q| q.name == "Q5").unwrap();
    let r = db.query(&q5.script).unwrap();
    println!("{}", skinnerdb::render_table(&r, 10));
}
