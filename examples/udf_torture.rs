//! Robust evaluation under opaque predicates: the paper's UDF Torture
//! scenario (appendix, Figure 9), where every join predicate is a black-box
//! UDF and exactly one of them — unknown to everyone — empties the result.
//!
//! A traditional optimizer guesses (all UDFs look alike: default
//! selectivity) and can guess catastrophically wrong; Skinner-C discovers
//! the selective predicate *during* execution and converges to a join order
//! that applies it first.
//!
//! ```sh
//! cargo run --release --example udf_torture
//! ```

use skinnerdb::skinner_adaptive::EddyConfig;
use skinnerdb::skinner_core::SkinnerCConfig;
use skinnerdb::skinner_exec::TraditionalConfig;
use skinnerdb::skinner_workloads::torture::{udf_torture, Shape};
use skinnerdb::{Database, Strategy};

fn main() {
    const WORK_LIMIT: u64 = 30_000_000;
    println!("UDF torture: chain queries, 100 tuples/table, good predicate in the middle\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "#tables", "Skinner-C", "Traditional", "Eddy"
    );
    for k in [4, 5, 6, 7, 8] {
        let w = udf_torture(Shape::Chain, k, 100, k / 2);
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let script = &w.queries[0].script;

        let skinner = db
            .run_script(
                script,
                &Strategy::SkinnerC(SkinnerCConfig {
                    work_limit: WORK_LIMIT,
                    ..Default::default()
                }),
            )
            .unwrap();
        let trad = db
            .run_script(
                script,
                &Strategy::Traditional(TraditionalConfig {
                    work_limit: WORK_LIMIT,
                    ..Default::default()
                }),
            )
            .unwrap();
        let eddy = db
            .run_script(
                script,
                &Strategy::Eddy(EddyConfig {
                    work_limit: WORK_LIMIT,
                    ..Default::default()
                }),
            )
            .unwrap();

        let fmt = |out: &skinnerdb::ExecOutcome| {
            if out.timed_out {
                format!(">{WORK_LIMIT}")
            } else {
                format!("{}", out.work_units)
            }
        };
        println!(
            "{:<8} {:>14} {:>14} {:>14}",
            k,
            fmt(&skinner),
            fmt(&trad),
            fmt(&eddy)
        );
        // The result is empty by construction (the good predicate is false).
        assert_eq!(
            skinner.result.rows[0][0],
            skinnerdb::Value::Int(0),
            "count must be zero"
        );
    }
    println!("\n(work units; lower is better — '>' marks a budget timeout)");
    println!("Skinner-C's regret bound keeps it near the optimum regardless of");
    println!("where the selective predicate hides; guess-based baselines explode.");
}
