//! The `Database` facade: tables, UDFs, SQL scripts, strategies, sessions.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use skinner_core::{TreeCache, TreeCacheConfig, TreeCacheStats};
use skinner_exec::{
    ExecContext, ExecMetrics, ExecOutcome, ExecutionStrategy, SpanTimer, StrategyRegistry,
};
use skinner_query::ast::Statement;
use skinner_query::{bind_select, parse_statements, BindError, JoinQuery, ParseError, UdfRegistry};
use skinner_stats::StatsCache;
use skinner_storage::{Catalog, DataType, DiskError, Field, Schema, Value};

use crate::session::{Prepared, Session};
use crate::strategy::{builtin_registry, Strategy};
use crate::QueryResult;

/// Top-level error type.
#[derive(Debug)]
pub enum DbError {
    Parse(ParseError),
    Bind(BindError),
    /// A statement exceeded its work limit, deadline, or was cancelled.
    Timeout,
    /// Schema/constraint violations when creating tables.
    Schema(String),
    /// Persistent-storage failures: I/O, corrupt segments, invalid table
    /// names, or persistence requested without a data directory attached.
    Storage(DiskError),
    /// A strategy name not present in the registry.
    UnknownStrategy(String),
    /// An unknown session option, or a value that does not parse
    /// (see [`crate::Session::set_option`]).
    BadOption(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Bind(e) => write!(f, "{e}"),
            DbError::Timeout => write!(f, "query exceeded its work limit or deadline"),
            DbError::Schema(s) => write!(f, "schema error: {s}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::UnknownStrategy(name) => write!(f, "unknown strategy: {name}"),
            DbError::BadOption(msg) => write!(f, "bad option: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<BindError> for DbError {
    fn from(e: BindError) -> Self {
        DbError::Bind(e)
    }
}

impl From<DiskError> for DbError {
    fn from(e: DiskError) -> Self {
        DbError::Storage(e)
    }
}

/// What one script statement was, for per-statement reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatementKind {
    Select,
    CreateTempTable(String),
    DropTable(String),
}

impl fmt::Display for StatementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementKind::Select => write!(f, "SELECT"),
            StatementKind::CreateTempTable(name) => write!(f, "CREATE TEMP TABLE {name}"),
            StatementKind::DropTable(name) => write!(f, "DROP TABLE {name}"),
        }
    }
}

/// Execution record of a single statement inside a script: its own timing,
/// work units and [`ExecMetrics`] — not just the script totals.
#[derive(Debug)]
pub struct StatementOutcome {
    pub kind: StatementKind,
    /// Rows the statement produced (result rows for the final SELECT, rows
    /// materialized for a temp table, 0 for DROP).
    pub rows: usize,
    pub work_units: u64,
    pub wall: std::time::Duration,
    pub timed_out: bool,
    pub metrics: ExecMetrics,
}

/// Outcome of a whole script with per-statement detail.
///
/// [`Database::run_script_with`] folds this into a single [`ExecOutcome`]
/// (last SELECT's result and metrics, script-wide work/wall); callers that
/// need per-statement timings and metrics — the server reports them per
/// query — use [`Database::run_script_detailed`] /
/// [`crate::Session::run_script_detailed`] instead.
#[derive(Debug)]
pub struct ScriptOutcome {
    /// The last SELECT's result.
    pub result: QueryResult,
    /// Work units accumulated across every statement.
    pub work_units: u64,
    /// Wall time of the whole script.
    pub wall: std::time::Duration,
    /// True if any statement hit its work limit, deadline or cancellation
    /// (the script stops at that statement).
    pub timed_out: bool,
    /// One record per executed statement, in script order.
    pub statements: Vec<StatementOutcome>,
}

impl ScriptOutcome {
    /// Collapse into the classic single-block [`ExecOutcome`]: the final
    /// result plus the metrics of the statement that produced it (or of the
    /// statement that timed out).
    pub fn into_outcome(mut self) -> ExecOutcome {
        // The single-block metrics are the ones belonging to the statement
        // that produced `result`: the timed-out statement if any, else the
        // last SELECT.
        let idx = self
            .statements
            .iter()
            .rposition(|s| s.timed_out)
            .or_else(|| {
                self.statements
                    .iter()
                    .rposition(|s| matches!(s.kind, StatementKind::Select))
            });
        let metrics = idx
            .map(|i| std::mem::take(&mut self.statements[i].metrics))
            .unwrap_or_default();
        ExecOutcome {
            result: self.result,
            work_units: self.work_units,
            wall: self.wall,
            timed_out: self.timed_out,
            metrics,
        }
    }
}

/// An embedded SkinnerDB instance: a catalog of in-memory tables, a UDF
/// registry, cached statistics (for the *baseline* strategies only —
/// SkinnerDB itself never reads them), a strategy registry, and a default
/// evaluation strategy.
///
/// `Database` is `Send + Sync` and every mutator takes `&self`, so one
/// instance can serve many threads; `Clone` produces another handle to the
/// same underlying database (all state is shared). Per-client defaults
/// (strategy, work limits, deadlines) live on [`Session`]s.
#[derive(Clone)]
pub struct Database {
    catalog: Arc<Catalog>,
    udfs: Arc<UdfRegistry>,
    stats: Arc<StatsCache>,
    strategies: Arc<StrategyRegistry>,
    default_strategy: Arc<RwLock<Arc<dyn ExecutionStrategy>>>,
    /// Worker threads parallel strategies use by default (sessions may
    /// override per client). Defaults to the machine's available
    /// parallelism.
    default_threads: Arc<RwLock<usize>>,
    /// Cross-query learning state: one [`TreeCache`] shared by every
    /// session (that is the point — templates learned by one client warm
    /// every other client), plus the instance-default on/off knob.
    learning: Arc<LearningState>,
}

/// Shared cross-query learning state of a database instance.
struct LearningState {
    /// Instance default for the `learning_cache` knob; sessions may
    /// override per client. Off by default: cross-query state is opt-in,
    /// the paper's per-query discipline is the baseline.
    enabled: std::sync::atomic::AtomicBool,
    cache: RwLock<Arc<TreeCache>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Empty database with the built-in strategies registered and
    /// Skinner-C as the default.
    pub fn new() -> Self {
        Self::from_parts(Arc::new(Catalog::new()), UdfRegistry::new())
    }

    /// Open (or create) a database backed by a persistent data directory:
    /// every table committed to `dir` by a previous process is loaded into
    /// the catalog, and tables persisted later are written there crash-safely.
    ///
    /// ```no_run
    /// use skinnerdb::Database;
    ///
    /// let db = Database::open("/var/lib/skinnerdb").unwrap();
    /// ```
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self, DbError> {
        let db = Self::new();
        db.attach_data_dir(dir)?;
        Ok(db)
    }

    /// Wrap an existing catalog + UDFs (workload generators produce these).
    pub fn from_parts(catalog: Arc<Catalog>, udfs: UdfRegistry) -> Self {
        let learning = Arc::new(LearningState {
            enabled: std::sync::atomic::AtomicBool::new(false),
            cache: RwLock::new(Arc::new(TreeCache::default())),
        });
        // Eagerly purge cross-query priors whenever a table leaves the
        // catalog (DROP TABLE, temp-table cleanup, or replacement under
        // the same name) — through the catalog's own choke point, so
        // every drop path triggers it. The purge matches by uid *and* by
        // table name: restart-loaded entries predate this process's uids
        // and are only reachable by name, and the name purge is also what
        // tombstones the on-disk prior (the cache flushes after a removing
        // purge) so a recreate-with-the-same-name can never warm-start
        // from the dropped table's data. This is eager hygiene layered
        // under the correctness mechanism: a query already in flight when
        // the drop fires may still publish its dead entry afterwards, and
        // the content-fingerprint validation at lookup is what guarantees
        // such an entry can never be served against different data (it
        // just waits for LRU eviction or the next probe to reap it). The
        // observer holds only a `Weak`: once every handle to this Database
        // is gone it deregisters itself, so constructing many Databases
        // over one shared catalog (the bench harness does) cannot pin dead
        // caches or accumulate callbacks.
        {
            let learning = Arc::downgrade(&learning);
            catalog.on_table_drop(move |uid, name| match learning.upgrade() {
                Some(l) => {
                    l.cache.read().invalidate_table(uid, name);
                    true
                }
                None => false,
            });
        }
        Database {
            catalog,
            udfs: Arc::new(udfs),
            stats: Arc::new(StatsCache::new()),
            strategies: Arc::new(builtin_registry()),
            default_strategy: Arc::new(RwLock::new(Strategy::default().build())),
            default_threads: Arc::new(RwLock::new(skinner_exec::default_threads())),
            learning,
        }
    }

    /// Turn cross-query learning on or off for the whole instance: learned
    /// strategies (`Skinner-C`, `parallel_skinner`) warm-start their UCT
    /// trees from previous executions of the same query template and
    /// publish updated statistics at query end. Results are bit-identical
    /// either way — the cache only accelerates join-order convergence.
    /// Sessions may override per client ([`Session::set_learning_cache`]).
    pub fn set_learning_cache(&self, enabled: bool) {
        self.learning
            .enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Instance default of the cross-query learning knob.
    pub fn learning_cache_enabled(&self) -> bool {
        self.learning
            .enabled
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shared tree cache itself (present even while disabled, so
    /// flipping the knob never loses learned templates).
    pub fn learning_cache(&self) -> Arc<TreeCache> {
        self.learning.cache.read().clone()
    }

    /// Replace the tree cache with a freshly configured one (capacity,
    /// decay, export size). Drops everything learned in memory — but when
    /// a data directory is attached the new cache re-attaches to it and
    /// reloads the persisted priors, so durable knowledge survives
    /// reconfiguration the same way it survives a restart.
    pub fn set_learning_cache_config(&self, cfg: TreeCacheConfig) {
        let cache = Arc::new(TreeCache::new(cfg));
        if let Some(store) = self.catalog.disk_store() {
            cache.attach_store(store);
        }
        *self.learning.cache.write() = cache;
    }

    /// Flush the learning cache's priors to the attached data directory
    /// (no-op without one). Servers call this on graceful shutdown so the
    /// final partial batch of publications is not lost; returns whether a
    /// write happened.
    pub fn flush_learning_cache(&self) -> bool {
        self.learning_cache().flush()
    }

    /// Counter snapshot of the cross-query tree cache (what
    /// `SHOW SERVER STATS` reports as `learning_cache.*`).
    pub fn learning_cache_stats(&self) -> TreeCacheStats {
        self.learning_cache().stats()
    }

    /// Set the default worker-thread count parallel strategies use
    /// (clamped to at least 1). New and existing sessions without their own
    /// `threads` setting pick this up on their next statement.
    pub fn set_default_threads(&self, threads: usize) {
        *self.default_threads.write() = threads.max(1);
    }

    /// The default worker-thread count for parallel strategies.
    pub fn default_threads(&self) -> usize {
        *self.default_threads.read()
    }

    /// Replace the default strategy used by [`Database::query`].
    pub fn set_default_strategy(&self, strategy: Strategy) {
        *self.default_strategy.write() = strategy.build();
    }

    /// Select the default strategy by registry name (case-insensitive).
    pub fn set_default_strategy_named(&self, name: &str) -> Result<(), DbError> {
        let strategy = self
            .strategies
            .get(name)
            .ok_or_else(|| DbError::UnknownStrategy(name.to_string()))?;
        *self.default_strategy.write() = strategy;
        Ok(())
    }

    /// The current default strategy.
    pub fn default_strategy(&self) -> Arc<dyn ExecutionStrategy> {
        self.default_strategy.read().clone()
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    pub fn stats(&self) -> &StatsCache {
        &self.stats
    }

    /// The strategy registry: look up, enumerate, or extend the engines
    /// this database can run.
    pub fn strategies(&self) -> &StrategyRegistry {
        &self.strategies
    }

    /// Register an external [`ExecutionStrategy`] under its own name; it
    /// becomes addressable from [`Database::query_with`],
    /// [`Database::set_default_strategy_named`] and sessions.
    pub fn register_strategy(&self, strategy: Arc<dyn ExecutionStrategy>) {
        self.strategies.register(strategy);
    }

    /// Open a session: per-client default strategy and settings over this
    /// shared database.
    pub fn session(&self) -> Session {
        Session::new(self.clone())
    }

    /// Create and register a table from rows.
    pub fn create_table(
        &self,
        name: &str,
        columns: &[(&str, DataType)],
        rows: Vec<Vec<Value>>,
    ) -> Result<(), DbError> {
        let schema = Schema::new(columns.iter().map(|(n, dt)| Field::new(*n, *dt)).collect());
        let mut b = self.catalog.builder(name, schema);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != columns.len() {
                return Err(DbError::Schema(format!(
                    "row {i} has {} values, expected {}",
                    row.len(),
                    columns.len()
                )));
            }
            b.push_row(row);
        }
        self.catalog.register(b.finish());
        Ok(())
    }

    /// Register a UDF callable from SQL.
    pub fn register_udf(&self, name: &str, f: impl Fn(&[Value]) -> Value + Send + Sync + 'static) {
        self.udfs.register(name, f);
    }

    /// Attach a persistent data directory to an already-running database:
    /// loads every committed table from `dir` (returning their names) and
    /// makes [`Database::persist_table`] / [`Database::bulk_load_csv`]
    /// available. Fails with [`DbError::Storage`] if a data directory is
    /// already attached or the manifest is corrupt.
    pub fn attach_data_dir(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Vec<String>, DbError> {
        let names = self.catalog.attach_disk(dir)?;
        // The data directory also carries learned priors: attach the
        // learning cache to the store so persisted templates warm-start
        // queries in this process and future publications flush back. A
        // corrupt priors sidecar is refused inside `attach_store` (counted
        // in `load_rejected`), never an open failure.
        if let Some(store) = self.catalog.disk_store() {
            self.learning.cache.read().attach_store(store);
        }
        Ok(names)
    }

    /// Whether a persistent data directory is attached.
    pub fn has_data_dir(&self) -> bool {
        self.catalog.disk_store().is_some()
    }

    /// Write registered table `name` to the attached data directory as a
    /// paged columnar segment (temp file → fsync → atomic rename + manifest
    /// commit) and swap the registered table for the disk-backed copy, which
    /// carries per-page zone maps. Subsequent `DROP TABLE name` also removes
    /// the segment file.
    pub fn persist_table(&self, name: &str) -> Result<(), DbError> {
        self.catalog.persist_table(name)?;
        Ok(())
    }

    /// Stream a CSV file straight into a persistent segment (header
    /// required, types inferred) and register the zone-mapped table as
    /// `name` — the bulk-ingest path: rows go to disk page by page instead
    /// of materializing an intermediate in-memory table first. Requires an
    /// attached data directory.
    pub fn bulk_load_csv(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), DbError> {
        let file = std::fs::File::open(path)
            .map_err(|e| DbError::Schema(format!("cannot open csv: {e}")))?;
        self.catalog
            .bulk_load_csv(name, std::io::BufReader::new(file), None)?;
        Ok(())
    }

    /// Load a CSV file (header required, types inferred) as table `name`.
    pub fn load_csv(&self, name: &str, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let file = std::fs::File::open(path)
            .map_err(|e| DbError::Schema(format!("cannot open csv: {e}")))?;
        let table = skinner_storage::read_csv(
            name,
            std::io::BufReader::new(file),
            None,
            self.catalog.interner().clone(),
        )
        .map_err(|e| DbError::Schema(e.to_string()))?;
        self.catalog.register(table);
        Ok(())
    }

    /// Bind a single SELECT statement (no execution).
    pub fn bind(&self, sql: &str) -> Result<JoinQuery, DbError> {
        let stmts = parse_statements(sql)?;
        match stmts.as_slice() {
            [Statement::Select(s)] => Ok(bind_select(s, &self.catalog, &self.udfs)?),
            _ => Err(DbError::Schema(
                "bind expects exactly one SELECT statement".into(),
            )),
        }
    }

    /// Parse and bind a single SELECT once, for repeated execution — the
    /// natural unit for SkinnerDB's per-query learning. The prepared
    /// statement snapshots the current default strategy; use
    /// [`Session::prepare`] for per-session strategy and settings.
    ///
    /// ```
    /// use skinnerdb::{Database, DataType, Value};
    ///
    /// let db = Database::new();
    /// db.create_table(
    ///     "t",
    ///     &[("x", DataType::Int)],
    ///     (0..10).map(|i| vec![Value::Int(i)]).collect(),
    /// )
    /// .unwrap();
    ///
    /// // Parse + bind once; execute many times with the frontend amortized.
    /// let hot = db.prepare("SELECT t.x FROM t WHERE t.x > 6").unwrap();
    /// let first = hot.execute().unwrap();
    /// let again = hot.execute().unwrap();
    /// assert_eq!(first.num_rows(), 3);
    /// assert_eq!(first.canonical_rows(), again.canonical_rows());
    /// ```
    pub fn prepare(&self, sql: &str) -> Result<Prepared, DbError> {
        self.session().prepare(sql)
    }

    /// A fresh execution context carrying this database's stats, UDFs,
    /// thread default and (when enabled) the cross-query learning cache
    /// (unlimited budget, no deadline).
    pub fn exec_context(&self) -> ExecContext {
        self.exec_context_with_learning(self.learning_cache_enabled())
    }

    /// Like [`Database::exec_context`], but with the cross-query learning
    /// knob resolved explicitly — sessions pass their per-client override.
    pub(crate) fn exec_context_with_learning(&self, learning_cache: bool) -> ExecContext {
        let mut ctx = ExecContext::new()
            .with_stats(self.stats.clone())
            .with_udfs(self.udfs.clone())
            .with_threads(self.default_threads());
        if learning_cache {
            ctx = ctx.with_learning_cache(self.learning_cache());
        }
        ctx
    }

    /// Run a SQL script with the default strategy and return the last
    /// SELECT's result. A timeout surfaces as [`DbError::Timeout`].
    pub fn query(&self, sql: &str) -> Result<QueryResult, DbError> {
        let strategy = self.default_strategy();
        let out = self.run_script_with(sql, strategy.as_ref(), &self.exec_context())?;
        if out.timed_out {
            return Err(DbError::Timeout);
        }
        Ok(out.result)
    }

    /// Like [`Database::query`], but under a named registered strategy.
    pub fn query_with(&self, sql: &str, strategy: &str) -> Result<QueryResult, DbError> {
        let strategy = self
            .strategies
            .get(strategy)
            .ok_or_else(|| DbError::UnknownStrategy(strategy.to_string()))?;
        let out = self.run_script_with(sql, strategy.as_ref(), &self.exec_context())?;
        if out.timed_out {
            return Err(DbError::Timeout);
        }
        Ok(out.result)
    }

    /// Run a SQL script with an explicit built-in strategy (convenience
    /// wrapper over [`Database::run_script_with`]).
    pub fn run_script(&self, sql: &str, strategy: &Strategy) -> Result<ExecOutcome, DbError> {
        self.run_script_with(sql, strategy.build().as_ref(), &self.exec_context())
    }

    /// Run a SQL script under any [`ExecutionStrategy`], returning the
    /// normalized outcome of the whole script (work units accumulate across
    /// statements; the result is the last SELECT's). Timeouts are reported
    /// in the outcome, not as an error.
    ///
    /// Temp tables are registered in the shared catalog under the names the
    /// script chooses and dropped on abnormal exit (timeout or bind error).
    /// Concurrent scripts must therefore use distinct temp-table names —
    /// same-named temp tables in simultaneous scripts clobber each other.
    pub fn run_script_with(
        &self,
        sql: &str,
        strategy: &dyn ExecutionStrategy,
        ctx: &ExecContext,
    ) -> Result<ExecOutcome, DbError> {
        self.run_script_detailed(sql, strategy, ctx)
            .map(ScriptOutcome::into_outcome)
    }

    /// Like [`Database::run_script_with`], but reporting every statement's
    /// own timing, work units and [`ExecMetrics`] alongside the script
    /// totals — previously only the final statement's metrics and the
    /// script-wide wall clock survived, so a multi-statement script could
    /// not be attributed per statement.
    pub fn run_script_detailed(
        &self,
        sql: &str,
        strategy: &dyn ExecutionStrategy,
        ctx: &ExecContext,
    ) -> Result<ScriptOutcome, DbError> {
        let parse_timer = SpanTimer::start(ctx.trace(), "parse_bind");
        let stmts = parse_statements(sql)?;
        parse_timer.finish(stmts.len() as u64);
        if stmts.is_empty() {
            return Err(DbError::Schema("empty script".into()));
        }
        let mut temp_tables: Vec<String> = Vec::new();
        let outcome = self.run_statements(&stmts, strategy, ctx, &mut temp_tables);
        // Any abnormal exit — a statement timing out, or a later statement
        // failing to bind — drops the script's temp tables so they cannot
        // leak into the shared catalog.
        match &outcome {
            Ok(out) if out.timed_out => self.cleanup(&temp_tables),
            Err(_) => self.cleanup(&temp_tables),
            Ok(_) => {}
        }
        outcome
    }

    fn run_statements(
        &self,
        stmts: &[Statement],
        strategy: &dyn ExecutionStrategy,
        ctx: &ExecContext,
        temp_tables: &mut Vec<String>,
    ) -> Result<ScriptOutcome, DbError> {
        let started = std::time::Instant::now();
        let mut total_work = 0u64;
        let mut records: Vec<StatementOutcome> = Vec::with_capacity(stmts.len());
        let mut last: Option<QueryResult> = None;
        let record =
            |records: &mut Vec<StatementOutcome>, kind: StatementKind, out: &ExecOutcome, rows| {
                records.push(StatementOutcome {
                    kind,
                    rows,
                    work_units: out.work_units,
                    wall: out.wall,
                    timed_out: out.timed_out,
                    metrics: out.metrics.clone(),
                });
            };
        for stmt in stmts {
            match stmt {
                Statement::Select(s) => {
                    let bind_timer = SpanTimer::start(ctx.trace(), "parse_bind");
                    let q = bind_select(s, &self.catalog, &self.udfs)?;
                    bind_timer.finish(q.num_tables() as u64);
                    let out = strategy.execute(&q, ctx);
                    total_work += out.work_units;
                    record(
                        &mut records,
                        StatementKind::Select,
                        &out,
                        out.result.num_rows(),
                    );
                    if out.timed_out {
                        return Ok(ScriptOutcome {
                            result: out.result,
                            work_units: total_work,
                            wall: started.elapsed(),
                            timed_out: true,
                            statements: records,
                        });
                    }
                    last = Some(out.result);
                }
                Statement::CreateTempTable { name, query } => {
                    let q = bind_select(query, &self.catalog, &self.udfs)?;
                    let out = strategy.execute(&q, ctx);
                    total_work += out.work_units;
                    record(
                        &mut records,
                        StatementKind::CreateTempTable(name.clone()),
                        &out,
                        out.result.num_rows(),
                    );
                    if out.timed_out {
                        return Ok(ScriptOutcome {
                            result: out.result,
                            work_units: total_work,
                            wall: started.elapsed(),
                            timed_out: true,
                            statements: records,
                        });
                    }
                    self.materialize(name, &q, &out.result)?;
                    temp_tables.push(name.clone());
                }
                Statement::DropTable { name } => {
                    self.catalog.drop_table(name);
                    temp_tables.retain(|t| !t.eq_ignore_ascii_case(name));
                    records.push(StatementOutcome {
                        kind: StatementKind::DropTable(name.clone()),
                        rows: 0,
                        work_units: 0,
                        wall: std::time::Duration::ZERO,
                        timed_out: false,
                        metrics: ExecMetrics::default(),
                    });
                }
            }
        }
        let result = last.ok_or_else(|| {
            DbError::Schema("script contains no SELECT returning a result".into())
        })?;
        Ok(ScriptOutcome {
            result,
            work_units: total_work,
            wall: started.elapsed(),
            timed_out: false,
            statements: records,
        })
    }

    fn cleanup(&self, temp_tables: &[String]) {
        for t in temp_tables {
            self.catalog.drop_table(t);
        }
    }

    /// Materialize a query result as a new table (decomposed-query support).
    fn materialize(
        &self,
        name: &str,
        query: &JoinQuery,
        result: &QueryResult,
    ) -> Result<(), DbError> {
        let types = query.output_types();
        let fields: Vec<Field> = result
            .columns
            .iter()
            .zip(&types)
            .map(|(n, dt)| {
                // Temp-table columns must be bare identifiers.
                let base = n.rsplit('.').next().unwrap_or(n);
                Field::new(base, *dt)
            })
            .collect();
        let mut b = self.catalog.builder(name, Schema::new(fields));
        for row in &result.rows {
            b.push_row(row);
        }
        self.catalog.register(b.finish());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn database_is_send_sync() {
        assert_send_sync::<Database>();
    }

    fn sample_db() -> Database {
        let db = Database::new();
        db.create_table(
            "a",
            &[("id", DataType::Int), ("g", DataType::Int)],
            (0..30)
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        )
        .unwrap();
        db.create_table(
            "b",
            &[("aid", DataType::Int), ("w", DataType::Float)],
            (0..50)
                .map(|i| vec![Value::Int(i % 30), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_query() {
        let db = sample_db();
        let r = db
            .query("SELECT a.g, COUNT(*) c FROM a, b WHERE a.id = b.aid GROUP BY a.g ORDER BY a.g")
            .unwrap();
        assert_eq!(r.num_rows(), 3);
        let total: i64 = r.rows.iter().map(|row| row[1].as_i64().unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn all_strategies_agree() {
        let db = sample_db();
        let sql = "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 1";
        let reference = db.run_script(sql, &Strategy::Reference).unwrap();
        for strategy in Strategy::all_builtin() {
            let out = db.run_script(sql, &strategy).unwrap();
            assert!(!out.timed_out, "{}", strategy.name());
            assert_eq!(
                out.result.canonical_rows(),
                reference.result.canonical_rows(),
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn query_with_named_strategy() {
        let db = sample_db();
        let sql = "SELECT a.id FROM a WHERE a.g = 0";
        let a = db.query_with(sql, "reference").unwrap();
        let b = db.query_with(sql, "Skinner-C").unwrap();
        assert_eq!(a.canonical_rows(), b.canonical_rows());
        assert!(matches!(
            db.query_with(sql, "nope"),
            Err(DbError::UnknownStrategy(_))
        ));
    }

    #[test]
    fn default_strategy_by_name() {
        let db = sample_db();
        db.set_default_strategy_named("traditional").unwrap();
        assert_eq!(db.default_strategy().name(), "Traditional");
        assert!(db.set_default_strategy_named("bogus").is_err());
        db.set_default_strategy(Strategy::default());
        assert_eq!(db.default_strategy().name(), "Skinner-C");
    }

    #[test]
    fn thread_knob_defaults_and_overrides() {
        let db = sample_db();
        assert_eq!(db.default_threads(), skinner_exec::default_threads());
        db.set_default_threads(4);
        assert_eq!(db.default_threads(), 4);
        assert_eq!(db.exec_context().threads(), 4);
        db.set_default_threads(0); // clamped
        assert_eq!(db.default_threads(), 1);
        // The parallel strategy runs under the knob and agrees with the rest.
        db.set_default_threads(2);
        let sql = "SELECT a.id FROM a, b WHERE a.id = b.aid";
        let par = db.query_with(sql, "parallel_skinner").unwrap();
        let seq = db.query_with(sql, "Skinner-C").unwrap();
        assert_eq!(par.canonical_rows(), seq.canonical_rows());
    }

    #[test]
    fn concurrent_queries_on_shared_database() {
        let db = Arc::new(sample_db());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let sql = format!(
                        "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = {}",
                        i % 3
                    );
                    db.query(&sql).unwrap().num_rows()
                })
            })
            .collect();
        let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 50 + counts[0]);
    }

    #[test]
    fn temp_tables_dropped_when_a_later_statement_fails_to_bind() {
        let db = sample_db();
        let script = "CREATE TEMP TABLE leak AS SELECT a.g FROM a; \
                      SELECT bogus.x FROM leak";
        assert!(matches!(db.query(script), Err(DbError::Bind(_))));
        assert!(
            db.catalog().get("leak").is_none(),
            "temp table must not leak into the shared catalog on bind failure"
        );
    }

    #[test]
    fn successful_scripts_keep_the_final_statement_metrics() {
        let db = sample_db();
        let out = db
            .run_script(
                "SELECT a.id FROM a, b WHERE a.id = b.aid",
                &Strategy::default(),
            )
            .unwrap();
        assert!(!out.timed_out);
        assert_eq!(
            out.metrics.order.len(),
            2,
            "Skinner-C's learned order must survive into the script outcome"
        );
        assert!(out.metrics.slices > 0);
    }

    #[test]
    fn scripts_report_per_statement_outcomes() {
        let db = sample_db();
        let script = "CREATE TEMP TABLE sums AS \
                      SELECT a.g grp, COUNT(*) c FROM a, b WHERE a.id = b.aid GROUP BY a.g; \
                      SELECT s.grp FROM sums s ORDER BY s.grp; \
                      DROP TABLE sums;";
        let out = db
            .run_script_detailed(script, db.default_strategy().as_ref(), &db.exec_context())
            .unwrap();
        assert_eq!(out.statements.len(), 3);
        assert!(matches!(
            out.statements[0].kind,
            StatementKind::CreateTempTable(_)
        ));
        assert_eq!(out.statements[1].kind, StatementKind::Select);
        assert!(matches!(
            out.statements[2].kind,
            StatementKind::DropTable(_)
        ));
        // Each executing statement carries its own timing/work/metrics.
        assert!(out.statements[0].work_units > 0);
        assert!(out.statements[1].work_units > 0);
        assert_eq!(out.statements[0].rows, 3);
        assert_eq!(out.statements[1].rows, 3);
        assert!(out.statements[0].metrics.order.len() == 2);
        // Script totals are the sum over statements, and the per-statement
        // walls are individually recorded (not the whole-script elapsed).
        assert_eq!(
            out.work_units,
            out.statements.iter().map(|s| s.work_units).sum::<u64>()
        );
        assert!(out.statements.iter().all(|s| s.wall <= out.wall));
        // The collapsed outcome keeps the final SELECT's metrics.
        let collapsed = out.into_outcome();
        assert_eq!(collapsed.metrics.order.len(), 1);
    }

    #[test]
    fn timed_out_scripts_mark_the_guilty_statement() {
        let db = sample_db();
        let ctx = db
            .exec_context()
            .with_budget(Arc::new(skinner_exec::WorkBudget::with_limit(5)));
        let script = "SELECT a.g FROM a WHERE a.g = 0; \
                      SELECT a.id FROM a, b WHERE a.id = b.aid";
        let out = db
            .run_script_detailed(script, db.default_strategy().as_ref(), &ctx)
            .unwrap();
        assert!(out.timed_out);
        let last = out.statements.last().unwrap();
        assert!(last.timed_out, "the statement that tripped is marked");
    }

    #[test]
    fn temp_table_script_roundtrip() {
        let db = sample_db();
        let script = "CREATE TEMP TABLE sums AS \
                      SELECT a.g grp, COUNT(*) c FROM a, b WHERE a.id = b.aid GROUP BY a.g; \
                      SELECT s.grp, s.c FROM sums s WHERE s.c > 10 ORDER BY s.grp; \
                      DROP TABLE sums;";
        let r = db.query(script).unwrap();
        assert!(r.num_rows() >= 1);
        // Temp table dropped afterwards.
        assert!(db.catalog().get("sums").is_none());
    }

    #[test]
    fn udf_registration_and_use() {
        let db = sample_db();
        db.register_udf("is_even", |args| {
            Value::from(args[0].as_i64().unwrap_or(1) % 2 == 0)
        });
        let r = db.query("SELECT a.id FROM a WHERE is_even(a.id)").unwrap();
        assert_eq!(r.num_rows(), 15);
    }

    #[test]
    fn errors_are_reported() {
        let db = sample_db();
        assert!(matches!(db.query("SELECT FROM"), Err(DbError::Parse(_))));
        assert!(matches!(
            db.query("SELECT nope.x FROM a"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(db.query("DROP TABLE a"), Err(DbError::Schema(_))));
    }

    #[test]
    fn query_timeout_is_an_error() {
        let db = sample_db();
        db.set_default_strategy(Strategy::SkinnerC(skinner_core::SkinnerCConfig {
            work_limit: 5,
            ..Default::default()
        }));
        assert!(matches!(
            db.query("SELECT a.id FROM a, b WHERE a.id = b.aid"),
            Err(DbError::Timeout)
        ));
    }

    #[test]
    fn csv_loading_end_to_end() {
        let dir = std::env::temp_dir().join("skinnerdb_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("people.csv");
        std::fs::write(&path, "id,name,score\n1,ann,2.5\n2,bob,3.0\n").unwrap();
        let db = Database::new();
        db.load_csv("people", &path).unwrap();
        let r = db
            .query("SELECT p.name FROM people p WHERE p.score > 2.7")
            .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.rows[0][0].as_str(), Some("bob"));
        assert!(db.load_csv("nope", dir.join("missing.csv")).is_err());
    }

    #[test]
    fn persistent_tables_survive_reopen_and_drop_cleans_disk() {
        let dir = std::env::temp_dir().join(format!("skinnerdb_open_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let expected;
        {
            let db = Database::open(&dir).unwrap();
            assert!(db.has_data_dir());
            db.create_table(
                "t",
                &[("x", DataType::Int), ("s", DataType::Str)],
                (0..40)
                    .map(|i| vec![Value::Int(i), Value::from(format!("s{}", i % 4).as_str())])
                    .collect(),
            )
            .unwrap();
            db.persist_table("t").unwrap();
            assert!(db.catalog().is_persistent("t"));
            expected = db
                .query("SELECT t.x FROM t WHERE t.s = 's1' ORDER BY t.x")
                .unwrap()
                .canonical_rows();
        }
        {
            let db = Database::open(&dir).unwrap();
            let got = db
                .query("SELECT t.x FROM t WHERE t.s = 's1' ORDER BY t.x")
                .unwrap()
                .canonical_rows();
            assert_eq!(got, expected, "reloaded table must answer identically");
            db.catalog().drop_table("t");
        }
        {
            let db = Database::open(&dir).unwrap();
            assert!(
                db.catalog().get("t").is_none(),
                "dropped persistent table must not reappear"
            );
            // No orphan segment files either.
            let segs = std::fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .path()
                        .extension()
                        .and_then(|x| x.to_str())
                        == Some("seg")
                })
                .count();
            assert_eq!(segs, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bulk_load_requires_data_dir_and_registers_zoned_table() {
        let dir = std::env::temp_dir().join(format!("skinnerdb_bulk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("m.csv");
        let mut body = String::from("id,v\n");
        for i in 0..2000 {
            body.push_str(&format!("{i},{}\n", i % 10));
        }
        std::fs::write(&csv, body).unwrap();

        let db = Database::new();
        assert!(matches!(
            db.bulk_load_csv("m", &csv),
            Err(DbError::Storage(
                skinner_storage::disk::DiskError::NoDataDir
            ))
        ));
        db.attach_data_dir(dir.join("data")).unwrap();
        db.bulk_load_csv("m", &csv).unwrap();
        let t = db.catalog().get("m").unwrap();
        assert!(
            t.zones().is_some(),
            "bulk-loaded table must carry zone maps"
        );
        let r = db.query("SELECT m.id FROM m WHERE m.id < 5").unwrap();
        assert_eq!(r.num_rows(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_arity_checked() {
        let db = Database::new();
        let err = db.create_table(
            "t",
            &[("x", DataType::Int)],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
        assert!(matches!(err, Err(DbError::Schema(_))));
    }
}
