//! The `Database` facade: tables, UDFs, SQL scripts, strategies.

use std::fmt;
use std::sync::Arc;

use skinner_query::ast::Statement;
use skinner_query::{bind_select, parse_statements, BindError, JoinQuery, ParseError, UdfRegistry};
use skinner_stats::StatsCache;
use skinner_storage::{Catalog, DataType, Field, Schema, Value};

use crate::strategy::{run_query, RunOutcome, Strategy};
use crate::QueryResult;

/// Top-level error type.
#[derive(Debug)]
pub enum DbError {
    Parse(ParseError),
    Bind(BindError),
    /// A statement exceeded its work limit.
    Timeout,
    /// Schema/constraint violations when creating tables.
    Schema(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Bind(e) => write!(f, "{e}"),
            DbError::Timeout => write!(f, "query exceeded its work limit"),
            DbError::Schema(s) => write!(f, "schema error: {s}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<BindError> for DbError {
    fn from(e: BindError) -> Self {
        DbError::Bind(e)
    }
}

/// An embedded SkinnerDB instance: a catalog of in-memory tables, a UDF
/// registry, cached statistics (for the *baseline* strategies only —
/// SkinnerDB itself never reads them), and a default evaluation strategy.
pub struct Database {
    catalog: Arc<Catalog>,
    udfs: UdfRegistry,
    stats: StatsCache,
    default_strategy: Strategy,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Empty database with the default strategy (Skinner-C).
    pub fn new() -> Self {
        Database {
            catalog: Arc::new(Catalog::new()),
            udfs: UdfRegistry::new(),
            stats: StatsCache::new(),
            default_strategy: Strategy::default(),
        }
    }

    /// Wrap an existing catalog + UDFs (workload generators produce these).
    pub fn from_parts(catalog: Arc<Catalog>, udfs: UdfRegistry) -> Self {
        Database {
            catalog,
            udfs,
            stats: StatsCache::new(),
            default_strategy: Strategy::default(),
        }
    }

    /// Replace the default strategy used by [`Database::query`].
    pub fn set_default_strategy(&mut self, strategy: Strategy) {
        self.default_strategy = strategy;
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    pub fn stats(&self) -> &StatsCache {
        &self.stats
    }

    /// Create and register a table from rows.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: &[(&str, DataType)],
        rows: Vec<Vec<Value>>,
    ) -> Result<(), DbError> {
        let schema = Schema::new(
            columns
                .iter()
                .map(|(n, dt)| Field::new(*n, *dt))
                .collect(),
        );
        let mut b = self.catalog.builder(name, schema);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != columns.len() {
                return Err(DbError::Schema(format!(
                    "row {i} has {} values, expected {}",
                    row.len(),
                    columns.len()
                )));
            }
            b.push_row(row);
        }
        self.catalog.register(b.finish());
        Ok(())
    }

    /// Register a UDF callable from SQL.
    pub fn register_udf(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) {
        self.udfs.register(name, f);
    }

    /// Load a CSV file (header required, types inferred) as table `name`.
    pub fn load_csv(&mut self, name: &str, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        let file = std::fs::File::open(path)
            .map_err(|e| DbError::Schema(format!("cannot open csv: {e}")))?;
        let table = skinner_storage::read_csv(
            name,
            std::io::BufReader::new(file),
            None,
            self.catalog.interner().clone(),
        )
        .map_err(|e| DbError::Schema(e.to_string()))?;
        self.catalog.register(table);
        Ok(())
    }

    /// Bind a single SELECT statement (no execution).
    pub fn bind(&self, sql: &str) -> Result<JoinQuery, DbError> {
        let stmts = parse_statements(sql)?;
        match stmts.as_slice() {
            [Statement::Select(s)] => Ok(bind_select(s, &self.catalog, &self.udfs)?),
            _ => Err(DbError::Schema(
                "bind expects exactly one SELECT statement".into(),
            )),
        }
    }

    /// Run a SQL script with the default strategy and return the last
    /// SELECT's result.
    pub fn query(&self, sql: &str) -> Result<QueryResult, DbError> {
        let strategy = self.default_strategy.clone();
        Ok(self.run_script(sql, &strategy)?.result)
    }

    /// Run a SQL script with an explicit strategy, returning the normalized
    /// outcome of the whole script (work units accumulate across
    /// statements; the result is the last SELECT's).
    pub fn run_script(&self, sql: &str, strategy: &Strategy) -> Result<RunOutcome, DbError> {
        let stmts = parse_statements(sql)?;
        if stmts.is_empty() {
            return Err(DbError::Schema("empty script".into()));
        }
        let started = std::time::Instant::now();
        let mut total_work = 0u64;
        let mut last: Option<QueryResult> = None;
        let mut temp_tables: Vec<String> = Vec::new();
        for stmt in &stmts {
            match stmt {
                Statement::Select(s) => {
                    let q = bind_select(s, &self.catalog, &self.udfs)?;
                    let out = run_query(&q, strategy, &self.stats);
                    total_work += out.work_units;
                    if out.timed_out {
                        self.cleanup(&temp_tables);
                        return Ok(RunOutcome {
                            result: out.result,
                            work_units: total_work,
                            wall: started.elapsed(),
                            timed_out: true,
                        });
                    }
                    last = Some(out.result);
                }
                Statement::CreateTempTable { name, query } => {
                    let q = bind_select(query, &self.catalog, &self.udfs)?;
                    let out = run_query(&q, strategy, &self.stats);
                    total_work += out.work_units;
                    if out.timed_out {
                        self.cleanup(&temp_tables);
                        return Ok(RunOutcome {
                            result: out.result,
                            work_units: total_work,
                            wall: started.elapsed(),
                            timed_out: true,
                        });
                    }
                    self.materialize(name, &q, &out.result)?;
                    temp_tables.push(name.clone());
                }
                Statement::DropTable { name } => {
                    self.catalog.drop_table(name);
                    temp_tables.retain(|t| !t.eq_ignore_ascii_case(name));
                }
            }
        }
        let result = last.ok_or_else(|| {
            DbError::Schema("script contains no SELECT returning a result".into())
        })?;
        Ok(RunOutcome {
            result,
            work_units: total_work,
            wall: started.elapsed(),
            timed_out: false,
        })
    }

    fn cleanup(&self, temp_tables: &[String]) {
        for t in temp_tables {
            self.catalog.drop_table(t);
        }
    }

    /// Materialize a query result as a new table (decomposed-query support).
    fn materialize(
        &self,
        name: &str,
        query: &JoinQuery,
        result: &QueryResult,
    ) -> Result<(), DbError> {
        let types = query.output_types();
        let fields: Vec<Field> = result
            .columns
            .iter()
            .zip(&types)
            .map(|(n, dt)| {
                // Temp-table columns must be bare identifiers.
                let base = n.rsplit('.').next().unwrap_or(n);
                Field::new(base, *dt)
            })
            .collect();
        let mut b = self.catalog.builder(name, Schema::new(fields));
        for row in &result.rows {
            b.push_row(row);
        }
        self.catalog.register(b.finish());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "a",
            &[("id", DataType::Int), ("g", DataType::Int)],
            (0..30)
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        )
        .unwrap();
        db.create_table(
            "b",
            &[("aid", DataType::Int), ("w", DataType::Float)],
            (0..50)
                .map(|i| vec![Value::Int(i % 30), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_query() {
        let db = sample_db();
        let r = db
            .query("SELECT a.g, COUNT(*) c FROM a, b WHERE a.id = b.aid GROUP BY a.g ORDER BY a.g")
            .unwrap();
        assert_eq!(r.num_rows(), 3);
        let total: i64 = r.rows.iter().map(|row| row[1].as_i64().unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn all_strategies_agree() {
        let db = sample_db();
        let sql = "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 1";
        let reference = db.run_script(sql, &Strategy::Reference).unwrap();
        for strategy in [
            Strategy::default(),
            Strategy::SkinnerG(Default::default()),
            Strategy::SkinnerH(Default::default()),
            Strategy::Traditional(Default::default()),
            Strategy::Eddy(Default::default()),
            Strategy::Reoptimizer(Default::default()),
        ] {
            let out = db.run_script(sql, &strategy).unwrap();
            assert!(!out.timed_out, "{}", strategy.name());
            assert_eq!(
                out.result.canonical_rows(),
                reference.result.canonical_rows(),
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn temp_table_script_roundtrip() {
        let db = sample_db();
        let script = "CREATE TEMP TABLE sums AS \
                      SELECT a.g grp, COUNT(*) c FROM a, b WHERE a.id = b.aid GROUP BY a.g; \
                      SELECT s.grp, s.c FROM sums s WHERE s.c > 10 ORDER BY s.grp; \
                      DROP TABLE sums;";
        let r = db.query(script).unwrap();
        assert!(r.num_rows() >= 1);
        // Temp table dropped afterwards.
        assert!(db.catalog().get("sums").is_none());
    }

    #[test]
    fn udf_registration_and_use() {
        let mut db = sample_db();
        db.register_udf("is_even", |args| {
            Value::from(args[0].as_i64().unwrap_or(1) % 2 == 0)
        });
        let r = db.query("SELECT a.id FROM a WHERE is_even(a.id)").unwrap();
        assert_eq!(r.num_rows(), 15);
    }

    #[test]
    fn errors_are_reported() {
        let db = sample_db();
        assert!(matches!(db.query("SELECT FROM"), Err(DbError::Parse(_))));
        assert!(matches!(
            db.query("SELECT nope.x FROM a"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(
            db.query("DROP TABLE a"),
            Err(DbError::Schema(_))
        ));
    }

    #[test]
    fn csv_loading_end_to_end() {
        let dir = std::env::temp_dir().join("skinnerdb_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("people.csv");
        std::fs::write(&path, "id,name,score\n1,ann,2.5\n2,bob,3.0\n").unwrap();
        let mut db = Database::new();
        db.load_csv("people", &path).unwrap();
        let r = db
            .query("SELECT p.name FROM people p WHERE p.score > 2.7")
            .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.rows[0][0].as_str(), Some("bob"));
        assert!(db.load_csv("nope", dir.join("missing.csv")).is_err());
    }

    #[test]
    fn schema_arity_checked() {
        let mut db = Database::new();
        let err = db.create_table(
            "t",
            &[("x", DataType::Int)],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
        assert!(matches!(err, Err(DbError::Schema(_))));
    }
}
