//! # SkinnerDB-rs
//!
//! A from-scratch Rust reproduction of *"SkinnerDB: Regret-Bounded Query
//! Evaluation via Reinforcement Learning"* (Trummer et al., VLDB 2019).
//!
//! SkinnerDB maintains **no data statistics and no cost model**. It learns
//! (near-)optimal join orders *during* the execution of the current query:
//! execution is cut into thousands of tiny time slices, a UCT bandit picks
//! the join order for each slice, per-slice progress becomes the reward, and
//! partial results from different orders merge into one complete result —
//! with formal bounds on the regret versus an optimal join order.
//!
//! ## Quick start
//!
//! ```
//! use skinnerdb::{Database, Value};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     "users",
//!     &[("id", skinnerdb::DataType::Int), ("name", skinnerdb::DataType::Str)],
//!     vec![
//!         vec![Value::Int(1), Value::from("ada")],
//!         vec![Value::Int(2), Value::from("grace")],
//!     ],
//! )
//! .unwrap();
//! db.create_table(
//!     "events",
//!     &[("user_id", skinnerdb::DataType::Int), ("kind", skinnerdb::DataType::Str)],
//!     vec![
//!         vec![Value::Int(1), Value::from("login")],
//!         vec![Value::Int(1), Value::from("click")],
//!         vec![Value::Int(2), Value::from("login")],
//!     ],
//! )
//! .unwrap();
//! let result = db
//!     .query("SELECT u.name, COUNT(*) c FROM users u, events e \
//!             WHERE u.id = e.user_id GROUP BY u.name ORDER BY u.name")
//!     .unwrap();
//! assert_eq!(result.num_rows(), 2);
//! ```
//!
//! ## Crate map
//!
//! * [`skinner_core`] — Skinner-C/G/H, the paper's contribution,
//! * [`skinner_exec`] — the generic engine + shared pre/post-processing,
//! * [`skinner_uct`] — the UCT search tree,
//! * [`skinner_optimizer`] / [`skinner_stats`] — the traditional baseline,
//! * [`skinner_adaptive`] — Eddies and the sampling re-optimizer,
//! * [`skinner_workloads`] — TPC-H / JOB-like / torture generators.

pub mod database;
pub mod strategy;

pub use database::{Database, DbError};
pub use strategy::{RunOutcome, Strategy};

pub use skinner_exec::QueryResult;
pub use skinner_storage::{DataType, Value};

// Re-export the component crates for advanced use (benchmarks, examples).
pub use skinner_adaptive;
pub use skinner_core;
pub use skinner_exec;
pub use skinner_optimizer;
pub use skinner_query;
pub use skinner_stats;
pub use skinner_storage;
pub use skinner_uct;
pub use skinner_workloads;
