//! # SkinnerDB-rs
//!
//! A from-scratch Rust reproduction of *"SkinnerDB: Regret-Bounded Query
//! Evaluation via Reinforcement Learning"* (Trummer et al., VLDB 2019).
//!
//! SkinnerDB maintains **no data statistics and no cost model**. It learns
//! (near-)optimal join orders *during* the execution of the current query:
//! execution is cut into thousands of tiny time slices, a UCT bandit picks
//! the join order for each slice, per-slice progress becomes the reward, and
//! partial results from different orders merge into one complete result —
//! with formal bounds on the regret versus an optimal join order.
//!
//! `ARCHITECTURE.md` at the repository root maps the whole workspace —
//! crate graph, the episode/learning loop end-to-end, how the execution
//! API composes, and where the paper's sections live in the code.
//!
//! ## Quick start
//!
//! [`Database`] is `Send + Sync` with `&self` mutators; open [`Session`]s
//! for per-client strategy and settings, and [`Database::prepare`] /
//! [`Session::prepare`] a SELECT once to execute it many times:
//!
//! ```
//! use skinnerdb::{Database, DataType, Value};
//!
//! let db = Database::new();
//! db.create_table(
//!     "users",
//!     &[("id", DataType::Int), ("name", DataType::Str)],
//!     vec![
//!         vec![Value::Int(1), Value::from("ada")],
//!         vec![Value::Int(2), Value::from("grace")],
//!     ],
//! )
//! .unwrap();
//! db.create_table(
//!     "events",
//!     &[("user_id", DataType::Int), ("kind", DataType::Str)],
//!     vec![
//!         vec![Value::Int(1), Value::from("login")],
//!         vec![Value::Int(1), Value::from("click")],
//!         vec![Value::Int(2), Value::from("login")],
//!     ],
//! )
//! .unwrap();
//!
//! // One-shot queries run under the database default (Skinner-C).
//! let result = db
//!     .query("SELECT u.name, COUNT(*) c FROM users u, events e \
//!             WHERE u.id = e.user_id GROUP BY u.name ORDER BY u.name")
//!     .unwrap();
//! assert_eq!(result.num_rows(), 2);
//! for row in result.iter_rows() {
//!     assert!(row[1].as_i64().unwrap() >= 1);
//! }
//!
//! // Sessions carry their own strategy and limits over the shared tables.
//! let session = db.session();
//! session.use_strategy("traditional").unwrap();
//! session.set_work_limit(1_000_000);
//!
//! // Prepare once (parse + bind), execute many times.
//! let hot = session
//!     .prepare("SELECT e.kind FROM users u, events e WHERE u.id = e.user_id")
//!     .unwrap();
//! let a = hot.execute().unwrap();
//! let b = hot.execute().unwrap();
//! assert_eq!(a.canonical_rows(), b.canonical_rows());
//! ```
//!
//! ## Parallel learned execution
//!
//! `parallel_skinner` is the paper's multi-threaded SkinnerC
//! configuration: each episode's batch of left-most-table tuples is split
//! across N worker threads executing the same join order, while all
//! workers learn through **one shared concurrent UCT tree**. The thread
//! count comes from a knob — [`Database::set_default_threads`] for the
//! instance default (initially the machine's available parallelism),
//! [`Session::set_threads`] per client — and determinism is guaranteed
//! regardless of it: any thread count produces exactly the same result
//! set (offsets advance only when a batch completes, and the
//! deduplicating result set makes retries harmless), so `threads` is
//! purely a performance knob.
//!
//! ```
//! use skinnerdb::{Database, DataType, Value};
//!
//! let db = Database::new();
//! db.create_table(
//!     "t",
//!     &[("x", DataType::Int)],
//!     (0..100).map(|i| vec![Value::Int(i)]).collect(),
//! )
//! .unwrap();
//! db.create_table(
//!     "u",
//!     &[("x", DataType::Int)],
//!     (0..100).map(|i| vec![Value::Int(i % 10)]).collect(),
//! )
//! .unwrap();
//!
//! let session = db.session();
//! session.use_strategy("parallel_skinner").unwrap();
//! session.set_threads(Some(4));
//! let parallel = session
//!     .query("SELECT t.x FROM t, u WHERE t.x = u.x")
//!     .unwrap();
//!
//! // Same rows as every sequential strategy, at any thread count.
//! let sequential = db.query("SELECT t.x FROM t, u WHERE t.x = u.x").unwrap();
//! assert_eq!(parallel.canonical_rows(), sequential.canonical_rows());
//! ```
//!
//! ## Plugging in your own engine
//!
//! The execution API is open: implement
//! [`ExecutionStrategy`] — from any crate
//! — register it, and address it by name:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Instant;
//!
//! use skinnerdb::skinner_exec::{ExecContext, ExecOutcome, ExecutionStrategy};
//! use skinnerdb::skinner_query::JoinQuery;
//! use skinnerdb::{Database, DataType, Value};
//!
//! /// A toy engine: delegates to the reference executor, but it could be
//! /// any learned optimizer — the registry doesn't care where it's from.
//! struct MyEngine;
//!
//! impl ExecutionStrategy for MyEngine {
//!     fn name(&self) -> &str {
//!         "my-engine"
//!     }
//!
//!     fn execute(&self, query: &JoinQuery, _ctx: &ExecContext) -> ExecOutcome {
//!         let started = Instant::now();
//!         let result = skinnerdb::skinner_exec::reference::run_reference(query);
//!         ExecOutcome::completed(result, 0, started.elapsed())
//!     }
//! }
//!
//! let db = Database::new();
//! db.create_table(
//!     "t",
//!     &[("x", DataType::Int)],
//!     (0..5).map(|i| vec![Value::Int(i)]).collect(),
//! )
//! .unwrap();
//!
//! db.register_strategy(Arc::new(MyEngine));
//! let rows = db.query_with("SELECT t.x FROM t WHERE t.x > 2", "my-engine").unwrap();
//! assert_eq!(rows.num_rows(), 2);
//!
//! // Sessions can select it too, like any built-in.
//! let session = db.session();
//! session.use_strategy("my-engine").unwrap();
//! assert_eq!(session.query("SELECT t.x FROM t").unwrap().num_rows(), 5);
//! ```
//!
//! ## Crate map
//!
//! * [`skinner_core`] — Skinner-C/G/H and `parallel_skinner`, the paper's
//!   contribution,
//! * [`skinner_exec`] — the generic engine, shared pre/post-processing, and
//!   the execution API ([`ExecutionStrategy`], [`ExecContext`],
//!   [`ExecOutcome`]),
//! * [`skinner_uct`] — the UCT search tree,
//! * [`skinner_optimizer`] / [`skinner_stats`] — the traditional baseline,
//! * [`skinner_adaptive`] — Eddies and the sampling re-optimizer,
//! * [`skinner_workloads`] — TPC-H / JOB-like / torture generators.
//!
//! Beyond the library, `skinner_server` (with its `skinner-server`
//! binary) serves this engine over a native TCP wire protocol — one
//! [`Session`] per connection, admission control, out-of-band query
//! cancellation — and `skinner_client` is the matching client; see the
//! README's "Running the server".

pub mod database;
pub mod render;
pub mod session;
pub mod strategy;

pub use database::{Database, DbError, ScriptOutcome, StatementKind, StatementOutcome};
pub use render::{render_table, render_table_with, TableOptions};
pub use session::{Prepared, Session, SessionSettings};
pub use strategy::{builtin_registry, Strategy};

pub use skinner_core::{TreeCache, TreeCacheConfig, TreeCacheStats};
pub use skinner_exec::{
    CancelToken, ExecContext, ExecMetrics, ExecOutcome, ExecutionStrategy, QueryResult,
    StrategyRegistry,
};
pub use skinner_storage::{DataType, DiskError, DiskStore, Value};

// Re-export the component crates for advanced use (benchmarks, examples).
pub use skinner_adaptive;
pub use skinner_core;
pub use skinner_exec;
pub use skinner_optimizer;
pub use skinner_query;
pub use skinner_stats;
pub use skinner_storage;
pub use skinner_uct;
pub use skinner_workloads;
