//! Text rendering of query results.
//!
//! One shared aligned-column renderer for every place the workspace prints
//! rows — the `examples/`, the benchmark harness, and the server's text
//! mode — instead of ad-hoc per-caller formatting.

use skinner_exec::QueryResult;
use skinner_storage::Value;

/// Rendering knobs for [`render_table_with`].
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Rows printed before the output is truncated with a
    /// "(… more rows)" footer.
    pub max_rows: usize,
    /// Hard cap on a single cell's width; longer cells are cut with an
    /// ellipsis so one wide string cannot blow up the whole table.
    pub max_col_width: usize,
    /// Append a `N row(s)` summary line after the table.
    pub row_count_footer: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            max_rows: 50,
            max_col_width: 64,
            row_count_footer: false,
        }
    }
}

/// Render `result` as an aligned text table showing at most `max_rows` rows.
pub fn render_table(result: &QueryResult, max_rows: usize) -> String {
    render_table_with(
        result,
        &TableOptions {
            max_rows,
            ..TableOptions::default()
        },
    )
}

/// Render `result` as an aligned text table under explicit [`TableOptions`].
pub fn render_table_with(result: &QueryResult, opts: &TableOptions) -> String {
    // All widths are in chars (not bytes) so multibyte text aligns.
    let clip = |s: String| -> String {
        if s.chars().count() > opts.max_col_width {
            let keep = opts.max_col_width.saturating_sub(1);
            let mut clipped: String = s.chars().take(keep).collect();
            clipped.push('…');
            clipped
        } else {
            s
        }
    };
    let mut widths: Vec<usize> = result
        .columns
        .iter()
        .map(|c| c.chars().count().min(opts.max_col_width))
        .collect();
    let shown = result.rows.len().min(opts.max_rows);
    let cells: Vec<Vec<String>> = result.rows[..shown]
        .iter()
        .map(|r| r.iter().map(|v| clip(format_value(v))).collect())
        .collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    // `{:<w$}` pads by char count for strings, matching the char widths.
    let mut out = String::new();
    for (i, c) in result.columns.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", clip(c.clone()), w = widths[i]));
    }
    out.push('\n');
    for w in &widths {
        out.push_str(&"-".repeat(*w));
        out.push_str("  ");
    }
    out.push('\n');
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
    }
    if result.rows.len() > shown {
        out.push_str(&format!("… ({} more rows)\n", result.rows.len() - shown));
    }
    if opts.row_count_footer {
        out.push_str(&format!("({} row(s))\n", result.num_rows()));
    }
    out
}

/// Canonical display form of one value (floats at fixed precision so
/// strategies differing only in summation order render identically).
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Float(x) => format!("{x:.4}"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryResult {
        QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: (0..5)
                .map(|i| vec![Value::Int(i), Value::from("x")])
                .collect(),
        }
    }

    #[test]
    fn table_rendering_truncates() {
        let s = render_table(&sample(), 2);
        assert!(s.contains("3 more rows"));
        assert!(s.starts_with("a"));
    }

    #[test]
    fn columns_align_to_widest_cell() {
        let r = QueryResult {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(12345)]],
        };
        let s = render_table(&r, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "-----  ", "separator spans the widest cell");
        assert!(lines[2].starts_with("1    "));
    }

    #[test]
    fn wide_cells_are_clipped() {
        let r = QueryResult {
            columns: vec!["s".into()],
            rows: vec![vec![Value::from("x".repeat(200).as_str())]],
        };
        let s = render_table_with(
            &r,
            &TableOptions {
                max_col_width: 8,
                ..TableOptions::default()
            },
        );
        assert!(s.contains('…'));
        assert!(!s.contains(&"x".repeat(9)));
    }

    #[test]
    fn multibyte_text_aligns_and_clips_by_chars() {
        let r = QueryResult {
            columns: vec!["имя".into()],
            rows: vec![vec![Value::from("долгое-имя")], vec![Value::from("aб")]],
        };
        let s = render_table(&r, 10);
        let lines: Vec<&str> = s.lines().collect();
        // Width is the 10-char cell, measured in chars not bytes.
        assert_eq!(lines[1], format!("{}  ", "-".repeat(10)));
        // A 10-char multibyte string under a 64-char cap is NOT clipped.
        assert!(!s.contains('…'));
        let clipped = render_table_with(
            &r,
            &TableOptions {
                max_col_width: 6,
                ..TableOptions::default()
            },
        );
        assert!(clipped.contains("долго…"), "{clipped}");
    }

    #[test]
    fn footer_counts_rows() {
        let s = render_table_with(
            &sample(),
            &TableOptions {
                row_count_footer: true,
                ..TableOptions::default()
            },
        );
        assert!(s.trim_end().ends_with("(5 row(s))"));
    }

    #[test]
    fn floats_render_at_fixed_precision() {
        assert_eq!(format_value(&Value::Float(0.1 + 0.2)), "0.3000");
        assert_eq!(format_value(&Value::Int(7)), "7");
    }
}
