//! Sessions and prepared statements.
//!
//! A [`Session`] is a lightweight per-client view over a shared
//! [`Database`]: it carries its own default strategy and settings (work
//! limit, deadline) while tables, UDFs, statistics and the strategy
//! registry stay shared. A [`Prepared`] statement is a SELECT parsed and
//! bound once and executed many times — the natural unit for SkinnerDB,
//! which learns join orders *per query* rather than from statistics.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use skinner_exec::{CancelToken, ExecContext, ExecOutcome, ExecutionStrategy, WorkBudget};
use skinner_query::JoinQuery;
use skinner_stats::StatsCache;

use crate::database::{Database, DbError, ScriptOutcome};
use crate::strategy::Strategy;
use crate::QueryResult;

/// Per-session execution settings.
#[derive(Debug, Clone, Copy)]
pub struct SessionSettings {
    /// Total work-unit budget per statement/script run through the session.
    pub work_limit: u64,
    /// Wall-clock deadline per statement/script (cooperative).
    pub deadline: Option<Duration>,
    /// Worker threads for parallel strategies; `None` inherits the
    /// database default (which itself defaults to the machine's available
    /// parallelism).
    pub threads: Option<usize>,
    /// Cross-query learning: warm-start learned strategies from the
    /// database's shared template cache. `None` inherits the database
    /// default (off unless [`Database::set_learning_cache`] enabled it).
    pub learning_cache: Option<bool>,
}

impl Default for SessionSettings {
    fn default() -> Self {
        SessionSettings {
            work_limit: u64::MAX,
            deadline: None,
            threads: None,
            learning_cache: None,
        }
    }
}

/// A per-client handle over a shared [`Database`].
///
/// Sessions isolate *policy* (which engine, how much work, how long,
/// how many threads) while *data* (tables, UDFs, statistics, the
/// strategy registry) stays shared:
///
/// ```
/// use skinnerdb::{Database, DataType, Value};
///
/// let db = Database::new();
/// db.create_table(
///     "t",
///     &[("x", DataType::Int)],
///     (0..100).map(|i| vec![Value::Int(i)]).collect(),
/// )
/// .unwrap();
///
/// let session = db.session();
/// session.use_strategy("parallel_skinner").unwrap(); // by registry name
/// session.set_threads(Some(4));                      // per-client override
/// session.set_work_limit(1_000_000);                 // units per statement
/// session.set_deadline(Some(std::time::Duration::from_secs(5)));
///
/// let rows = session.query("SELECT t.x FROM t WHERE t.x < 3").unwrap();
/// assert_eq!(rows.num_rows(), 3);
///
/// // Other sessions (and the database default) are unaffected.
/// assert_eq!(db.session().strategy().name(), "Skinner-C");
/// ```
pub struct Session {
    db: Database,
    strategy: RwLock<Arc<dyn ExecutionStrategy>>,
    settings: RwLock<SessionSettings>,
}

impl Session {
    pub(crate) fn new(db: Database) -> Self {
        let strategy = db.default_strategy();
        Session {
            db,
            strategy: RwLock::new(strategy),
            settings: RwLock::new(SessionSettings::default()),
        }
    }

    /// The shared database this session runs against.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// This session's current strategy.
    pub fn strategy(&self) -> Arc<dyn ExecutionStrategy> {
        self.strategy.read().clone()
    }

    /// Use a built-in strategy for subsequent statements.
    pub fn set_strategy(&self, strategy: Strategy) {
        *self.strategy.write() = strategy.build();
    }

    /// Use a registered strategy, by name (case-insensitive). This is how
    /// externally registered engines are selected.
    pub fn use_strategy(&self, name: &str) -> Result<(), DbError> {
        let strategy = self
            .db
            .strategies()
            .get(name)
            .ok_or_else(|| DbError::UnknownStrategy(name.to_string()))?;
        *self.strategy.write() = strategy;
        Ok(())
    }

    /// Current settings snapshot.
    pub fn settings(&self) -> SessionSettings {
        *self.settings.read()
    }

    /// Cap the work units any single statement/script may consume.
    pub fn set_work_limit(&self, limit: u64) {
        self.settings.write().work_limit = limit;
    }

    /// Set (or clear) the per-statement cooperative deadline.
    pub fn set_deadline(&self, deadline: Option<Duration>) {
        self.settings.write().deadline = deadline;
    }

    /// Set how many worker threads parallel strategies may use for this
    /// session's statements, or `None` to inherit the database default.
    pub fn set_threads(&self, threads: Option<usize>) {
        self.settings.write().threads = threads.map(|t| t.max(1));
    }

    /// Override the cross-query learning knob for this session
    /// (`Some(true)`/`Some(false)`), or inherit the database default
    /// (`None`). The cache itself is always the database-wide one, so a
    /// session that opts in shares templates with every other opted-in
    /// client.
    pub fn set_learning_cache(&self, enabled: Option<bool>) {
        self.settings.write().learning_cache = enabled;
    }

    /// Set a session option from string key/value pairs — the plumbing
    /// behind the server's `SET <key> = <value>` command, usable by any
    /// text-configured client. Keys (case-insensitive):
    ///
    /// | key              | value                                            |
    /// |------------------|--------------------------------------------------|
    /// | `strategy`       | a registry name (`skinner-c`, `traditional`, …)  |
    /// | `threads`        | worker count; `0` or `default` inherits the db   |
    /// | `work_limit`     | max work units per statement; `none` = unlimited |
    /// | `deadline_ms`    | per-statement deadline in ms; `0`/`none` = none  |
    /// | `learning_cache` | `on`/`off` (cross-query warm starts); `default`  |
    pub fn set_option(&self, key: &str, value: &str) -> Result<(), DbError> {
        let value = value.trim();
        let bad = |what: &str| DbError::BadOption(format!("{what}: {value:?}"));
        match key.trim().to_ascii_lowercase().as_str() {
            "strategy" => self.use_strategy(value),
            "threads" => {
                if value.eq_ignore_ascii_case("default") {
                    self.set_threads(None);
                    return Ok(());
                }
                let n: usize = value.parse().map_err(|_| bad("threads"))?;
                self.set_threads(if n == 0 { None } else { Some(n) });
                Ok(())
            }
            "work_limit" => {
                if value.eq_ignore_ascii_case("none") {
                    self.set_work_limit(u64::MAX);
                    return Ok(());
                }
                self.set_work_limit(value.parse().map_err(|_| bad("work_limit"))?);
                Ok(())
            }
            "deadline_ms" => {
                if value.eq_ignore_ascii_case("none") {
                    self.set_deadline(None);
                    return Ok(());
                }
                let ms: u64 = value.parse().map_err(|_| bad("deadline_ms"))?;
                self.set_deadline((ms > 0).then(|| Duration::from_millis(ms)));
                Ok(())
            }
            "learning_cache" => {
                match value.to_ascii_lowercase().as_str() {
                    "on" | "true" | "1" => self.set_learning_cache(Some(true)),
                    "off" | "false" | "0" => self.set_learning_cache(Some(false)),
                    "default" => self.set_learning_cache(None),
                    _ => return Err(bad("learning_cache")),
                }
                Ok(())
            }
            other => Err(DbError::BadOption(format!("unknown option: {other:?}"))),
        }
    }

    /// A fresh [`ExecContext`] reflecting this session's settings.
    pub fn exec_context(&self) -> ExecContext {
        let settings = self.settings();
        exec_context_for(&self.db, settings)
    }

    /// Run a SQL script under the session strategy/settings, returning the
    /// full outcome (timeouts reported in the outcome).
    pub fn run_script(&self, sql: &str) -> Result<ExecOutcome, DbError> {
        let strategy = self.strategy();
        self.db
            .run_script_with(sql, strategy.as_ref(), &self.exec_context())
    }

    /// Run a SQL script under the session strategy/settings with
    /// per-statement detail (each statement's timing, work units and
    /// metrics — what the server reports per query).
    pub fn run_script_detailed(&self, sql: &str) -> Result<ScriptOutcome, DbError> {
        let strategy = self.strategy();
        self.db
            .run_script_detailed(sql, strategy.as_ref(), &self.exec_context())
    }

    /// Run a SQL script and return the last SELECT's result; a timeout
    /// surfaces as [`DbError::Timeout`].
    pub fn query(&self, sql: &str) -> Result<QueryResult, DbError> {
        let out = self.run_script(sql)?;
        if out.timed_out {
            return Err(DbError::Timeout);
        }
        Ok(out.result)
    }

    /// Parse and bind a single SELECT once for repeated execution. The
    /// prepared statement snapshots the session's strategy and settings at
    /// prepare time.
    ///
    /// ```
    /// use skinnerdb::{Database, DataType, Value};
    ///
    /// let db = Database::new();
    /// db.create_table(
    ///     "t",
    ///     &[("x", DataType::Int)],
    ///     (0..20).map(|i| vec![Value::Int(i)]).collect(),
    /// )
    /// .unwrap();
    ///
    /// let session = db.session();
    /// session.use_strategy("traditional").unwrap();
    /// let hot = session.prepare("SELECT t.x FROM t WHERE t.x >= 15").unwrap();
    ///
    /// // The snapshot keeps the strategy even if the session moves on.
    /// session.use_strategy("reference").unwrap();
    /// assert_eq!(hot.strategy().name(), "Traditional");
    /// assert_eq!(hot.execute().unwrap().num_rows(), 5);
    /// ```
    pub fn prepare(&self, sql: &str) -> Result<Prepared, DbError> {
        let query = self.db.bind(sql)?;
        Ok(Prepared {
            sql: sql.to_string(),
            query,
            db: self.db.clone(),
            strategy: self.strategy(),
            settings: self.settings(),
        })
    }
}

fn exec_context_for(db: &Database, settings: SessionSettings) -> ExecContext {
    let cancel = match settings.deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let learning = settings
        .learning_cache
        .unwrap_or_else(|| db.learning_cache_enabled());
    let mut ctx = db
        .exec_context_with_learning(learning)
        .with_budget(Arc::new(WorkBudget::with_limit(settings.work_limit)))
        .with_cancel(cancel);
    if let Some(threads) = settings.threads {
        ctx = ctx.with_threads(threads);
    }
    ctx
}

/// A SELECT statement parsed and bound once, executable many times.
///
/// Binding resolves tables, columns and UDFs up front, so repeated
/// executions skip the entire frontend. Each execution still learns its
/// own join order — SkinnerDB keeps no cross-query state to go stale.
pub struct Prepared {
    sql: String,
    query: JoinQuery,
    db: Database,
    strategy: Arc<dyn ExecutionStrategy>,
    settings: SessionSettings,
}

impl Prepared {
    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The bound query (advanced callers: run it through any engine).
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The strategy this statement snapshotted at prepare time.
    pub fn strategy(&self) -> &Arc<dyn ExecutionStrategy> {
        &self.strategy
    }

    /// Execute and return the rows; timeouts surface as
    /// [`DbError::Timeout`].
    pub fn execute(&self) -> Result<QueryResult, DbError> {
        let out = self.execute_outcome();
        if out.timed_out {
            return Err(DbError::Timeout);
        }
        Ok(out.result)
    }

    /// Execute and return the full outcome (work units, wall time,
    /// metrics; timeouts reported in the outcome).
    pub fn execute_outcome(&self) -> ExecOutcome {
        self.execute_with(self.strategy.clone().as_ref())
    }

    /// Execute under a different strategy, same bound query.
    pub fn execute_with(&self, strategy: &dyn ExecutionStrategy) -> ExecOutcome {
        let ctx = exec_context_for(&self.db, self.settings);
        strategy.execute(&self.query, &ctx)
    }

    /// Execute under an explicit [`ExecContext`] (callers that need their
    /// own cancellation or budget wiring — the server threads a
    /// per-connection cancel token through here).
    pub fn execute_in(&self, ctx: &ExecContext) -> ExecOutcome {
        self.strategy.execute(&self.query, ctx)
    }

    /// A fresh context from the statement's snapshotted settings (work
    /// limit, deadline, threads); combine with
    /// [`ExecContext::with_cancel`] to add external cancellation.
    pub fn fresh_context(&self) -> ExecContext {
        exec_context_for(&self.db, self.settings)
    }

    /// Statistics handle (for strategies that want calibration context).
    pub fn stats(&self) -> &StatsCache {
        self.db.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_core::TreeCache;
    use skinner_storage::{DataType, Value};

    fn sample_db() -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            &[("id", DataType::Int), ("g", DataType::Int)],
            (0..40)
                .map(|i| vec![Value::Int(i), Value::Int(i % 4)])
                .collect(),
        )
        .unwrap();
        db.create_table(
            "u",
            &[("tid", DataType::Int)],
            (0..60).map(|i| vec![Value::Int(i % 40)]).collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn session_strategy_is_isolated_from_database_default() {
        let db = sample_db();
        let session = db.session();
        session.set_strategy(Strategy::Traditional(Default::default()));
        assert_eq!(session.strategy().name(), "Traditional");
        assert_eq!(db.default_strategy().name(), "Skinner-C");
        // A second session starts from the database default again.
        assert_eq!(db.session().strategy().name(), "Skinner-C");
    }

    #[test]
    fn prepared_statement_roundtrip() {
        let db = sample_db();
        let session = db.session();
        let prepared = session
            .prepare(
                "SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g ORDER BY t.g",
            )
            .unwrap();
        let first = prepared.execute().unwrap();
        let second = prepared.execute().unwrap();
        assert_eq!(first.ordered_rows(), second.ordered_rows());
        assert_eq!(first.num_rows(), 4);
        assert_eq!(prepared.query().num_tables(), 2);
        assert!(prepared.sql().starts_with("SELECT"));
    }

    #[test]
    fn session_work_limit_times_out() {
        let db = sample_db();
        let session = db.session();
        session.set_work_limit(5);
        let out = session
            .run_script("SELECT t.id FROM t, u WHERE t.id = u.tid")
            .unwrap();
        assert!(out.timed_out);
        assert!(matches!(
            session.query("SELECT t.id FROM t, u WHERE t.id = u.tid"),
            Err(DbError::Timeout)
        ));
    }

    #[test]
    fn session_deadline_cancels_cooperatively() {
        let db = sample_db();
        let session = db.session();
        session.set_deadline(Some(Duration::ZERO));
        let out = session
            .run_script("SELECT t.id FROM t, u WHERE t.id = u.tid")
            .unwrap();
        assert!(out.timed_out, "expired deadline must yield a timeout");
        session.set_deadline(None);
        assert!(session.query("SELECT t.id FROM t WHERE t.g = 0").is_ok());
    }

    #[test]
    fn session_threads_override_database_default() {
        let db = sample_db();
        db.set_default_threads(2);
        let session = db.session();
        assert_eq!(session.settings().threads, None);
        assert_eq!(session.exec_context().threads(), 2, "inherits db default");
        session.set_threads(Some(4));
        assert_eq!(session.exec_context().threads(), 4);
        session.use_strategy("parallel_skinner").unwrap();
        let rows = session
            .query("SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g ORDER BY t.g")
            .unwrap();
        assert_eq!(rows.num_rows(), 4);
        session.set_threads(None);
        assert_eq!(session.exec_context().threads(), 2, "back to db default");
    }

    #[test]
    fn set_option_plumbs_every_knob() {
        let db = sample_db();
        let session = db.session();
        session.set_option("strategy", "traditional").unwrap();
        assert_eq!(session.strategy().name(), "Traditional");
        session.set_option("THREADS", "4").unwrap();
        assert_eq!(session.settings().threads, Some(4));
        session.set_option("threads", "default").unwrap();
        assert_eq!(session.settings().threads, None);
        session.set_option("work_limit", "1234").unwrap();
        assert_eq!(session.settings().work_limit, 1234);
        session.set_option("work_limit", "none").unwrap();
        assert_eq!(session.settings().work_limit, u64::MAX);
        session.set_option("deadline_ms", "250").unwrap();
        assert_eq!(
            session.settings().deadline,
            Some(Duration::from_millis(250))
        );
        session.set_option("deadline_ms", "0").unwrap();
        assert_eq!(session.settings().deadline, None);
        session.set_option("learning_cache", "on").unwrap();
        assert_eq!(session.settings().learning_cache, Some(true));
        session.set_option("learning_cache", "OFF").unwrap();
        assert_eq!(session.settings().learning_cache, Some(false));
        session.set_option("learning_cache", "default").unwrap();
        assert_eq!(session.settings().learning_cache, None);
        assert!(matches!(
            session.set_option("learning_cache", "sometimes"),
            Err(DbError::BadOption(_))
        ));
        assert!(matches!(
            session.set_option("nope", "1"),
            Err(DbError::BadOption(_))
        ));
        assert!(matches!(
            session.set_option("threads", "lots"),
            Err(DbError::BadOption(_))
        ));
        assert!(matches!(
            session.set_option("strategy", "missing"),
            Err(DbError::UnknownStrategy(_))
        ));
    }

    #[test]
    fn learning_cache_knob_inherits_and_overrides() {
        let db = sample_db();
        let session = db.session();
        let sql = "SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g ORDER BY t.g";
        // Default: off everywhere — queries never touch the cache.
        let cold = session.query(sql).unwrap();
        assert_eq!(db.learning_cache_stats().published, 0);
        // Session opt-in publishes and then warm-starts, same rows.
        session.set_learning_cache(Some(true));
        let first = session.query(sql).unwrap();
        assert_eq!(db.learning_cache_stats().published, 1);
        let second = session.query(sql).unwrap();
        let stats = db.learning_cache_stats();
        assert_eq!(stats.hits, 1, "second run must hit the template");
        assert_eq!(first.canonical_rows(), cold.canonical_rows());
        assert_eq!(second.canonical_rows(), cold.canonical_rows());
        // Database default flips new sessions on; Some(false) opts out.
        db.set_learning_cache(true);
        let other = db.session();
        assert!(other.exec_context().learning_cache::<TreeCache>().is_some());
        other.set_learning_cache(Some(false));
        assert!(other.exec_context().learning_cache::<TreeCache>().is_none());
    }

    #[test]
    fn prepared_execute_in_honours_external_cancel() {
        let db = sample_db();
        let session = db.session();
        let prepared = session
            .prepare("SELECT t.id FROM t, u WHERE t.id = u.tid")
            .unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = prepared.execute_in(&prepared.fresh_context().with_cancel(cancel));
        assert!(out.timed_out, "pre-cancelled context must abort the run");
        let ok = prepared.execute_in(&prepared.fresh_context());
        assert!(!ok.timed_out);
        assert_eq!(ok.result.num_rows(), 60);
    }

    #[test]
    fn use_strategy_by_name() {
        let db = sample_db();
        let session = db.session();
        session.use_strategy("reference").unwrap();
        assert_eq!(session.strategy().name(), "Reference");
        assert!(matches!(
            session.use_strategy("missing"),
            Err(DbError::UnknownStrategy(_))
        ));
    }
}
