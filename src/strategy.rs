//! Built-in strategy construction.
//!
//! The [`Strategy`] enum is a convenience layer for the strategies that
//! ship with SkinnerDB: each variant pairs an engine with its config and
//! [`Strategy::build`] turns it into the `Arc<dyn ExecutionStrategy>` the
//! execution layer actually runs. The enum is *not* the extension point —
//! external engines implement [`ExecutionStrategy`] directly and register
//! with the [`StrategyRegistry`] (see [`builtin_registry`]).

use std::sync::Arc;

use skinner_adaptive::{EddyConfig, EddyStrategy, ReoptimizerConfig, ReoptimizerStrategy};
use skinner_core::{
    OrderArmsConfig, OrderArmsStrategy, ParallelSkinnerConfig, ParallelSkinnerStrategy,
    SkinnerCConfig, SkinnerCStrategy, SkinnerGConfig, SkinnerGStrategy, SkinnerHConfig,
    SkinnerHStrategy, SlicedHybridConfig, SlicedHybridStrategy,
};
use skinner_exec::{
    ExecutionStrategy, ReferenceStrategy, StrategyRegistry, TraditionalConfig, TraditionalStrategy,
};

/// Which built-in evaluation strategy executes a query.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Skinner-C: the customized engine (paper Section 4.5). The default.
    SkinnerC(SkinnerCConfig),
    /// Skinner-G on the generic engine (Section 4.3).
    SkinnerG(SkinnerGConfig),
    /// Skinner-H hybrid (Section 4.4).
    SkinnerH(SkinnerHConfig),
    /// `skinner_g`: whole join orders as UCT arms under a doubling episode
    /// cap on the generic engine (Section 4.3's loop, re-derived over the
    /// adaptive cap `parallel_skinner` prototypes).
    SkinnerGArms(OrderArmsConfig),
    /// `skinner_h`: the DP/greedy planner's order raced against learned
    /// execution in alternating regret-bounded slices (Section 4.4's
    /// schedule) with a one-way switchover.
    SkinnerHSliced(SlicedHybridConfig),
    /// Multi-threaded Skinner-C: episode batches split across worker
    /// threads, all learning through one shared concurrent UCT tree (the
    /// paper's parallel configuration, Section 6.1).
    ParallelSkinner(ParallelSkinnerConfig),
    /// Traditional statistics + DP optimizer + generic engine.
    Traditional(TraditionalConfig),
    /// Reinforcement-learning Eddy baseline.
    Eddy(EddyConfig),
    /// Sampling-based re-optimizer baseline.
    Reoptimizer(ReoptimizerConfig),
    /// Naive nested-loop reference executor (testing only; exponential).
    Reference,
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::SkinnerC(SkinnerCConfig::default())
    }
}

impl Strategy {
    /// Short display name (harness output; also the registry key).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::SkinnerC(_) => "Skinner-C",
            Strategy::SkinnerG(_) => "Skinner-G",
            Strategy::SkinnerH(_) => "Skinner-H",
            Strategy::SkinnerGArms(_) => "skinner_g",
            Strategy::SkinnerHSliced(_) => "skinner_h",
            Strategy::ParallelSkinner(_) => "parallel_skinner",
            Strategy::Traditional(_) => "Traditional",
            Strategy::Eddy(_) => "Eddy",
            Strategy::Reoptimizer(_) => "Re-optimizer",
            Strategy::Reference => "Reference",
        }
    }

    /// Materialize the executable strategy for this variant.
    pub fn build(&self) -> Arc<dyn ExecutionStrategy> {
        match self {
            Strategy::SkinnerC(cfg) => Arc::new(SkinnerCStrategy(cfg.clone())),
            Strategy::SkinnerG(cfg) => Arc::new(SkinnerGStrategy(cfg.clone())),
            Strategy::SkinnerH(cfg) => Arc::new(SkinnerHStrategy(cfg.clone())),
            Strategy::SkinnerGArms(cfg) => Arc::new(OrderArmsStrategy(cfg.clone())),
            Strategy::SkinnerHSliced(cfg) => Arc::new(SlicedHybridStrategy(cfg.clone())),
            Strategy::ParallelSkinner(cfg) => Arc::new(ParallelSkinnerStrategy(cfg.clone())),
            Strategy::Traditional(cfg) => Arc::new(TraditionalStrategy(cfg.clone())),
            Strategy::Eddy(cfg) => Arc::new(EddyStrategy(cfg.clone())),
            Strategy::Reoptimizer(cfg) => Arc::new(ReoptimizerStrategy(cfg.clone())),
            Strategy::Reference => Arc::new(ReferenceStrategy),
        }
    }

    /// All built-in variants with default configs, Reference included.
    pub fn all_builtin() -> Vec<Strategy> {
        vec![
            Strategy::SkinnerC(SkinnerCConfig::default()),
            Strategy::SkinnerG(SkinnerGConfig::default()),
            Strategy::SkinnerH(SkinnerHConfig::default()),
            Strategy::SkinnerGArms(OrderArmsConfig::default()),
            Strategy::SkinnerHSliced(SlicedHybridConfig::default()),
            Strategy::ParallelSkinner(ParallelSkinnerConfig::default()),
            Strategy::Traditional(TraditionalConfig::default()),
            Strategy::Eddy(EddyConfig::default()),
            Strategy::Reoptimizer(ReoptimizerConfig::default()),
            Strategy::Reference,
        ]
    }
}

/// A registry pre-populated with every built-in strategy under its default
/// configuration. `Database::new` starts from this; external strategies are
/// added via [`StrategyRegistry::register`].
pub fn builtin_registry() -> StrategyRegistry {
    let registry = StrategyRegistry::new();
    for strategy in Strategy::all_builtin() {
        registry.register(strategy.build());
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::default().name(), "Skinner-C");
        assert_eq!(Strategy::Reference.name(), "Reference");
    }

    #[test]
    fn built_strategies_report_the_enum_name() {
        for s in Strategy::all_builtin() {
            assert_eq!(s.name(), s.build().name());
        }
    }

    #[test]
    fn builtin_registry_is_complete() {
        let reg = builtin_registry();
        assert_eq!(reg.len(), 10);
        for s in Strategy::all_builtin() {
            assert!(reg.contains(s.name()), "{} missing", s.name());
        }
    }
}
