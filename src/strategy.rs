//! Unified evaluation-strategy dispatch.

use std::time::Duration;

use skinner_adaptive::{run_eddy, run_reoptimizer, EddyConfig, ReoptimizerConfig};
use skinner_core::{run_skinner_c, run_skinner_h, SkinnerCConfig, SkinnerG, SkinnerGConfig, SkinnerHConfig};
use skinner_exec::{run_traditional, QueryResult, TraditionalConfig};
use skinner_query::JoinQuery;
use skinner_stats::StatsCache;

/// Which evaluation strategy executes a query.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Skinner-C: the customized engine (paper Section 4.5). The default.
    SkinnerC(SkinnerCConfig),
    /// Skinner-G on the generic engine (Section 4.3).
    SkinnerG(SkinnerGConfig),
    /// Skinner-H hybrid (Section 4.4).
    SkinnerH(SkinnerHConfig),
    /// Traditional statistics + DP optimizer + generic engine.
    Traditional(TraditionalConfig),
    /// Reinforcement-learning Eddy baseline.
    Eddy(EddyConfig),
    /// Sampling-based re-optimizer baseline.
    Reoptimizer(ReoptimizerConfig),
    /// Naive nested-loop reference executor (testing only; exponential).
    Reference,
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::SkinnerC(SkinnerCConfig::default())
    }
}

impl Strategy {
    /// Short display name (harness output).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::SkinnerC(_) => "Skinner-C",
            Strategy::SkinnerG(_) => "Skinner-G",
            Strategy::SkinnerH(_) => "Skinner-H",
            Strategy::Traditional(_) => "Traditional",
            Strategy::Eddy(_) => "Eddy",
            Strategy::Reoptimizer(_) => "Re-optimizer",
            Strategy::Reference => "Reference",
        }
    }
}

/// Normalized outcome of running one statement under any strategy.
#[derive(Debug)]
pub struct RunOutcome {
    pub result: QueryResult,
    /// Deterministic work units (comparable across strategies).
    pub work_units: u64,
    pub wall: Duration,
    pub timed_out: bool,
}

/// Execute one bound query under `strategy`.
pub fn run_query(query: &JoinQuery, strategy: &Strategy, stats: &StatsCache) -> RunOutcome {
    match strategy {
        Strategy::SkinnerC(cfg) => {
            let o = run_skinner_c(query, cfg);
            RunOutcome {
                result: o.result,
                work_units: o.work_units,
                wall: o.wall,
                timed_out: o.timed_out,
            }
        }
        Strategy::SkinnerG(cfg) => {
            let o = SkinnerG::new(query, cfg.clone()).run_to_completion();
            RunOutcome {
                result: o.result,
                work_units: o.work_units,
                wall: o.wall,
                timed_out: o.timed_out,
            }
        }
        Strategy::SkinnerH(cfg) => {
            let o = run_skinner_h(query, stats, cfg);
            RunOutcome {
                result: o.result,
                work_units: o.work_units,
                wall: o.wall,
                timed_out: o.timed_out,
            }
        }
        Strategy::Traditional(cfg) => {
            let o = run_traditional(query, stats, cfg);
            RunOutcome {
                result: o.result,
                work_units: o.work_units,
                wall: o.wall,
                timed_out: o.timed_out,
            }
        }
        Strategy::Eddy(cfg) => {
            let o = run_eddy(query, cfg);
            RunOutcome {
                result: o.result,
                work_units: o.work_units,
                wall: o.wall,
                timed_out: o.timed_out,
            }
        }
        Strategy::Reoptimizer(cfg) => {
            let o = run_reoptimizer(query, stats, cfg);
            RunOutcome {
                result: o.result,
                work_units: o.work_units,
                wall: o.wall,
                timed_out: o.timed_out,
            }
        }
        Strategy::Reference => {
            let start = std::time::Instant::now();
            let result = skinner_exec::reference::run_reference(query);
            RunOutcome {
                result,
                work_units: 0,
                wall: start.elapsed(),
                timed_out: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::default().name(), "Skinner-C");
        assert_eq!(Strategy::Reference.name(), "Reference");
    }
}
