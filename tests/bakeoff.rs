//! Registry-wide optimizer-vs-RL bakeoff.
//!
//! Two claims, checked across four workload families (handmade joins,
//! JOB-like, torture generators, decomposed TPC-H):
//!
//! 1. **Equivalence** — every strategy in the registry returns bit-identical
//!    canonical rows on every query. Comparing each against the reference
//!    executor makes the claim pairwise by transitivity, and because the
//!    suite iterates `db.strategies().names()` rather than an enum, any
//!    strategy registered later is automatically held to the same bar.
//! 2. **Regret** — `skinner_h` (optimizer plan raced against learned
//!    execution in doubling slices) does at most a constant multiple of the
//!    work of the *better* of its two contenders on each query. This is the
//!    quantitative hybrid claim (paper Theorems 5.7/5.8), not just
//!    correctness.

use skinnerdb::skinner_workloads::job_like::{generate as job, JobConfig};
use skinnerdb::skinner_workloads::torture::{correlation_torture, trivial, udf_torture, Shape};
use skinnerdb::skinner_workloads::tpch::{generate as tpch, TpchConfig};
use skinnerdb::{DataType, Database, Strategy, Value};

/// Regret envelope for the sliced hybrid: each doubling slice schedule
/// over-grants the winning side by at most 2×, the loser is granted at most
/// as much as the winner plus one slice, and both sides repeat
/// preprocessing. 2 (doubling) × 2 (two sides) leaves 4; we double once
/// more for discretization at test scale.
const HYBRID_REGRET_CONSTANT: f64 = 8.0;
/// Additive slack covering duplicated preprocessing and the final
/// postprocess pass, which are not proportional to join work.
const HYBRID_REGRET_SLACK: u64 = 20_000;

/// One query's bakeoff: all registered strategies agree with the reference,
/// and the hybrid's work is within the regret envelope of its best
/// contender.
fn bakeoff(db: &Database, name: &str, script: &str) {
    let expected = db
        .run_script(script, &Strategy::Reference)
        .unwrap_or_else(|e| panic!("{name}: reference failed: {e}"))
        .result
        .canonical_rows();
    for strategy_name in db.strategies().names() {
        if strategy_name == "Reference" {
            continue;
        }
        let strategy = db.strategies().get(&strategy_name).unwrap();
        let out = db
            .run_script_with(script, strategy.as_ref(), &db.exec_context())
            .unwrap_or_else(|e| panic!("{strategy_name} failed on {name}: {e}"));
        assert!(!out.timed_out, "{strategy_name} timed out on {name}");
        assert_eq!(
            out.result.canonical_rows(),
            expected,
            "{strategy_name} disagrees on {name}"
        );
    }

    let work = |s: &Strategy| {
        let out = db.run_script(script, s).unwrap();
        assert!(!out.timed_out, "{}: {name} timed out", s.name());
        out.work_units
    };
    let optimizer = work(&Strategy::Traditional(Default::default()));
    let learned = work(&Strategy::SkinnerGArms(Default::default()));
    let hybrid = work(&Strategy::SkinnerHSliced(Default::default()));
    let best = optimizer.min(learned).max(1);
    let bound = (best as f64 * HYBRID_REGRET_CONSTANT) as u64 + HYBRID_REGRET_SLACK;
    let ratio = hybrid as f64 / best as f64;
    assert!(
        hybrid <= bound,
        "{name}: hybrid work {hybrid} exceeds {HYBRID_REGRET_CONSTANT}×min(optimizer {optimizer}, \
         learned {learned}) + {HYBRID_REGRET_SLACK} (measured ratio {ratio:.2})",
    );
}

/// Handmade star-ish join with skew, a selective filter and a string
/// dimension — small enough that all ten strategies finish in milliseconds.
fn handmade_db() -> Database {
    let db = Database::new();
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
        ],
        (0..300)
            .map(|i| vec![Value::Int(i), Value::Int(i % 15), Value::Int(i % 9)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("grp", DataType::Int)],
        (0..15)
            .map(|i| vec![Value::Int(i), Value::Int(i % 4)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("w", DataType::Int)],
        (0..9)
            .map(|i| vec![Value::Int(i), Value::Int(i * 5)])
            .collect(),
    )
    .unwrap();
    db
}

#[test]
fn handmade_joins() {
    let db = handmade_db();
    bakeoff(
        &db,
        "handmade-3way",
        "SELECT f.id, a.grp, b.w FROM fact f, dim1 a, dim2 b \
         WHERE f.d1 = a.id AND f.d2 = b.id AND a.grp < 3",
    );
    bakeoff(
        &db,
        "handmade-agg",
        "SELECT a.grp, COUNT(*) c, SUM(b.w) s FROM fact f, dim1 a, dim2 b \
         WHERE f.d1 = a.id AND f.d2 = b.id GROUP BY a.grp ORDER BY a.grp",
    );
}

#[test]
fn job_like_queries() {
    let w = job(&JobConfig {
        scale: 0.05,
        seed: 0xBAFF,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let mut queries = w.queries.clone();
    queries.sort_by_key(|q| q.num_tables);
    for q in queries.iter().take(2) {
        bakeoff(&db, &q.name, &q.script);
    }
}

#[test]
fn torture_workloads() {
    for w in [
        correlation_torture(4, 50, 1),
        udf_torture(Shape::Chain, 5, 40, 2),
        trivial(4, 30),
    ] {
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let q = &w.queries[0];
        bakeoff(&db, &q.name, &q.script);
    }
}

/// The switchover earning its keep: on UDF torture the planner's
/// cardinality estimates are blind to the selective UDFs, so the
/// traditional plan is catastrophically wrong. The hybrid must detect that
/// the learned side's projected cost undercuts the optimizer side's sunk
/// cost, switch over permanently, and end up cheaper than the pure
/// traditional run.
#[test]
fn hybrid_switches_away_from_a_misestimated_plan() {
    let w = udf_torture(Shape::Chain, 5, 40, 2);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let script = &w.queries[0].script;
    let trad = db
        .run_script(script, &Strategy::Traditional(Default::default()))
        .unwrap();
    let hybrid = db
        .run_script(script, &Strategy::SkinnerHSliced(Default::default()))
        .unwrap();
    assert!(!trad.timed_out && !hybrid.timed_out);
    assert_eq!(hybrid.result.canonical_rows(), trad.result.canonical_rows());
    let switched = hybrid.metrics.counter("switched_at_episode").unwrap();
    assert!(
        switched > 0,
        "switchover never fired on a misestimated plan"
    );
    assert!(
        hybrid.work_units < trad.work_units,
        "hybrid {} did not beat the misestimated plan {}",
        hybrid.work_units,
        trad.work_units
    );
}

#[test]
fn tpch_decomposed_queries() {
    let w = tpch(&TpchConfig {
        scale: 0.002,
        seed: 77,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    // The decomposed scripts run nested queries through temp tables; the
    // two smallest keep ten-strategy coverage fast on a single core.
    let mut queries = w.queries.clone();
    queries.sort_by_key(|q| q.num_tables);
    for q in queries.iter().take(2) {
        bakeoff(&db, &q.name, &q.script);
    }
}
