//! Durability and equivalence tests for the persistent storage subsystem.
//!
//! Two bars, both driven through the public `Database` facade:
//!
//! * **Registry-wide equivalence** — every registered strategy must return
//!   bit-identical rows on a disk-backed (zone-mapped, segment-decoded)
//!   table and on the equivalent in-memory table, at 1/2/4/8 worker
//!   threads. Zone-map pruning and range-split parallel scans are pure
//!   performance machinery; any visible difference is a bug.
//! * **Crash recovery** — a process that dies mid-write (a `.seg.tmp` never
//!   renamed) must leave the directory openable with exactly the committed
//!   tables, their segment bytes untouched; a committed segment that rots
//!   on disk must be *detected*, never silently served.

use skinnerdb::{DataType, Database, DbError, Value};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("skinner_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A dataset wide enough to exercise every column type and selective
/// enough that zone maps actually prune pages (ids are sorted, so range
/// predicates on `id` skip most of the table).
fn create_tables(db: &Database) {
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ],
        (0..3000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Float((i as f64) * 0.25),
                    Value::from(if i % 3 == 0 { "alpha" } else { "beta" }),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim",
        &[("id", DataType::Int), ("label", DataType::Str)],
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(format!("label-{}", i % 4).as_str()),
                ]
            })
            .collect(),
    )
    .unwrap();
}

const QUERIES: &[&str] = &[
    // Selective range on the sorted column: most pages zone-pruned.
    "SELECT f.id, f.v FROM fact f WHERE f.id < 40",
    // Join with per-table unary predicates on both sides.
    "SELECT f.id, d.label FROM fact f, dim d \
     WHERE f.d1 = d.id AND f.id BETWEEN 100 AND 160 AND d.label = 'label-1'",
    // String equality (dictionary codes) + float range + aggregation.
    "SELECT d.label, COUNT(*) c, SUM(f.v) s FROM fact f, dim d \
     WHERE f.d1 = d.id AND f.tag = 'alpha' AND f.v < 100.0 \
     GROUP BY d.label ORDER BY d.label",
    // Unprunable disjunction mixing columns.
    "SELECT f.id FROM fact f WHERE f.id < 25 OR f.tag = 'alpha' AND f.id > 2950",
];

#[test]
fn disk_backed_tables_match_memory_for_every_strategy_and_thread_count() {
    let dir = unique_dir("equiv");
    let mem = Database::new();
    create_tables(&mem);

    let disk = Database::open(&dir).unwrap();
    create_tables(&disk);
    disk.persist_table("fact").unwrap();
    disk.persist_table("dim").unwrap();
    assert!(disk.catalog().get("fact").unwrap().zones().is_some());

    for sql in QUERIES {
        let expected = mem
            .run_script(sql, &skinnerdb::Strategy::Reference)
            .unwrap()
            .result
            .canonical_rows();
        for name in disk.strategies().names() {
            let strategy = disk.strategies().get(&name).unwrap();
            for threads in [1usize, 2, 4, 8] {
                disk.set_default_threads(threads);
                let out = disk
                    .run_script_with(sql, strategy.as_ref(), &disk.exec_context())
                    .unwrap_or_else(|e| panic!("{name} failed on {sql}: {e}"));
                assert!(!out.timed_out, "{name} timed out on {sql} ({threads} thr)");
                assert_eq!(
                    out.result.canonical_rows(),
                    expected,
                    "{name} disagrees on disk-backed {sql} at {threads} threads"
                );
            }
        }
    }
    // The zone-mapped scan actually skipped pages on the selective query.
    let out = disk
        .run_script(QUERIES[0], &skinnerdb::Strategy::default())
        .unwrap();
    assert!(
        out.metrics.pages_skipped > 0,
        "selective scan must skip zone-mapped pages"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_directory_answers_identically() {
    let dir = unique_dir("reopen");
    let sql = QUERIES[2];
    let expected;
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db);
        db.persist_table("fact").unwrap();
        db.persist_table("dim").unwrap();
        expected = db.query(sql).unwrap().canonical_rows();
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.query(sql).unwrap().canonical_rows(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_write_recovers_committed_tables_bit_identically() {
    let dir = unique_dir("crash");
    let expected;
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db);
        db.persist_table("fact").unwrap();
        expected = db.query(QUERIES[0]).unwrap().canonical_rows();
    }
    // Simulate a crash mid-way through persisting another table: a temp
    // segment exists but was never renamed into place, and the manifest
    // never learned about it.
    std::fs::write(dir.join("dim.999.seg.tmp"), b"partial garbage").unwrap();
    // Also an unreferenced `.seg` (rename completed, manifest commit did
    // not): must be treated as uncommitted and swept.
    std::fs::write(dir.join("ghost.998.seg"), b"never committed").unwrap();

    let committed: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("seg"))
        .filter(|p| !p.to_string_lossy().contains("ghost"))
        .collect();
    assert_eq!(committed.len(), 1);
    let bytes_before = std::fs::read(&committed[0]).unwrap();

    let db = Database::open(&dir).unwrap();
    assert!(db.catalog().get("fact").is_some());
    assert!(
        db.catalog().get("dim").is_none(),
        "uncommitted table leaked"
    );
    assert_eq!(db.query(QUERIES[0]).unwrap().canonical_rows(), expected);
    // The committed segment's bytes survived recovery untouched, and the
    // crash debris is gone.
    assert_eq!(std::fs::read(&committed[0]).unwrap(), bytes_before);
    assert!(!dir.join("dim.999.seg.tmp").exists());
    assert!(!dir.join("ghost.998.seg").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_committed_segment_is_detected_not_served() {
    let dir = unique_dir("corrupt");
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db);
        db.persist_table("fact").unwrap();
    }
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().and_then(|x| x.to_str()) == Some("seg"))
        .unwrap();
    // Flip one byte in the middle of the committed segment.
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&seg, bytes).unwrap();

    match Database::open(&dir) {
        Err(DbError::Storage(_)) => {}
        Err(e) => panic!("expected a storage error at open, got {e}"),
        Ok(_) => panic!("corrupt segment must fail checksum at open"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
