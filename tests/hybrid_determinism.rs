//! Determinism and cancellation guarantees of the optimizer-vs-RL pair
//! (`skinner_g`, `skinner_h`), mirroring `parallel_determinism.rs`.
//!
//! Both strategies are driven purely by seeded randomness and work-unit
//! accounting — never wall clock — so repeated runs must agree bit for bit,
//! including their learning metrics (`switched_at_episode` in particular:
//! the one-way switchover must happen at the same episode every time). The
//! thread knob is a no-op for them, so 1/2/4/8 threads must also be
//! bit-identical. A cancellation or deadline fired mid-slice must still
//! produce a well-formed (timed-out, partial, fully accounted) outcome.

use std::time::{Duration, Instant};

use skinnerdb::skinner_core::{OrderArmsConfig, SlicedHybridConfig};
use skinnerdb::skinner_workloads::torture::correlation_torture;
use skinnerdb::{CancelToken, DataType, Database, ExecOutcome, Strategy, Value};

fn skinner_g() -> Strategy {
    Strategy::SkinnerGArms(OrderArmsConfig::default())
}

fn skinner_h() -> Strategy {
    // Small slices → several alternation rounds even on test-sized data.
    Strategy::SkinnerHSliced(SlicedHybridConfig {
        slice_units: 500,
        ..Default::default()
    })
}

/// Everything that must be reproducible about a run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    rows: Vec<String>,
    work_units: u64,
    order: Vec<usize>,
    counters: Vec<(String, Option<u64>)>,
}

fn fingerprint(out: &ExecOutcome, counters: &[&str]) -> Fingerprint {
    Fingerprint {
        rows: out.result.canonical_rows(),
        work_units: out.work_units,
        order: out.metrics.order.clone(),
        counters: counters
            .iter()
            .map(|&c| (c.to_string(), out.metrics.counter(c)))
            .collect(),
    }
}

fn handmade_db() -> Database {
    let db = Database::new();
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
        ],
        (0..400)
            .map(|i| vec![Value::Int(i), Value::Int(i % 20), Value::Int(i % 11)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("grp", DataType::Int)],
        (0..20)
            .map(|i| vec![Value::Int(i), Value::Int(i % 4)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("w", DataType::Int)],
        (0..11)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
            .collect(),
    )
    .unwrap();
    db
}

const HANDMADE_SQL: &str = "SELECT f.id, a.grp, b.w FROM fact f, dim1 a, dim2 b \
     WHERE f.d1 = a.id AND f.d2 = b.id AND a.grp < 3";

/// Run `strategy` twice per thread count and demand one identical
/// fingerprint across all of it.
fn assert_reproducible(db: &Database, sql: &str, strategy: &Strategy, counters: &[&str]) {
    let expected = db
        .run_script(sql, &Strategy::Reference)
        .unwrap()
        .result
        .canonical_rows();
    let built = strategy.build();
    let mut baseline: Option<Fingerprint> = None;
    for threads in [1usize, 2, 4, 8] {
        for rep in 0..2 {
            let ctx = db.exec_context().with_threads(threads);
            let out = db.run_script_with(sql, built.as_ref(), &ctx).unwrap();
            assert!(!out.timed_out, "{threads} threads rep {rep}");
            assert_eq!(
                out.result.canonical_rows(),
                expected,
                "{threads} threads rep {rep} vs reference"
            );
            let fp = fingerprint(&out, counters);
            match &baseline {
                None => baseline = Some(fp),
                Some(b) => assert_eq!(
                    &fp,
                    b,
                    "{} diverged at {threads} threads rep {rep}",
                    strategy.name()
                ),
            }
        }
    }
}

#[test]
fn skinner_g_is_bit_identical_across_runs_and_thread_counts() {
    let db = handmade_db();
    assert_reproducible(
        &db,
        HANDMADE_SQL,
        &skinner_g(),
        &["episode_cap_units", "abandoned_episodes"],
    );
}

#[test]
fn skinner_h_is_bit_identical_across_runs_and_thread_counts() {
    let db = handmade_db();
    assert_reproducible(
        &db,
        HANDMADE_SQL,
        &skinner_h(),
        &[
            "optimizer_slices",
            "learned_slices",
            "switched_at_episode",
            "plan_cost_est",
        ],
    );
}

#[test]
fn both_are_bit_identical_on_torture_workload() {
    let w = correlation_torture(4, 60, 2);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let script = w.queries[0].script.clone();
    assert_reproducible(&db, &script, &skinner_g(), &["abandoned_episodes"]);
    assert_reproducible(&db, &script, &skinner_h(), &["switched_at_episode"]);
}

/// A join that cannot finish quickly: every pair passes through a generic
/// predicate, leaving plenty of mid-slice work for the cancellation.
fn slow_db() -> (Database, &'static str) {
    let db = Database::new();
    for name in ["big1", "big2"] {
        db.create_table(
            name,
            &[("x", DataType::Int)],
            (0..3_000).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
    }
    (
        db,
        "SELECT COUNT(*) n FROM big1 a, big2 b WHERE a.x + b.x > 100000",
    )
}

fn assert_well_formed_partial(out: &ExecOutcome, counters: &[&str]) {
    assert!(out.timed_out, "interruption must surface as a timeout");
    assert_eq!(out.result.columns, vec!["n".to_string()]);
    assert_eq!(out.result.num_rows(), 0, "destructive timeout semantics");
    assert!(out.work_units > 0, "partial work is accounted");
    for c in counters {
        assert!(
            out.metrics.counter(c).is_some(),
            "counter {c} missing from partial outcome"
        );
    }
}

#[test]
fn skinner_h_cancel_mid_slice_leaves_well_formed_partial_outcome() {
    let (db, sql) = slow_db();
    let query = db.bind(sql).unwrap();
    let cancel = CancelToken::new();
    let ctx = db.exec_context().with_cancel(cancel.clone());
    let trigger = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            cancel.cancel();
        })
    };
    let strategy = skinner_h().build();
    let started = Instant::now();
    let out = strategy.execute(&query, &ctx);
    let elapsed = started.elapsed();
    trigger.join().unwrap();
    assert!(
        elapsed < Duration::from_secs(20),
        "hybrid kept running: {elapsed:?}"
    );
    assert_well_formed_partial(
        &out,
        &["optimizer_slices", "learned_slices", "switched_at_episode"],
    );
    // Every granted slice was settled back against the session budget.
    assert_eq!(ctx.budget().used(), out.work_units);
}

#[test]
fn skinner_g_cancel_mid_episode_leaves_well_formed_partial_outcome() {
    let (db, sql) = slow_db();
    let query = db.bind(sql).unwrap();
    let cancel = CancelToken::new();
    let ctx = db.exec_context().with_cancel(cancel.clone());
    let trigger = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            cancel.cancel();
        })
    };
    let strategy = skinner_g().build();
    let started = Instant::now();
    let out = strategy.execute(&query, &ctx);
    let elapsed = started.elapsed();
    trigger.join().unwrap();
    assert!(
        elapsed < Duration::from_secs(20),
        "episode loop kept running: {elapsed:?}"
    );
    assert_well_formed_partial(&out, &["episode_cap_units", "abandoned_episodes"]);
    assert_eq!(ctx.budget().used(), out.work_units);
}

#[test]
fn session_deadline_stops_both_strategies_promptly() {
    for name in ["skinner_g", "skinner_h"] {
        let (db, sql) = slow_db();
        let session = db.session();
        session.use_strategy(name).unwrap();
        session.set_deadline(Some(Duration::from_millis(30)));
        let started = Instant::now();
        let out = session.run_script(sql).unwrap();
        let elapsed = started.elapsed();
        assert!(out.timed_out, "{name}: deadline must surface as a timeout");
        assert!(
            elapsed < Duration::from_secs(20),
            "{name} kept running: {elapsed:?}"
        );
        assert_eq!(out.result.columns, vec!["n".to_string()]);
        assert_eq!(out.result.num_rows(), 0);
        assert!(out.work_units > 0);
    }
}
