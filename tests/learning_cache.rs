//! Cross-query learning cache correctness.
//!
//! The bar is absolute: the `learning_cache` knob may change *how fast*
//! learned strategies converge on a join order, never *what* they return.
//! This suite pins that equivalence across every registered strategy and
//! every thread count, plus the cache-specific behaviours: LRU bounding,
//! uid-based invalidation across drop/recreate (the PR 2 `StatsCache`
//! lesson), and concurrent publish/lookup consistency under proptest
//! hammering.

use std::sync::Arc;

use proptest::prelude::*;

use skinnerdb::skinner_core::{ParallelSkinnerConfig, QuerySig, RunFeedback, TreeCacheConfig};
use skinnerdb::skinner_query::TemplateFeatures;
use skinnerdb::skinner_uct::{PriorEntry, TreePrior};
use skinnerdb::{DataType, Database, Strategy, TreeCache, Value};

fn test_db() -> Database {
    let db = Database::new();
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("v", DataType::Float),
        ],
        (0..150)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Int(i % 6),
                    Value::Float(i as f64 * 0.5),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("label", DataType::Str)],
        (0..10)
            .map(|i| vec![Value::Int(i), Value::from(format!("l{}", i % 3).as_str())])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("w", DataType::Int)],
        (0..6)
            .map(|i| vec![Value::Int(i), Value::Int(i * 7)])
            .collect(),
    )
    .unwrap();
    db
}

const QUERIES: [&str; 4] = [
    "SELECT f.id FROM fact f, dim1 d WHERE f.d1 = d.id AND d.label = 'l1'",
    "SELECT d.label, COUNT(*) c FROM fact f, dim1 d, dim2 e \
     WHERE f.d1 = d.id AND f.d2 = e.id AND e.w > 6 GROUP BY d.label ORDER BY d.label",
    "SELECT f.v FROM fact f, dim2 e WHERE f.d2 = e.id AND f.id < 40 ORDER BY f.v",
    "SELECT DISTINCT d.label FROM fact f, dim1 d WHERE f.d1 = d.id AND f.id + d.id > 30",
];

/// Every registered strategy returns identical rows with the cache on and
/// off — including the second (warm-started) execution of each template.
#[test]
fn registry_equivalence_cache_on_vs_off() {
    let db_off = test_db();
    let db_on = test_db();
    db_on.set_learning_cache(true);
    for sql in QUERIES {
        for name in db_off.strategies().names() {
            let strategy_off = db_off.strategies().get(&name).unwrap();
            let strategy_on = db_on.strategies().get(&name).unwrap();
            let cold = db_off
                .run_script_with(sql, strategy_off.as_ref(), &db_off.exec_context())
                .unwrap_or_else(|e| panic!("{name} failed on {sql}: {e}"));
            assert!(!cold.timed_out, "{name} timed out on {sql}");
            // Two runs on the cached side: the first publishes, the second
            // consumes the warm start.
            let first = db_on
                .run_script_with(sql, strategy_on.as_ref(), &db_on.exec_context())
                .unwrap();
            let second = db_on
                .run_script_with(sql, strategy_on.as_ref(), &db_on.exec_context())
                .unwrap();
            let want = cold.result.canonical_rows();
            assert_eq!(first.result.canonical_rows(), want, "{name} on {sql}");
            assert_eq!(
                second.result.canonical_rows(),
                want,
                "{name} warm run on {sql}"
            );
        }
    }
    let stats = db_on.learning_cache_stats();
    assert!(stats.published > 0, "learned strategies must publish");
    assert!(stats.hits > 0, "second runs must consume priors");
    assert_eq!(
        db_off.learning_cache_stats().published,
        0,
        "cache-off database must never be touched"
    );
}

/// Bit-identical results cache-on vs cache-off at 1, 2, 4 and 8 worker
/// threads (both tree variants: single-root at 1 thread, sharded above).
/// Queries whose ORDER BY totally orders the output compare raw row
/// vectors byte-for-byte; the rest compare canonical (sorted) rows, since
/// unordered row order is execution-order-dependent in every Skinner
/// engine — with or without the cache.
#[test]
fn rows_bit_identical_at_every_thread_count() {
    // Parallel to QUERIES: does ORDER BY make the row order total?
    const TOTAL_ORDER: [bool; 4] = [false, true, true, false];
    let db_off = test_db();
    let db_on = test_db();
    db_on.set_learning_cache(true);
    for threads in [1usize, 2, 4, 8] {
        let strategy = Strategy::ParallelSkinner(ParallelSkinnerConfig {
            threads,
            batch_tuples: 16,
            min_chunk_tuples: 2,
            ..Default::default()
        });
        for (sql, total) in QUERIES.iter().zip(TOTAL_ORDER) {
            let off = db_off.run_script(sql, &strategy).unwrap();
            db_on.run_script(sql, &strategy).unwrap();
            let warm = db_on.run_script(sql, &strategy).unwrap();
            if total {
                assert_eq!(
                    off.result.rows, warm.result.rows,
                    "ordered rows diverged at {threads} threads on {sql}"
                );
            } else {
                assert_eq!(
                    off.result.canonical_rows(),
                    warm.result.canonical_rows(),
                    "row sets diverged at {threads} threads on {sql}"
                );
            }
        }
    }
    assert!(db_on.learning_cache_stats().hits > 0);
}

/// Dropping and recreating a table under the same name must invalidate
/// its templates: the uid check refuses the stale prior, and the query
/// over the new data is correct.
#[test]
fn drop_and_recreate_invalidates_the_template() {
    let db = test_db();
    db.set_learning_cache(true);
    let sql = "SELECT f.id FROM fact f, tmp t WHERE f.d1 = t.x";
    db.create_table(
        "tmp",
        &[("x", DataType::Int)],
        (0..5).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    let first = db.query(sql).unwrap();
    assert_eq!(db.learning_cache_stats().published, 1);
    // Same name, different contents (and a fresh uid).
    db.catalog().drop_table("tmp");
    db.create_table(
        "tmp",
        &[("x", DataType::Int)],
        (0..2).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    let second = db.query(sql).unwrap();
    let stats = db.learning_cache_stats();
    assert!(
        stats.invalidations >= 1,
        "stale template must be invalidated, not served: {stats:?}"
    );
    assert!(second.num_rows() < first.num_rows(), "new data, new rows");
    // The re-learned template is cached again and hits on the next run.
    let third = db.query(sql).unwrap();
    assert_eq!(third.canonical_rows(), second.canonical_rows());
    assert!(db.learning_cache_stats().hits >= 1);
}

/// Temp-table churn inside scripts (the TPC-H decomposition pattern) must
/// never serve a prior learned over a dropped temp table's data.
#[test]
fn temp_table_scripts_stay_correct_across_churn() {
    let db = test_db();
    db.set_learning_cache(true);
    let script_a = "CREATE TEMP TABLE lc_t AS SELECT f.d1 x FROM fact f WHERE f.id < 60; \
                    SELECT d.id FROM lc_t t, dim1 d WHERE t.x = d.id ORDER BY d.id; \
                    DROP TABLE lc_t;";
    let script_b = "CREATE TEMP TABLE lc_t AS SELECT f.d1 x FROM fact f WHERE f.id < 20; \
                    SELECT d.id FROM lc_t t, dim1 d WHERE t.x = d.id ORDER BY d.id; \
                    DROP TABLE lc_t;";
    let a1 = db.query(script_a).unwrap();
    let b1 = db.query(script_b).unwrap();
    // Run both again: each rebind sees a fresh temp-table uid, so priors
    // from the other script's incarnation can never leak in.
    let a2 = db.query(script_a).unwrap();
    let b2 = db.query(script_b).unwrap();
    assert_eq!(a1.ordered_rows(), a2.ordered_rows());
    assert_eq!(b1.ordered_rows(), b2.ordered_rows());
}

/// LRU bound holds end-to-end: a tiny capacity evicts the oldest template
/// while the hot one keeps hitting.
#[test]
fn lru_eviction_end_to_end_with_tiny_capacity() {
    let db = test_db();
    db.set_learning_cache(true);
    db.set_learning_cache_config(TreeCacheConfig {
        capacity: 1,
        ..Default::default()
    });
    db.query(QUERIES[0]).unwrap();
    db.query(QUERIES[2]).unwrap(); // evicts QUERIES[0]'s template
    let stats = db.learning_cache_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.evictions, 1);
    db.query(QUERIES[0]).unwrap(); // cold again after eviction
    let stats = db.learning_cache_stats();
    assert_eq!(stats.hits, 0);
    // Hammering one template hits every time and evicts nothing more.
    db.query(QUERIES[0]).unwrap();
    db.query(QUERIES[0]).unwrap();
    assert!(db.learning_cache_stats().hits >= 2);
}

/// A synthetic two-table signature for direct cache hammering; `k` picks
/// the template and (stable) content fingerprints.
fn prop_sig(k: u64) -> QuerySig {
    QuerySig {
        key: format!("template-{k}"),
        uids: vec![k, k + 1],
        fingerprints: vec![k * 1000 + 1, k * 1000 + 2],
        buckets: vec![4, 8],
        features: TemplateFeatures {
            tables: vec![format!("ta{k}"), format!("tb{k}")],
            unary_counts: vec![0, 0],
            n_equi: 1,
            n_theta: 0,
            n_select: 1,
            has_group: false,
            has_order: false,
            distinct: false,
            limited: false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// N threads hammer one cache with interleaved publish/lookup over a
    /// shared key space: every lookup must return a structurally valid
    /// prior, counters must balance exactly, and capacity must hold.
    #[test]
    fn concurrent_publish_lookup_is_consistent(
        threads in 2usize..6,
        per_thread in 20usize..120,
        capacity in 1usize..12,
        keys in 2u64..16,
    ) {
        // Generalization off: with only exact serves, `hits + misses`
        // must balance the lookup count exactly.
        let cache = Arc::new(TreeCache::new(TreeCacheConfig {
            capacity,
            generalize: false,
            ..Default::default()
        }));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for n in 0..per_thread {
                        let k = ((t * per_thread + n) as u64) % keys;
                        let sig = prop_sig(k);
                        if let Some(w) = cache.lookup(&sig) {
                            // Served priors are always complete and typed
                            // for this template's table count.
                            assert_eq!(w.prior.num_tables, 2);
                            assert_eq!(w.prior.root_visits(), k + 1);
                            assert!(!w.generalized);
                        }
                        cache.publish(
                            &sig,
                            TreePrior {
                                num_tables: 2,
                                entries: vec![PriorEntry {
                                    prefix: vec![],
                                    visits: k + 1,
                                    reward_sum: 0.5 * (k + 1) as f64,
                                }],
                            },
                            RunFeedback::cold(5),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * per_thread) as u64;
        let stats = cache.stats();
        prop_assert_eq!(stats.published, total);
        prop_assert_eq!(stats.hits + stats.misses, total);
        prop_assert_eq!(stats.invalidations, 0);
        prop_assert!(cache.len() <= capacity);
        prop_assert!(!cache.is_empty());
    }
}
