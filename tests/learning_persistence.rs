//! Durable cross-query learning, end to end over [`Database`].
//!
//! A database opened on a data directory persists its learned tree priors
//! there and reloads them on the next open — so the first execution of a
//! known template after a "restart" (new `Database` on the same dir)
//! warm-starts instead of learning from scratch. Identity is the *content*
//! of the tables (schema + rows), not process-local uids: re-created
//! tables with identical content keep their priors, different content or
//! an intervening `DROP TABLE` refuses them.

use skinnerdb::{DataType, Database, Value};

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "skinner_learnpersist_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same logical tables any "process" of this test database creates.
/// Content-identical across calls, so fingerprints match across restarts.
fn create_tables(db: &Database, fact_rows: i64) {
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
        ],
        (0..fact_rows)
            .map(|i| vec![Value::Int(i), Value::Int(i % 8), Value::Int(i % 5)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("label", DataType::Str)],
        (0..8)
            .map(|i| vec![Value::Int(i), Value::from(format!("l{}", i % 3).as_str())])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("w", DataType::Int)],
        (0..5)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
            .collect(),
    )
    .unwrap();
}

const SQL: &str = "SELECT f.id FROM fact f, dim1 a, dim2 b \
                   WHERE f.d1 = a.id AND f.d2 = b.id AND a.label = 'l1'";

#[test]
fn priors_survive_a_restart_and_results_stay_identical() {
    let dir = fresh_dir("restart");

    // Process 1: learn the template, flush on "shutdown".
    let rows_before;
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120);
        db.set_learning_cache(true);
        let cold = db.query(SQL).unwrap();
        rows_before = cold.canonical_rows();
        db.query(SQL).unwrap();
        let stats = db.learning_cache_stats();
        assert!(stats.published >= 1, "template must be learned: {stats:?}");
        assert!(stats.hits >= 1, "second run must warm-start: {stats:?}");
        assert!(
            db.flush_learning_cache(),
            "data dir attached, flush must write"
        );
    }

    // Process 2: same data dir, content-identical tables, zero shared
    // process state. The very FIRST run of the template must hit.
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120);
        db.set_learning_cache(true);
        let loaded = db.learning_cache_stats();
        assert!(loaded.loaded >= 1, "persisted priors must load: {loaded:?}");
        let warm = db.query(SQL).unwrap();
        let stats = db.learning_cache_stats();
        assert!(
            stats.hits >= 1,
            "first post-restart run must warm-start from disk: {stats:?}"
        );
        assert_eq!(
            warm.canonical_rows(),
            rows_before,
            "warm-started results must be identical to the cold run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: `DROP TABLE` must tombstone the on-disk prior,
/// not just purge memory — a recreate under the same name in a LATER
/// process must start cold even with identical content.
#[test]
fn drop_tombstones_the_persisted_prior_across_restart() {
    let dir = fresh_dir("tombstone");
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120);
        db.set_learning_cache(true);
        db.query(SQL).unwrap();
        db.flush_learning_cache();
        // The drop purges the entry AND flushes the tombstone to disk.
        db.catalog().drop_table("dim1");
        assert!(db.learning_cache_stats().invalidations >= 1);
    }
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120); // same name, same content
        db.set_learning_cache(true);
        assert_eq!(
            db.learning_cache_stats().loaded,
            0,
            "dropped template's prior must be tombstoned on disk"
        );
        db.query(SQL).unwrap();
        assert_eq!(
            db.learning_cache_stats().hits,
            0,
            "recreate-after-drop must never warm-start from old data"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Content is identity: a restart that re-creates a table with DIFFERENT
/// rows refuses the stale prior (fingerprint mismatch → invalidation) and
/// re-learns — correct rows either way.
#[test]
fn different_content_after_restart_refuses_the_stale_prior() {
    let dir = fresh_dir("content");
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120);
        db.set_learning_cache(true);
        db.query(SQL).unwrap();
        db.flush_learning_cache();
    }
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 40); // fact has different content now
        db.set_learning_cache(true);
        assert!(db.learning_cache_stats().loaded >= 1);
        db.query(SQL).unwrap();
        let stats = db.learning_cache_stats();
        assert_eq!(stats.hits, 0, "stale prior must not serve: {stats:?}");
        assert!(
            stats.invalidations >= 1,
            "fingerprint mismatch must invalidate: {stats:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt priors file is refused wholesale — the database still opens,
/// queries still run, and the refusal is visible in stats.
#[test]
fn corrupt_priors_file_never_blocks_open_or_serves() {
    let dir = fresh_dir("corrupt");
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120);
        db.set_learning_cache(true);
        db.query(SQL).unwrap();
        db.flush_learning_cache();
    }
    // Flip a byte in the middle of the sidecar.
    let side = dir.join("learned_priors.side");
    let mut bytes = std::fs::read(&side).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&side, &bytes).unwrap();
    {
        let db = Database::open(&dir).unwrap();
        create_tables(&db, 120);
        db.set_learning_cache(true);
        let stats = db.learning_cache_stats();
        assert_eq!(
            stats.load_rejected, 1,
            "corruption must be refused: {stats:?}"
        );
        assert_eq!(stats.loaded, 0);
        // The database is fully functional; the template just re-learns.
        db.query(SQL).unwrap();
        assert!(db.learning_cache_stats().published >= 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reconfiguring the cache re-attaches the store: durable knowledge
/// survives `set_learning_cache_config` the same way it survives a
/// restart.
#[test]
fn reconfiguration_reloads_persisted_priors() {
    let dir = fresh_dir("reconf");
    let db = Database::open(&dir).unwrap();
    create_tables(&db, 120);
    db.set_learning_cache(true);
    db.query(SQL).unwrap();
    db.flush_learning_cache();
    db.set_learning_cache_config(skinnerdb::TreeCacheConfig {
        capacity: 64,
        ..Default::default()
    });
    let stats = db.learning_cache_stats();
    assert!(
        stats.loaded >= 1,
        "new cache must reload persisted priors: {stats:?}"
    );
    db.query(SQL).unwrap();
    assert!(db.learning_cache_stats().hits >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
