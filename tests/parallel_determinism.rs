//! Determinism and cancellation guarantees of `parallel_skinner`.
//!
//! The parallel strategy's contract: with 1 thread it behaves like
//! sequential Skinner-C (identical rows, near-identical metrics), and with
//! N threads it returns exactly the same result set on every run — thread
//! count and scheduling are performance knobs, never correctness knobs.
//! A cancellation fired mid-episode must stop all workers promptly and
//! still produce a well-formed (timed-out, partial) outcome.

use std::time::{Duration, Instant};

use skinnerdb::skinner_core::{ParallelSkinnerConfig, SkinnerCConfig};
use skinnerdb::skinner_workloads::job_like::{generate as job, JobConfig};
use skinnerdb::skinner_workloads::torture::{correlation_torture, trivial};
use skinnerdb::{CancelToken, DataType, Database, ExecOutcome, Strategy, Value};

fn parallel(threads: usize) -> Strategy {
    Strategy::ParallelSkinner(ParallelSkinnerConfig {
        threads,
        batch_tuples: 64,    // small batches → many episodes even on test data
        min_chunk_tuples: 4, // …still split across all the workers
        ..Default::default()
    })
}

fn sequential() -> Strategy {
    Strategy::SkinnerC(SkinnerCConfig::default())
}

fn run(db: &Database, script: &str, strategy: &Strategy) -> ExecOutcome {
    db.run_script(script, strategy)
        .unwrap_or_else(|e| panic!("{script} failed: {e}"))
}

/// A moderate handmade join database with skew and a selective filter.
fn handmade_db() -> Database {
    let db = Database::new();
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
        ],
        (0..400)
            .map(|i| vec![Value::Int(i), Value::Int(i % 20), Value::Int(i % 11)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("grp", DataType::Int)],
        (0..20)
            .map(|i| vec![Value::Int(i), Value::Int(i % 4)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("w", DataType::Int)],
        (0..11)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
            .collect(),
    )
    .unwrap();
    db
}

const HANDMADE_SQL: &str = "SELECT f.id, a.grp, b.w FROM fact f, dim1 a, dim2 b \
     WHERE f.d1 = a.id AND f.d2 = b.id AND a.grp < 3";

#[test]
fn one_thread_matches_sequential_skinner_c_handmade() {
    let db = handmade_db();
    let seq = run(&db, HANDMADE_SQL, &sequential());
    let par = run(&db, HANDMADE_SQL, &parallel(1));
    assert!(!seq.timed_out && !par.timed_out);
    assert_eq!(par.result.canonical_rows(), seq.result.canonical_rows());
    // Near-identical metrics: both engines deduplicate the same join-tuple
    // set and learn a valid order over the same three tables.
    assert_eq!(par.metrics.result_tuples, seq.metrics.result_tuples);
    assert_eq!(par.metrics.order.len(), seq.metrics.order.len());
    assert!(par.metrics.slices > 0 && seq.metrics.slices > 0);
    // Same join, same per-step accounting conventions: total work stays in
    // the same ballpark (learning paths may differ, not the asymptotics).
    let ratio = par.work_units.max(seq.work_units) as f64
        / par.work_units.min(seq.work_units).max(1) as f64;
    assert!(
        ratio < 50.0,
        "work diverged: {} vs {}",
        par.work_units,
        seq.work_units
    );
}

#[test]
fn one_thread_matches_sequential_on_job_like_queries() {
    let w = job(&JobConfig {
        scale: 0.05,
        seed: 0x10B,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    // The three smallest-join queries keep the test minutes away from the
    // full benchmark while still exercising real multi-join scripts.
    let mut queries = w.queries.clone();
    queries.sort_by_key(|q| q.num_tables);
    for q in queries.iter().take(3) {
        let seq = run(&db, &q.script, &sequential());
        let par = run(&db, &q.script, &parallel(1));
        assert!(!seq.timed_out && !par.timed_out, "{} timed out", q.name);
        assert_eq!(
            par.result.canonical_rows(),
            seq.result.canonical_rows(),
            "{} disagrees",
            q.name
        );
        assert_eq!(
            par.metrics.result_tuples, seq.metrics.result_tuples,
            "{} join-tuple sets differ",
            q.name
        );
    }
}

#[test]
fn one_thread_matches_sequential_on_torture_workloads() {
    for w in [correlation_torture(4, 50, 1), trivial(4, 30)] {
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let q = &w.queries[0];
        let seq = run(&db, &q.script, &sequential());
        let par = run(&db, &q.script, &parallel(1));
        assert!(!seq.timed_out && !par.timed_out, "{}", q.name);
        assert_eq!(
            par.result.canonical_rows(),
            seq.result.canonical_rows(),
            "{} disagrees",
            q.name
        );
    }
}

#[test]
fn n_thread_runs_are_deterministic_and_agree_with_reference() {
    let db = handmade_db();
    let expected = run(&db, HANDMADE_SQL, &Strategy::Reference)
        .result
        .canonical_rows();
    for threads in [2, 4, 8] {
        let mut seen = Vec::new();
        for rep in 0..3 {
            let out = run(&db, HANDMADE_SQL, &parallel(threads));
            assert!(!out.timed_out, "{threads} threads rep {rep}");
            let rows = out.result.canonical_rows();
            assert_eq!(rows, expected, "{threads} threads rep {rep} vs reference");
            seen.push(rows);
        }
        assert!(
            seen.windows(2).all(|w| w[0] == w[1]),
            "{threads}-thread runs diverged across repetitions"
        );
    }
}

#[test]
fn n_thread_runs_are_deterministic_on_torture() {
    let w = correlation_torture(4, 60, 2);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let script = &w.queries[0].script;
    let expected = run(&db, script, &Strategy::Reference)
        .result
        .canonical_rows();
    for threads in [2, 4, 8] {
        for rep in 0..2 {
            let out = run(&db, script, &parallel(threads));
            assert!(!out.timed_out, "{threads} threads rep {rep}");
            assert_eq!(
                out.result.canonical_rows(),
                expected,
                "{threads} threads rep {rep}"
            );
        }
    }
}

/// A large unindexable join that cannot finish quickly: every pair passes
/// through a generic (non-equality) predicate, so workers have plenty of
/// mid-episode work when the cancellation fires.
fn slow_db() -> (Database, &'static str) {
    let db = Database::new();
    for name in ["big1", "big2"] {
        db.create_table(
            name,
            &[("x", DataType::Int)],
            (0..3_000).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
    }
    (
        db,
        "SELECT COUNT(*) n FROM big1 a, big2 b WHERE a.x + b.x > 100000",
    )
}

#[test]
fn session_deadline_stops_all_workers_promptly() {
    let (db, sql) = slow_db();
    let session = db.session();
    session.use_strategy("parallel_skinner").unwrap();
    session.set_threads(Some(4));
    session.set_deadline(Some(Duration::from_millis(30)));
    let started = Instant::now();
    let out = session.run_script(sql).unwrap();
    let elapsed = started.elapsed();
    assert!(out.timed_out, "deadline must surface as a timeout");
    // Workers poll the token every slice: seconds of slack is generous
    // even for a loaded single-core CI machine.
    assert!(
        elapsed < Duration::from_secs(20),
        "workers kept running: {elapsed:?}"
    );
    // The partial outcome is well-formed: correct shape, accounted work,
    // populated parallel instrumentation.
    assert_eq!(out.result.columns, vec!["n".to_string()]);
    assert_eq!(out.result.num_rows(), 0, "destructive timeout semantics");
    assert!(
        out.work_units > 0,
        "work done before the deadline is accounted"
    );
    assert_eq!(out.metrics.counter("threads"), Some(4));
}

#[test]
fn cancel_token_fired_mid_episode_stops_all_workers() {
    let (db, sql) = slow_db();
    let query = db.bind(sql).unwrap();
    let cancel = CancelToken::new();
    let ctx = db
        .exec_context()
        .with_cancel(cancel.clone())
        .with_threads(4);
    let trigger = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            cancel.cancel();
        })
    };
    let strategy = parallel(4).build();
    let started = Instant::now();
    let out = strategy.execute(&query, &ctx);
    let elapsed = started.elapsed();
    trigger.join().unwrap();
    assert!(out.timed_out, "cancellation must surface as a timeout");
    assert!(
        elapsed < Duration::from_secs(20),
        "workers kept running: {elapsed:?}"
    );
    assert_eq!(out.result.num_rows(), 0);
    assert_eq!(out.metrics.counter("threads"), Some(4));
    // The shared session budget absorbed the partial work.
    assert_eq!(ctx.budget().used(), out.work_units);
}
