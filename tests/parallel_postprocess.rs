//! Parallel post-processing equivalence: grouped and ordered results are
//! identical at 1 vs N threads.
//!
//! `parallel_skinner` routes grouping/ordering through
//! `skinner_exec::postprocess_parallel` (per-worker partial aggregation /
//! local sort, coordinator hash-/k-way merge). These tests pin the
//! contract on real workloads: the JOB-like generator and the correlation
//! torture chain, with GROUP BY, ORDER BY (+ DESC, LIMIT) and mixed
//! aggregate queries — result rows must match the 1-thread run (and the
//! reference executor) exactly, not just as sorted multisets.

use skinnerdb::skinner_core::ParallelSkinnerConfig;
use skinnerdb::skinner_workloads::job_like::{generate as job, JobConfig};
use skinnerdb::skinner_workloads::torture::correlation_torture;
use skinnerdb::{Database, Strategy};

fn parallel(threads: usize) -> Strategy {
    Strategy::ParallelSkinner(ParallelSkinnerConfig {
        threads,
        batch_tuples: 64,
        min_chunk_tuples: 4,
        ..Default::default()
    })
}

/// Run `sql` at 1 and N threads and demand exactly equal rows; also check
/// the 1-thread rows against the reference executor's canonical set.
fn assert_thread_invariant(db: &Database, sql: &str) {
    let base = db.run_script(sql, &parallel(1)).expect("1-thread run");
    assert!(!base.timed_out, "1-thread run timed out: {sql}");
    let reference = db
        .run_script(sql, &Strategy::Reference)
        .expect("reference run");
    assert_eq!(
        base.result.canonical_rows(),
        reference.result.canonical_rows(),
        "1-thread disagrees with reference: {sql}"
    );
    for threads in [2, 4, 8] {
        let out = db
            .run_script(sql, &parallel(threads))
            .expect("N-thread run");
        assert!(!out.timed_out, "{threads}-thread run timed out: {sql}");
        assert_eq!(
            out.result.rows, base.result.rows,
            "rows differ at {threads} threads: {sql}"
        );
        assert_eq!(out.result.columns, base.result.columns);
    }
}

#[test]
fn grouped_and_ordered_results_identical_on_job_like() {
    let w = job(&JobConfig {
        scale: 0.05,
        seed: 0x10B,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    for sql in [
        // GROUP BY with several aggregate kinds, ordered by the group key.
        "SELECT t.production_year, COUNT(*) n, MIN(t.title) first_title \
         FROM title t, movie_companies mc \
         WHERE t.id = mc.movie_id \
         GROUP BY t.production_year ORDER BY t.production_year",
        // Plain ORDER BY (descending + tiebreaker) with LIMIT — exercises
        // the per-worker local sort + k-way merge path.
        "SELECT t.production_year, t.title \
         FROM title t, movie_companies mc \
         WHERE t.id = mc.movie_id \
         ORDER BY t.production_year DESC, t.title LIMIT 50",
        // GROUP BY over a join with a selective filter.
        "SELECT mc.company_type_id, COUNT(*) n, MAX(t.production_year) latest \
         FROM title t, movie_companies mc \
         WHERE t.id = mc.movie_id AND t.production_year > 1990 \
         GROUP BY mc.company_type_id ORDER BY mc.company_type_id",
    ] {
        assert_thread_invariant(&db, sql);
    }
}

#[test]
fn grouped_and_ordered_results_identical_on_torture() {
    // Edge 2 is the empty edge: joins over t0..t2 are real work with
    // fanout 2 per hop, so the result set is large enough to split.
    let w = correlation_torture(4, 200, 2);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    for sql in [
        "SELECT t0.a, COUNT(*) n, MIN(t1.b) mn, MAX(t2.b) mx \
         FROM t0, t1, t2 WHERE t0.b = t1.a AND t1.b = t2.a \
         GROUP BY t0.a ORDER BY t0.a",
        "SELECT t0.a, t1.b FROM t0, t1 WHERE t0.b = t1.a \
         ORDER BY t0.a DESC, t1.b LIMIT 40",
        "SELECT DISTINCT t0.a FROM t0, t1 WHERE t0.b = t1.a ORDER BY t0.a",
    ] {
        assert_thread_invariant(&db, sql);
    }
}
