//! Property-based testing of the core correctness invariant: for *random*
//! schemas, data, predicates and tuning knobs, every Skinner strategy
//! produces exactly the reference result. This exercises the multi-way
//! join's backtracking, the progress trie's fast-forwarding, offset
//! handling, batch bookkeeping of Skinner-G, and result deduplication far
//! beyond the hand-written cases.

use proptest::prelude::*;
// `skinnerdb::Strategy` shadows the prelude's `proptest::strategy::Strategy`
// trait name; re-import the trait anonymously so its methods stay in scope.
use proptest::strategy::Strategy as _;

use skinnerdb::skinner_core::{RewardKind, SkinnerCConfig, SkinnerGConfig};
use skinnerdb::{DataType, Database, Strategy, Value};

/// A randomly generated query workload: `k` tables in a chain, each with a
/// join column and a payload column over small domains (to force duplicate
/// keys, multi-matches and empty matches).
#[derive(Debug, Clone)]
struct Scenario {
    table_rows: Vec<Vec<(i64, i64)>>, // (join_key, payload)
    filter_table: usize,
    filter_threshold: i64,
    use_filter: bool,
    seed: u64,
    slice_steps: u64,
}

fn scenario() -> impl proptest::strategy::Strategy<Value = Scenario> {
    (2usize..=4)
        .prop_flat_map(|k| {
            (
                proptest::collection::vec(
                    proptest::collection::vec((0i64..6, 0i64..10), 1..12),
                    k..=k,
                ),
                0usize..k,
                0i64..10,
                any::<bool>(),
                any::<u64>(),
                // Floor at 4: one-step slices on the largest draws are
                // pathologically slow in debug builds.
                4u64..40,
            )
        })
        .prop_map(
            |(table_rows, filter_table, filter_threshold, use_filter, seed, slice_steps)| {
                Scenario {
                    table_rows,
                    filter_table,
                    filter_threshold,
                    use_filter,
                    seed,
                    slice_steps,
                }
            },
        )
}

fn build(scenario: &Scenario) -> (Database, String) {
    let db = Database::new();
    for (t, rows) in scenario.table_rows.iter().enumerate() {
        db.create_table(
            &format!("t{t}"),
            &[("k", DataType::Int), ("p", DataType::Int)],
            rows.iter()
                .map(|(k, p)| vec![Value::Int(*k), Value::Int(*p)])
                .collect(),
        )
        .unwrap();
    }
    let k = scenario.table_rows.len();
    let from: Vec<String> = (0..k).map(|t| format!("t{t}")).collect();
    let mut preds: Vec<String> = (0..k - 1)
        .map(|t| format!("t{t}.k = t{}.p % 6", t + 1))
        .collect();
    // `t.k = expr` is a *generic* predicate (not a plain column equality) on
    // one side — exercise both classifications by also adding plain ones.
    for t in 0..k - 1 {
        preds.push(format!("t{t}.k = t{}.k", t + 1));
    }
    if scenario.use_filter {
        preds.push(format!(
            "t{}.p < {}",
            scenario.filter_table, scenario.filter_threshold
        ));
    }
    let sql = format!(
        "SELECT COUNT(*) n FROM {} WHERE {}",
        from.join(", "),
        preds.join(" AND ")
    );
    (db, sql)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Skinner-C with random slice sizes, seeds and feature toggles always
    /// matches the reference executor.
    #[test]
    fn skinner_c_always_matches_reference(s in scenario(), jumps: bool, share: bool, leftmost: bool) {
        let (db, sql) = build(&s);
        let expected = db.run_script(&sql, &Strategy::Reference).unwrap();
        let cfg = SkinnerCConfig {
            slice_steps: s.slice_steps,
            seed: s.seed,
            use_jump_indexes: jumps,
            share_progress: share,
            reward: if leftmost { RewardKind::LeftmostDelta } else { RewardKind::FractionalProgress },
            ..Default::default()
        };
        let out = db.run_script(&sql, &Strategy::SkinnerC(cfg)).unwrap();
        prop_assert!(!out.timed_out);
        prop_assert_eq!(out.result.canonical_rows(), expected.result.canonical_rows());
    }

    /// Skinner-G with random batch counts and timeout units always matches.
    #[test]
    fn skinner_g_always_matches_reference(
        s in scenario(),
        batches in 1usize..12,
        base in 50u64..1500,
    ) {
        let (db, sql) = build(&s);
        let expected = db.run_script(&sql, &Strategy::Reference).unwrap();
        let cfg = SkinnerGConfig {
            batches,
            base_timeout_units: base,
            seed: s.seed,
            ..Default::default()
        };
        let out = db.run_script(&sql, &Strategy::SkinnerG(cfg)).unwrap();
        prop_assert!(!out.timed_out);
        prop_assert_eq!(out.result.canonical_rows(), expected.result.canonical_rows());
    }

    /// The adaptive baselines satisfy the same equivalence.
    #[test]
    fn baselines_always_match_reference(s in scenario()) {
        let (db, sql) = build(&s);
        let expected = db.run_script(&sql, &Strategy::Reference).unwrap();
        for strategy in [
            Strategy::Eddy(Default::default()),
            Strategy::Reoptimizer(Default::default()),
            Strategy::Traditional(Default::default()),
            Strategy::SkinnerH(Default::default()),
        ] {
            let out = db.run_script(&sql, &strategy).unwrap();
            prop_assert!(!out.timed_out);
            prop_assert_eq!(
                out.result.canonical_rows(),
                expected.result.canonical_rows()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Aggregation pipelines agree between Skinner-C and the reference for
    /// random groupings.
    #[test]
    fn grouped_aggregates_match(s in scenario()) {
        let (db, _) = build(&s);
        let sql = "SELECT t0.k, COUNT(*) c, SUM(t1.p) s, MIN(t1.p) mn, MAX(t1.p) mx \
                   FROM t0, t1 WHERE t0.k = t1.k GROUP BY t0.k ORDER BY t0.k";
        let expected = db.run_script(sql, &Strategy::Reference).unwrap();
        let out = db.run_script(sql, &Strategy::default()).unwrap();
        prop_assert_eq!(
            out.result.ordered_rows(),
            expected.result.ordered_rows()
        );
    }
}
