//! Empirical sanity checks of the paper's formal guarantees (Section 5).
//!
//! These are not proofs — they verify, with fixed seeds and generous
//! constants, that the *direction* of each bound holds on workloads designed
//! to stress it:
//!
//! * Theorem 5.10: Skinner-C's expected execution cost is within a small
//!   multiple of the cost of executing the best fixed join order.
//! * Theorem 5.8: Skinner-H costs at most a constant factor more than pure
//!   traditional execution when the traditional optimizer is good.
//! * Lemma 5.5 behaviour end-to-end: Skinner-G's per-level time allocation
//!   stays within factor two (unit-tested in `pyramid`, exercised here via
//!   a full run that must terminate despite wildly wrong initial timeouts).

use skinnerdb::skinner_core::{run_skinner_c, run_skinner_c_fixed, SkinnerCConfig};
use skinnerdb::skinner_core::{SkinnerG, SkinnerGConfig};
use skinnerdb::skinner_workloads::torture::{correlation_torture, udf_torture, Shape};
use skinnerdb::ExecContext;
use skinnerdb::{DataType, Database, Strategy, Value};

/// Per-strategy regret envelope: the maximal tolerated ratio of the
/// strategy's work to a traditional run on a workload where the optimizer
/// plans well (`star_db`). The constants encode each engine's theory:
///
/// * Customized engines (Skinner-C, parallel_skinner) and the adaptive
///   baselines pay no per-slice engine overhead — a small constant covers
///   learning noise.
/// * The hybrids (Skinner-H, skinner_h) are regret-bounded against the
///   traditional plan by the doubling schedule (Theorem 5.8: ≤ 5× plus
///   discretization).
/// * Generic-engine learners (Skinner-G, skinner_g) re-pay the engine's
///   per-invocation cost (hash builds) every episode — bounded, but by a
///   much larger constant (the paper's motivation for Skinner-C).
///
/// Every registered builtin MUST appear here: a new strategy fails the
/// registry-driven test below until it declares its envelope.
fn regret_envelope(name: &str) -> Option<f64> {
    match name {
        "Reference" | "Traditional" => None, // baselines define the scale
        "Skinner-C" | "parallel_skinner" => Some(4.0),
        "Eddy" | "Re-optimizer" => Some(4.0),
        "Skinner-H" | "skinner_h" => Some(8.0),
        "Skinner-G" => Some(100.0),
        "skinner_g" => Some(50.0),
        _ => Some(f64::NAN), // unknown: fails the test loudly
    }
}

/// Every strategy in the builtin registry is held to its own regret
/// envelope against the traditional baseline — with the measured ratio in
/// the failure message, so a regression reports *how far* outside the
/// envelope it landed.
#[test]
fn every_registered_strategy_meets_its_regret_envelope() {
    let (db, sql) = star_db();
    let trad = db
        .run_script(&sql, &Strategy::Traditional(Default::default()))
        .unwrap();
    assert!(!trad.timed_out);
    let expected = trad.result.canonical_rows();
    for strategy in Strategy::all_builtin() {
        let Some(bound) = regret_envelope(strategy.name()) else {
            continue;
        };
        assert!(
            !bound.is_nan(),
            "strategy {:?} has no regret envelope — add it to regret_envelope()",
            strategy.name()
        );
        let out = db.run_script(&sql, &strategy).unwrap();
        assert!(!out.timed_out, "{} timed out", strategy.name());
        assert_eq!(
            out.result.canonical_rows(),
            expected,
            "{} disagrees with traditional",
            strategy.name()
        );
        let ratio = out.work_units as f64 / trad.work_units.max(1) as f64;
        assert!(
            ratio < bound,
            "{}: measured regret ratio {ratio:.2} ≥ envelope {bound} \
             ({} work units vs traditional {})",
            strategy.name(),
            out.work_units,
            trad.work_units
        );
    }
}

/// Build a moderately sized star-join database with one selective edge.
fn star_db() -> (Database, String) {
    let db = Database::new();
    db.create_table(
        "hub",
        &[("id", DataType::Int), ("grp", DataType::Int)],
        (0..600)
            .map(|i| vec![Value::Int(i), Value::Int(i % 20)])
            .collect(),
    )
    .unwrap();
    for (name, fanout, selective) in [("s1", 2i64, false), ("s2", 3, false), ("s3", 1, true)] {
        let rows: Vec<Vec<Value>> = (0..600 * fanout)
            .map(|i| {
                let hub = if selective && i % 17 != 0 {
                    // Most rows join nothing (selective satellite).
                    100_000 + i
                } else {
                    i % 600
                };
                vec![Value::Int(hub), Value::Int(i)]
            })
            .collect();
        db.create_table(name, &[("hid", DataType::Int), ("v", DataType::Int)], rows)
            .unwrap();
    }
    let sql = "SELECT COUNT(*) n FROM hub, s1, s2, s3 \
               WHERE hub.id = s1.hid AND hub.id = s2.hid AND hub.id = s3.hid"
        .to_string();
    (db, sql)
}

#[test]
fn skinner_c_cost_is_within_small_factor_of_best_fixed_order() {
    let (db, sql) = star_db();
    let q = db.bind(&sql).unwrap();
    let learned = run_skinner_c(&q, &ExecContext::default(), &SkinnerCConfig::default());
    assert!(!learned.timed_out);

    // Best fixed order over all valid orders (4 tables → cheap to scan).
    let graph = q.join_graph();
    let mut best_fixed = u64::MAX;
    for order in graph.all_orders() {
        let o = run_skinner_c_fixed(
            &q,
            &ExecContext::default(),
            &order,
            &SkinnerCConfig::default(),
        );
        assert_eq!(
            o.result.canonical_rows(),
            learned.result.canonical_rows(),
            "{order:?}"
        );
        best_fixed = best_fixed.min(o.work_units);
    }
    // Theorem 5.10 bounds the ratio by m (= 4) asymptotically; allow slack
    // for learning overhead at this scale.
    let ratio = learned.work_units as f64 / best_fixed as f64;
    assert!(
        ratio < 8.0,
        "regret ratio {ratio:.2} (learned {} vs best fixed {best_fixed})",
        learned.work_units
    );
}

#[test]
fn skinner_h_overhead_vs_good_traditional_is_bounded() {
    let (db, sql) = star_db();
    let trad = db
        .run_script(&sql, &Strategy::Traditional(Default::default()))
        .unwrap();
    let hybrid = db
        .run_script(&sql, &Strategy::SkinnerH(Default::default()))
        .unwrap();
    assert!(!trad.timed_out && !hybrid.timed_out);
    assert_eq!(hybrid.result.canonical_rows(), trad.result.canonical_rows());
    // Theorem 5.8: maximal regret vs traditional is 4/5·n, i.e. at most 5×
    // its cost; the doubling scheme's discretization adds a little more.
    let ratio = hybrid.work_units as f64 / trad.work_units.max(1) as f64;
    assert!(ratio < 8.0, "hybrid overhead ratio {ratio:.2}");
}

#[test]
fn skinner_c_beats_worst_fixed_order_on_torture_workloads() {
    // On UDF torture the gap between best and worst orders is extreme; the
    // learned strategy must land near the good end.
    let w = udf_torture(Shape::Chain, 6, 60, 2);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let q = db.bind(&w.queries[0].script).unwrap();
    let learned = run_skinner_c(
        &q,
        &ExecContext::default(),
        &SkinnerCConfig {
            work_limit: 50_000_000,
            ..Default::default()
        },
    );
    assert!(!learned.timed_out);
    // The worst fixed order: apply the good predicate last.
    let worst = run_skinner_c_fixed(
        &q,
        &ExecContext::default(),
        &[5, 4, 3, 2, 1, 0],
        &SkinnerCConfig {
            work_limit: 50_000_000,
            ..Default::default()
        },
    );
    let worst_cost = worst.work_units; // may have timed out — lower bound
    assert!(
        learned.work_units * 10 < worst_cost,
        "learned {} not ≪ worst fixed {worst_cost}",
        learned.work_units
    );
}

#[test]
fn skinner_g_terminates_and_balances_despite_unknown_timeouts() {
    let w = correlation_torture(4, 300, 1);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let q = db.bind(&w.queries[0].script).unwrap();
    // Deliberately terrible base timeout: far too small for a batch, forcing
    // the pyramid scheme to climb levels before anything completes.
    let out = SkinnerG::new(
        &q,
        &ExecContext::default(),
        SkinnerGConfig {
            batches: 10,
            base_timeout_units: 8,
            work_limit: 500_000_000,
            ..Default::default()
        },
    )
    .run_to_completion();
    assert!(!out.timed_out, "pyramid scheme failed to climb");
    let levels = out.metrics.counter("timeout_levels").unwrap();
    assert!(levels >= 3, "levels: {levels}");
    assert_eq!(out.result.rows[0][0], Value::Int(0));
}
