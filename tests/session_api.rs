//! Integration tests for the session / prepared-statement facade and the
//! cooperative cancellation path of the execution API.

use std::sync::Arc;
use std::time::Duration;

use skinnerdb::skinner_core::SkinnerCConfig;
use skinnerdb::{CancelToken, DataType, Database, DbError, Strategy, Value};

fn serving_db() -> Database {
    let db = Database::new();
    db.create_table(
        "orders",
        &[
            ("id", DataType::Int),
            ("customer", DataType::Int),
            ("amount", DataType::Float),
        ],
        (0..200)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 25),
                    Value::Float((i % 40) as f64 * 1.5),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "customers",
        &[("id", DataType::Int), ("tier", DataType::Int)],
        (0..25)
            .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
            .collect(),
    )
    .unwrap();
    db
}

const JOIN_SQL: &str = "SELECT c.tier, COUNT(*) n, SUM(o.amount) s \
                        FROM orders o, customers c WHERE o.customer = c.id \
                        GROUP BY c.tier ORDER BY c.tier";

#[test]
fn prepare_once_execute_many_identical() {
    let db = serving_db();
    let prepared = db.prepare(JOIN_SQL).unwrap();
    let first = prepared.execute().unwrap();
    for _ in 0..3 {
        let again = prepared.execute().unwrap();
        assert_eq!(first.ordered_rows(), again.ordered_rows());
    }
    assert_eq!(first.num_rows(), 3);
    // The outcome form exposes work accounting per execution.
    let outcome = prepared.execute_outcome();
    assert!(!outcome.timed_out);
    assert!(outcome.work_units > 0);
}

#[test]
fn prepared_statement_strategy_snapshot_and_override() {
    let db = serving_db();
    let session = db.session();
    session.set_strategy(Strategy::Traditional(Default::default()));
    let prepared = session.prepare(JOIN_SQL).unwrap();
    // Session switches strategy afterwards; the prepared statement keeps
    // its snapshot.
    session.set_strategy(Strategy::Eddy(Default::default()));
    assert_eq!(prepared.strategy().name(), "Traditional");
    let base = prepared.execute().unwrap();
    // Same bound query through a different engine: identical rows.
    let other = prepared.execute_with(
        Strategy::SkinnerC(SkinnerCConfig::default())
            .build()
            .as_ref(),
    );
    assert!(!other.timed_out);
    assert_eq!(base.canonical_rows(), other.result.canonical_rows());
}

#[test]
fn sessions_are_concurrent_over_one_database() {
    let db = Arc::new(serving_db());
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let db = db.clone();
            std::thread::spawn(move || {
                let session = db.session();
                if i % 2 == 0 {
                    session.use_strategy("traditional").unwrap();
                }
                let prepared = session.prepare(JOIN_SQL).unwrap();
                prepared.execute().unwrap().ordered_rows()
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(&results[0], r);
    }
}

#[test]
fn deadline_produces_timeout_outcome_without_panic() {
    let db = serving_db();
    let session = db.session();
    session.set_deadline(Some(Duration::ZERO));
    let out = session.run_script(JOIN_SQL).unwrap();
    assert!(out.timed_out, "expired deadline must report timed_out");
    assert_eq!(out.result.num_rows(), 0);
    assert!(matches!(session.query(JOIN_SQL), Err(DbError::Timeout)));
    // Clearing the deadline restores normal service on the same session.
    session.set_deadline(None);
    assert_eq!(session.query(JOIN_SQL).unwrap().num_rows(), 3);
}

#[test]
fn explicit_cancel_token_interrupts_every_builtin() {
    let db = serving_db();
    for strategy in Strategy::all_builtin() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = db.exec_context().with_cancel(cancel);
        let out = db
            .run_script_with(JOIN_SQL, strategy.build().as_ref(), &ctx)
            .unwrap();
        assert!(out.timed_out, "{} ignored cancellation", strategy.name());
    }
}

#[test]
fn session_work_limit_spans_whole_scripts() {
    let db = serving_db();
    let session = db.session();
    session.set_work_limit(50);
    let out = session
        .run_script(
            "SELECT o.id FROM orders o, customers c WHERE o.customer = c.id; \
             SELECT c.id FROM customers c",
        )
        .unwrap();
    assert!(out.timed_out, "50 work units cannot cover the script");
}

#[test]
fn streaming_row_access() {
    let db = serving_db();
    let result = db.query(JOIN_SQL).unwrap();
    let tiers: Vec<i64> = result
        .iter_rows()
        .map(|row| row[0].as_i64().unwrap())
        .collect();
    assert_eq!(tiers, vec![0, 1, 2]);
    let idx = result.column_index("n").unwrap();
    let total: i64 = result
        .iter_rows()
        .map(|row| row[idx].as_i64().unwrap())
        .sum();
    assert_eq!(total, 200);
}
