//! Differential testing: every evaluation strategy must produce exactly the
//! result of the naive reference executor (paper Theorems 5.1–5.3 claim
//! correctness for all Skinner variants; we hold the baselines to the same
//! standard).

use skinnerdb::{DataType, Database, Strategy, Value};

fn test_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ],
        (0..120)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(i % 7),
                    Value::Float((i as f64) * 0.25),
                    Value::from(if i % 3 == 0 { "alpha" } else { "beta" }),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("label", DataType::Str)],
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(format!("label-{}", i % 4).as_str()),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("weight", DataType::Int)],
        (0..7)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect(),
    )
    .unwrap();
    db.register_udf("mod3_is", |args| {
        Value::from(args[0].as_i64().unwrap_or(0) % 3 == args[1].as_i64().unwrap_or(-1))
    });
    db
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::SkinnerC(Default::default()),
        Strategy::SkinnerG(Default::default()),
        Strategy::SkinnerH(Default::default()),
        Strategy::Traditional(Default::default()),
        Strategy::Eddy(Default::default()),
        Strategy::Reoptimizer(Default::default()),
    ]
}

fn assert_all_agree(db: &Database, sql: &str) {
    let expected = db
        .run_script(sql, &Strategy::Reference)
        .unwrap()
        .result
        .canonical_rows();
    for strategy in all_strategies() {
        let out = db
            .run_script(sql, &strategy)
            .unwrap_or_else(|e| panic!("{} failed on {sql}: {e}", strategy.name()));
        assert!(!out.timed_out, "{} timed out on {sql}", strategy.name());
        assert_eq!(
            out.result.canonical_rows(),
            expected,
            "{} disagrees on {sql}",
            strategy.name()
        );
    }
}

#[test]
fn two_way_equi_join() {
    let db = test_db();
    assert_all_agree(&db, "SELECT f.id, d.label FROM fact f, dim1 d WHERE f.d1 = d.id");
}

#[test]
fn three_way_join_with_filters() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a, dim2 b \
         WHERE f.d1 = a.id AND f.d2 = b.id AND a.label = 'label-1' AND b.weight > 20",
    );
}

#[test]
fn theta_join() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim2 b WHERE f.d2 = b.id AND f.id < b.weight",
    );
}

#[test]
fn udf_join_predicate() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim2 b WHERE f.d2 = b.id AND mod3_is(f.id, b.id)",
    );
}

#[test]
fn aggregates_and_groups() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT a.label, COUNT(*) c, SUM(f.v) s, MIN(f.id) mn, MAX(f.id) mx, AVG(f.v) av \
         FROM fact f, dim1 a WHERE f.d1 = a.id GROUP BY a.label ORDER BY a.label",
    );
}

#[test]
fn like_and_in_and_between() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a WHERE f.d1 = a.id \
         AND f.tag LIKE 'al%' AND f.d2 IN (1, 3, 5) AND f.id BETWEEN 10 AND 90",
    );
}

#[test]
fn self_join_aliases() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT x.id FROM fact x, fact y \
         WHERE x.d1 = y.d2 AND x.id < 20 AND y.id < 15",
    );
}

#[test]
fn cartesian_product_fallback() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT d.label, b.weight FROM dim1 d, dim2 b WHERE d.id < 3 AND b.id < 2",
    );
}

#[test]
fn empty_results_everywhere() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a WHERE f.d1 = a.id AND f.id > 100000",
    );
    assert_all_agree(&db, "SELECT f.id FROM fact f WHERE 1 = 2");
}

#[test]
fn scalar_aggregate_over_join() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT COUNT(*) n, SUM(b.weight) w FROM fact f, dim2 b WHERE f.d2 = b.id",
    );
}

#[test]
fn distinct_order_limit() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT DISTINCT a.label FROM fact f, dim1 a WHERE f.d1 = a.id ORDER BY a.label LIMIT 2",
    );
}

#[test]
fn or_predicates() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a WHERE f.d1 = a.id \
         AND (a.label = 'label-0' OR f.d2 = 3)",
    );
}

#[test]
fn four_way_join() {
    let db = test_db();
    assert_all_agree(
        &db,
        "SELECT COUNT(*) n FROM fact f, dim1 a, dim2 b, fact g \
         WHERE f.d1 = a.id AND f.d2 = b.id AND g.d1 = a.id AND g.id < 10",
    );
}
