//! Differential testing through the execution API: every strategy in the
//! registry — built-ins and externally registered ones alike — must produce
//! exactly the result of the naive reference executor (paper Theorems
//! 5.1–5.3 claim correctness for all Skinner variants; we hold the
//! baselines to the same standard).
//!
//! The suite is deliberately driven through `StrategyRegistry` /
//! `ExecutionStrategy` rather than the `Strategy` enum: anything that
//! registers is automatically held to the equivalence bar.

use std::sync::Arc;

use skinnerdb::skinner_exec::reference::run_reference;
use skinnerdb::{DataType, Database, ExecContext, ExecOutcome, ExecutionStrategy, Value};

fn test_db() -> Database {
    let db = Database::new();
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ],
        (0..120)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 12),
                    Value::Int(i % 7),
                    Value::Float((i as f64) * 0.25),
                    Value::from(if i % 3 == 0 { "alpha" } else { "beta" }),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim1",
        &[("id", DataType::Int), ("label", DataType::Str)],
        (0..12)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(format!("label-{}", i % 4).as_str()),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table(
        "dim2",
        &[("id", DataType::Int), ("weight", DataType::Int)],
        (0..7)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect(),
    )
    .unwrap();
    db.register_udf("mod3_is", |args| {
        Value::from(args[0].as_i64().unwrap_or(0) % 3 == args[1].as_i64().unwrap_or(-1))
    });
    db
}

/// An "external" engine registered from outside the engine crates: wraps
/// the reference executor. Its presence in the registry proves third-party
/// strategies flow through the same door — and get the same differential
/// testing — as the built-ins.
struct ExternalNestedLoop;

impl ExecutionStrategy for ExternalNestedLoop {
    fn name(&self) -> &str {
        "external-nested-loop"
    }

    fn execute(
        &self,
        query: &skinnerdb::skinner_query::JoinQuery,
        _ctx: &ExecContext,
    ) -> ExecOutcome {
        let started = std::time::Instant::now();
        let result = run_reference(query);
        ExecOutcome::completed(result, 0, started.elapsed())
    }
}

fn assert_all_agree(db: &Database, sql: &str) {
    let expected = db
        .run_script(sql, &skinnerdb::Strategy::Reference)
        .unwrap()
        .result
        .canonical_rows();
    for name in db.strategies().names() {
        if name == "Reference" {
            continue;
        }
        let strategy = db.strategies().get(&name).unwrap();
        let out = db
            .run_script_with(sql, strategy.as_ref(), &db.exec_context())
            .unwrap_or_else(|e| panic!("{name} failed on {sql}: {e}"));
        assert!(!out.timed_out, "{name} timed out on {sql}");
        assert_eq!(
            out.result.canonical_rows(),
            expected,
            "{name} disagrees on {sql}"
        );
    }
}

fn registry_db() -> Database {
    let db = test_db();
    db.register_strategy(Arc::new(ExternalNestedLoop));
    db
}

#[test]
fn registry_includes_external_strategy() {
    let db = registry_db();
    assert!(db.strategies().len() >= 11);
    assert!(db.strategies().contains("external-nested-loop"));
    assert!(db.strategies().contains("Skinner-C"));
    // The optimizer-vs-RL hybrids registered by this PR: underscore names,
    // distinct from the paper-faithful hyphenated variants.
    assert!(db.strategies().contains("skinner_g"));
    assert!(db.strategies().contains("skinner_h"));
    // The parallel learned engine faces the same differential-testing bar
    // as every other registered strategy (each assert_all_agree below
    // iterates the registry, so it runs parallel_skinner too).
    assert!(db.strategies().contains("parallel_skinner"));
}

#[test]
fn two_way_equi_join() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id, d.label FROM fact f, dim1 d WHERE f.d1 = d.id",
    );
}

#[test]
fn three_way_join_with_filters() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a, dim2 b \
         WHERE f.d1 = a.id AND f.d2 = b.id AND a.label = 'label-1' AND b.weight > 20",
    );
}

#[test]
fn theta_join() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim2 b WHERE f.d2 = b.id AND f.id < b.weight",
    );
}

#[test]
fn udf_join_predicate() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim2 b WHERE f.d2 = b.id AND mod3_is(f.id, b.id)",
    );
}

#[test]
fn aggregates_and_groups() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT a.label, COUNT(*) c, SUM(f.v) s, MIN(f.id) mn, MAX(f.id) mx, AVG(f.v) av \
         FROM fact f, dim1 a WHERE f.d1 = a.id GROUP BY a.label ORDER BY a.label",
    );
}

#[test]
fn like_and_in_and_between() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a WHERE f.d1 = a.id \
         AND f.tag LIKE 'al%' AND f.d2 IN (1, 3, 5) AND f.id BETWEEN 10 AND 90",
    );
}

#[test]
fn self_join_aliases() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT x.id FROM fact x, fact y \
         WHERE x.d1 = y.d2 AND x.id < 20 AND y.id < 15",
    );
}

#[test]
fn cartesian_product_fallback() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT d.label, b.weight FROM dim1 d, dim2 b WHERE d.id < 3 AND b.id < 2",
    );
}

#[test]
fn empty_results_everywhere() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a WHERE f.d1 = a.id AND f.id > 100000",
    );
    assert_all_agree(&db, "SELECT f.id FROM fact f WHERE 1 = 2");
}

#[test]
fn scalar_aggregate_over_join() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT COUNT(*) n, SUM(b.weight) w FROM fact f, dim2 b WHERE f.d2 = b.id",
    );
}

#[test]
fn distinct_order_limit() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT DISTINCT a.label FROM fact f, dim1 a WHERE f.d1 = a.id ORDER BY a.label LIMIT 2",
    );
}

#[test]
fn or_predicates() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT f.id FROM fact f, dim1 a WHERE f.d1 = a.id \
         AND (a.label = 'label-0' OR f.d2 = 3)",
    );
}

#[test]
fn four_way_join() {
    let db = registry_db();
    assert_all_agree(
        &db,
        "SELECT COUNT(*) n FROM fact f, dim1 a, dim2 b, fact g \
         WHERE f.d1 = a.id AND f.d2 = b.id AND g.d1 = a.id AND g.id < 10",
    );
}
