//! End-to-end runs of the torture benchmarks and the JOB-like workload.

use skinnerdb::skinner_core::SkinnerCConfig;
use skinnerdb::skinner_workloads::job_like::{generate as job, JobConfig};
use skinnerdb::skinner_workloads::torture::{correlation_torture, trivial, udf_torture, Shape};
use skinnerdb::{Database, Strategy, Value};

#[test]
fn udf_torture_result_is_empty_and_skinner_stays_cheap() {
    for shape in [Shape::Chain, Shape::Star] {
        let w = udf_torture(shape, 5, 50, 2);
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let out = db
            .run_script(
                &w.queries[0].script,
                &Strategy::SkinnerC(SkinnerCConfig {
                    work_limit: 5_000_000,
                    ..Default::default()
                }),
            )
            .unwrap();
        assert!(!out.timed_out, "{shape:?} timed out");
        assert_eq!(out.result.rows[0][0], Value::Int(0), "{shape:?}");
        // The good predicate sits two joins in; Skinner-C should never come
        // close to enumerating the full 50^5 space.
        assert!(
            out.work_units < 2_000_000,
            "{shape:?}: {} work units",
            out.work_units
        );
    }
}

#[test]
fn correlation_torture_result_is_empty_for_all_m() {
    for m in [0, 1, 2] {
        let w = correlation_torture(4, 60, m);
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let out = db
            .run_script(&w.queries[0].script, &Strategy::default())
            .unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(0), "m={m}");
        // Cross-check with the reference executor at this small scale.
        let reference = db
            .run_script(&w.queries[0].script, &Strategy::Reference)
            .unwrap();
        assert_eq!(
            out.result.canonical_rows(),
            reference.result.canonical_rows()
        );
    }
}

#[test]
fn trivial_benchmark_counts_the_chain() {
    let w = trivial(4, 30);
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    for strategy in [
        Strategy::default(),
        Strategy::Traditional(Default::default()),
        Strategy::Eddy(Default::default()),
    ] {
        let out = db.run_script(&w.queries[0].script, &strategy).unwrap();
        // Fanout-1 chain over 30 rows → exactly 30 results.
        assert_eq!(out.result.rows[0][0], Value::Int(30), "{}", strategy.name());
    }
}

#[test]
fn job_like_queries_agree_between_skinner_and_traditional() {
    let w = job(&JobConfig {
        scale: 0.04,
        seed: 11,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    for q in &w.queries {
        let skinner = db
            .run_script(&q.script, &Strategy::default())
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let trad = db
            .run_script(&q.script, &Strategy::Traditional(Default::default()))
            .unwrap();
        assert!(!skinner.timed_out, "{}", q.name);
        assert_eq!(
            skinner.result.canonical_rows(),
            trad.result.canonical_rows(),
            "{} differs",
            q.name
        );
    }
}

#[test]
fn job_like_small_queries_agree_with_reference() {
    // Reference executor is exponential; restrict to the 3-join templates on
    // tiny data.
    let w = job(&JobConfig {
        scale: 0.02,
        seed: 13,
    });
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    for q in w.queries.iter().filter(|q| q.num_tables <= 3) {
        let reference = db.run_script(&q.script, &Strategy::Reference).unwrap();
        let skinner = db.run_script(&q.script, &Strategy::default()).unwrap();
        assert_eq!(
            skinner.result.canonical_rows(),
            reference.result.canonical_rows(),
            "{}",
            q.name
        );
    }
}
