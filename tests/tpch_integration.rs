//! End-to-end TPC-H: all ten evaluated queries produce identical results
//! under Skinner-C, Skinner-H and the traditional path, and the UDF variant
//! (optimizer-opaque predicates) returns exactly the standard variant's
//! results — the UDFs are semantically equivalent by construction.

use skinnerdb::skinner_workloads::tpch::{generate, generate_udf, TpchConfig};
use skinnerdb::{Database, Strategy};

fn small() -> TpchConfig {
    TpchConfig {
        scale: 0.002,
        seed: 77,
    }
}

#[test]
fn skinner_c_matches_traditional_on_all_queries() {
    let w = generate(&small());
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    for q in &w.queries {
        let skinner = db
            .run_script(&q.script, &Strategy::default())
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let trad = db
            .run_script(&q.script, &Strategy::Traditional(Default::default()))
            .unwrap();
        assert!(!skinner.timed_out && !trad.timed_out, "{}", q.name);
        assert_eq!(
            skinner.result.canonical_rows(),
            trad.result.canonical_rows(),
            "{} differs",
            q.name
        );
    }
}

#[test]
fn udf_variant_is_semantically_identical() {
    let std_w = generate(&small());
    let udf_w = generate_udf(&small());
    let std_db = Database::from_parts(std_w.catalog.clone(), std_w.udfs);
    let udf_db = Database::from_parts(udf_w.catalog.clone(), udf_w.udfs);
    for (sq, uq) in std_w.queries.iter().zip(&udf_w.queries) {
        assert_eq!(sq.name, uq.name);
        let a = std_db.run_script(&sq.script, &Strategy::default()).unwrap();
        let b = udf_db.run_script(&uq.script, &Strategy::default()).unwrap();
        assert_eq!(
            a.result.canonical_rows(),
            b.result.canonical_rows(),
            "{}: UDF variant diverges",
            sq.name
        );
    }
}

#[test]
fn hybrid_strategy_completes_tpch() {
    let w = generate(&small());
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    // Q3 and Q10 — medium joins, quick on the hybrid path.
    for name in ["Q3", "Q10"] {
        let q = w.queries.iter().find(|q| q.name == name).unwrap();
        let hybrid = db
            .run_script(&q.script, &Strategy::SkinnerH(Default::default()))
            .unwrap();
        let trad = db
            .run_script(&q.script, &Strategy::Traditional(Default::default()))
            .unwrap();
        assert!(!hybrid.timed_out, "{name}");
        assert_eq!(
            hybrid.result.canonical_rows(),
            trad.result.canonical_rows(),
            "{name}"
        );
    }
}

#[test]
fn ordered_queries_preserve_row_order() {
    let w = generate(&small());
    let db = Database::from_parts(w.catalog.clone(), w.udfs);
    let q3 = w.queries.iter().find(|q| q.name == "Q3").unwrap();
    let skinner = db.run_script(&q3.script, &Strategy::default()).unwrap();
    let trad = db
        .run_script(&q3.script, &Strategy::Traditional(Default::default()))
        .unwrap();
    // ORDER BY revenue DESC must hold exactly, not just set-wise.
    assert_eq!(skinner.result.ordered_rows(), trad.result.ordered_rows());
    let revenues: Vec<f64> = skinner
        .result
        .rows
        .iter()
        .map(|r| r[1].as_f64().unwrap())
        .collect();
    for pair in revenues.windows(2) {
        assert!(pair[0] >= pair[1], "revenue not descending: {revenues:?}");
    }
}
